#!/usr/bin/env python
"""Anatomy of one TLP partition: watch the two stages switch.

Grows a single partition step by step on a community graph, printing the
modularity trajectory, the active stage, and the degree of each selected
vertex — the mechanism behind the paper's Fig. 4/5 narrative and Table VI.

Run:  python examples/stage_anatomy.py
"""

import math

from repro.core.stages import ModularityStagePolicy
from repro.core.state import PartitionState
from repro.graph.generators import community_graph
from repro.graph.residual import ResidualGraph
from repro.utils.rng import make_rng


def main() -> None:
    graph = community_graph(600, 3_600, 6, intra_fraction=0.92, seed=7)
    p = 6
    capacity = math.ceil(graph.num_edges / p)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"growing one partition to capacity {capacity}\n"
    )

    residual = ResidualGraph(graph)
    state = PartitionState(residual, graph)
    policy = ModularityStagePolicy()
    rng = make_rng(0)
    state.seed(residual.sample_seed(rng))

    print(f"{'step':>4}  {'stage':>5}  {'vertex':>6}  {'deg':>4}  "
          f"{'alloc':>5}  {'|E|':>5}  {'E_out':>5}  {'M':>7}")
    step = 0
    switches = []
    previous_stage = None
    while state.internal < capacity and not state.frontier_empty():
        stage = policy.stage(state, capacity)
        if previous_stage is not None and stage != previous_stage:
            switches.append((step, previous_stage, stage))
        previous_stage = stage
        v = state.select_stage1() if stage == 1 else state.select_stage2()
        allocated, truncated = state.add_vertex(
            v, max_edges=capacity - state.internal
        )
        step += 1
        if step <= 15 or step % 25 == 0:
            modularity = state.modularity
            mod_str = f"{modularity:7.3f}" if modularity != math.inf else "    inf"
            print(
                f"{step:>4}  {stage:>5}  {v:>6}  {graph.degree(v):>4}  "
                f"{allocated:>5}  {state.internal:>5}  {state.external:>5}  {mod_str}"
            )
        if truncated:
            break

    print(f"\npartition finished: {state.internal} edges, "
          f"{len(state.members)} vertices, {step} selections")
    for at, frm, to in switches[:10]:
        print(f"  stage switch {frm} -> {to} at step {at}")
    if not switches:
        print("  (no stage switch — the partition stayed in one regime)")


if __name__ == "__main__":
    main()
