#!/usr/bin/env python
"""Quickstart: partition a graph with TLP and inspect the quality.

Run:  python examples/quickstart.py
"""

from repro import TLPPartitioner
from repro.graph.generators import holme_kim
from repro.partitioning.metrics import PartitionReport


def main() -> None:
    # 1. A power-law social-style graph (use repro.graph.io.read_edge_list
    #    to load a SNAP edge-list file instead).
    graph = holme_kim(5_000, 6, triad_prob=0.6, seed=42)
    print(f"input: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Partition the edges into 10 balanced parts with the paper's
    #    two-stage local algorithm.
    partitioner = TLPPartitioner(seed=0)
    partition = partitioner.partition(graph, num_partitions=10)

    # 3. Inspect quality: the headline metric is the replication factor.
    report = PartitionReport.evaluate(partition, graph)
    print(f"replication factor : {report.replication_factor:.3f}  (1.0 = perfect)")
    print(f"edge balance       : {report.edge_balance:.3f}  (1.0 = perfect)")
    print(f"spanned vertices   : {report.spanned_vertices}")
    print(f"partition sizes    : {report.partition_sizes}")

    # 4. The two-stage telemetry behind the paper's Table VI.
    telemetry = partitioner.last_telemetry
    print(
        "stage I  selections: "
        f"{telemetry.selection_count(1):5d}  (mean degree {telemetry.mean_degree(1):6.1f})"
    )
    print(
        "stage II selections: "
        f"{telemetry.selection_count(2):5d}  (mean degree {telemetry.mean_degree(2):6.1f})"
    )


if __name__ == "__main__":
    main()
