#!/usr/bin/env python
"""Compare every implemented partitioner on one of the paper's datasets.

Run:  python examples/compare_partitioners.py [--dataset G4] [--scale 0.03]
      python examples/compare_partitioners.py --extended   # related-work too
"""

import argparse

from repro.analysis.compare import compare_algorithms, render_comparison
from repro.datasets.cache import load_cached
from repro.partitioning.registry import EXTENDED_ALGORITHMS, PAPER_ALGORITHMS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="G4", help="G1..G9 (default G4)")
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--partitions", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run HDRF/Greedy/Grid/FENNEL/NE and the one-stage ablations",
    )
    args = parser.parse_args()

    graph = load_cached(args.dataset, scale=args.scale, seed=args.seed)
    print(
        f"{args.dataset} stand-in @ scale {args.scale:g}: "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges, p={args.partitions}\n"
    )

    algorithms = list(PAPER_ALGORITHMS)
    if args.extended:
        algorithms += list(EXTENDED_ALGORITHMS)

    rows = compare_algorithms(graph, algorithms, args.partitions, seed=args.seed)
    print(render_comparison(rows))
    print("\n(lower RF is better; the paper's Fig. 8 ordering should hold)")


if __name__ == "__main__":
    main()
