#!/usr/bin/env python
"""Streaming vs. local partitioning: quality AND memory (paper §II).

The paper's argument for local partitioning:

* offline methods (METIS) need the whole graph in memory;
* streaming methods must retain everything received so far;
* local partitioning holds only one partition plus its frontier.

This example partitions the same graph three ways, reports RF next to the
peak retained state of each model, and demonstrates the paper's future-work
sliding window improving a streaming baseline on a shuffled stream.

Run:  python examples/streaming_vs_local.py
"""

import math

from repro.bench.report import render_table
from repro.core.tlp import TLPPartitioner
from repro.graph.generators import community_graph
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.metrics import replication_factor
from repro.partitioning.registry import make_partitioner
from repro.streaming.orders import edge_stream
from repro.streaming.stream import peak_local_state, peak_streaming_state
from repro.streaming.window import windowed_stream


def main() -> None:
    p = 10
    graph = community_graph(3_000, 18_000, 12, intra_fraction=0.9, seed=1)
    m = graph.num_edges
    capacity = math.ceil(m / p)
    print(f"graph: {graph.num_vertices} vertices, {m} edges, p={p}\n")

    rows = []

    # Offline: the whole graph is the working set.
    metis = make_partitioner("METIS", seed=0).partition(graph, p)
    rows.append(["METIS (offline)", replication_factor(metis, graph), m])

    # Streaming: every received edge is retained (paper §II-B).
    shuffled = edge_stream(graph, "random", seed=0)
    greedy = GreedyPartitioner(seed=0).assign_stream(shuffled, p)
    rows.append(
        ["Greedy (streaming)", replication_factor(greedy, graph), peak_streaming_state(m)]
    )

    # Streaming + the paper's future-work sliding window.
    window = 4096
    windowed = GreedyPartitioner(seed=0).assign_stream(
        windowed_stream(shuffled, window), p
    )
    rows.append(
        [
            f"Greedy + window {window}",
            replication_factor(windowed, graph),
            peak_streaming_state(m),
        ]
    )

    # Local: one partition + frontier.
    tlp_partitioner = TLPPartitioner(seed=0)
    tlp = tlp_partitioner.partition(graph, p)
    frontier_bound = max(graph.degree(v) for v in graph.vertices()) * 4
    rows.append(
        ["TLP (local)", replication_factor(tlp, graph), peak_local_state(capacity, frontier_bound)]
    )

    print(render_table(["method", "RF", "peak retained edges (model)"], rows))
    print(
        "\nLocal partitioning matches offline quality while holding an order"
        " of magnitude less state than either alternative."
    )


if __name__ == "__main__":
    main()
