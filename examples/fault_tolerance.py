#!/usr/bin/env python
"""Fault tolerance and delta caching on the simulated cluster.

Two production concerns of distributed graph engines, demonstrated on top
of a TLP partitioning:

1. **Checkpoint/rollback recovery** — machines crash mid-job; the engine
   rolls back to the last checkpoint and replays, with identical results.
2. **Delta caching (incremental gather)** — mirrors only ship partials that
   changed, so communication decays as the computation converges.

Run:  python examples/fault_tolerance.py
"""

from repro.bench.report import render_table
from repro.core.tlp import TLPPartitioner
from repro.graph.generators import community_graph
from repro.runtime.engine import GASEngine
from repro.runtime.programs import ConnectedComponents


def main() -> None:
    graph = community_graph(1_500, 9_000, 8, intra_fraction=0.9, seed=2)
    partition = TLPPartitioner(seed=0).partition(graph, 8)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, 8 machines\n")

    # --- 1. failure injection ------------------------------------------------
    clean = GASEngine(graph, partition, ConnectedComponents()).run()
    crashed = GASEngine(graph, partition, ConnectedComponents()).run(
        checkpoint_every=3, fail_at=[5]
    )
    print("connected components with a crash at superstep 5, checkpoints every 3:")
    print(f"  results identical to failure-free run : {crashed.values == clean.values}")
    print(f"  recoveries                            : {crashed.stats.recoveries}")
    print(f"  supersteps re-executed                : {crashed.stats.wasted_supersteps}")
    print(f"  total supersteps executed             : {crashed.stats.num_supersteps}"
          f" (clean: {clean.stats.num_supersteps})\n")

    # --- 2. delta caching ----------------------------------------------------
    full = GASEngine(graph, partition, ConnectedComponents()).run()
    delta = GASEngine(graph, partition, ConnectedComponents()).run(incremental=True)
    assert delta.values == full.values
    rows = []
    for step in range(full.stats.num_supersteps):
        rows.append(
            [
                step,
                full.stats.supersteps[step].gather_messages,
                delta.stats.supersteps[step].gather_messages,
                delta.stats.supersteps[step].changed_vertices,
            ]
        )
    print("gather messages per superstep, full vs delta-cached (same results):")
    print(
        render_table(
            ["superstep", "full gather", "delta gather", "changed vertices"], rows
        )
    )
    saving = 1 - delta.stats.total_messages / full.stats.total_messages
    print(f"\ntotal message saving from delta caching: {saving:.0%}")


if __name__ == "__main__":
    main()
