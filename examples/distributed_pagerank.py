#!/usr/bin/env python
"""Distributed PageRank on a simulated PowerGraph-style cluster.

Shows the paper's motivation end to end: a better edge partition (lower RF)
means fewer mirror synchronisation messages per superstep — with bit-identical
results.

Run:  python examples/distributed_pagerank.py [--machines 8]
"""

import argparse

from repro.bench.report import render_table
from repro.graph.generators import community_graph
from repro.partitioning.metrics import replication_factor
from repro.partitioning.registry import make_partitioner
from repro.runtime.engine import GASEngine
from repro.runtime.programs import PageRank, run_reference
from repro.runtime.stats import load_imbalance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = community_graph(2_000, 12_000, 10, intra_fraction=0.9, seed=args.seed)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"{args.machines} machines\n"
    )
    reference = run_reference(PageRank(), graph)

    rows = []
    for name in ("TLP", "METIS", "Random"):
        partition = make_partitioner(name, seed=args.seed).partition(
            graph, args.machines
        )
        engine = GASEngine(graph, partition, PageRank())
        result = engine.run()
        max_err = max(abs(result.values[v] - reference[v]) for v in reference)
        rows.append(
            [
                name,
                replication_factor(partition, graph),
                result.stats.total_messages,
                result.stats.num_supersteps,
                load_imbalance(engine.machine_loads()),
                f"{max_err:.1e}",
            ]
        )
    rows.sort(key=lambda row: row[1])
    print(
        render_table(
            ["partitioner", "RF", "total msgs", "supersteps", "imbalance", "max |err|"],
            rows,
        )
    )
    print(
        "\nAll partitionings compute identical PageRank values; only the"
        " communication bill differs — that is why RF matters."
    )


if __name__ == "__main__":
    main()
