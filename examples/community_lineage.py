#!/usr/bin/env python
"""The lineage of TLP: from local community detection to edge partitioning.

The paper imports its modularity machinery from local community detection
(Luo et al.).  This example makes the connection concrete on a planted-
community graph:

1. run local community detection from a seed — the M > 1 acceptance test;
2. run TLP and show its Stage I -> Stage II switch fires at the same
   M > 1 boundary while its partitions align with the planted communities.

Run:  python examples/community_lineage.py
"""

from repro.analysis.community import (
    community_recovery_score,
    vertex_assignment_from_partition,
)
from repro.community.local import local_community
from repro.core.tlp import TLPPartitioner
from repro.graph.generators import community_graph
from repro.partitioning.metrics import replication_factor


def main() -> None:
    num_communities = 6
    n = 480
    graph = community_graph(n, 2_900, num_communities, intra_fraction=0.93, seed=11)
    truth = {v: v * num_communities // n for v in graph.vertices()}
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"{num_communities} planted communities\n"
    )

    # --- 1. local community detection (the machinery's origin) -------------
    seed_vertex = max(graph.vertices(), key=graph.degree)
    result = local_community(graph, seed_vertex, max_size=n // num_communities + 20)
    own_block = truth[seed_vertex]
    inside = sum(1 for v in result.members if truth[v] == own_block)
    print(f"local community around vertex {seed_vertex} (planted block {own_block}):")
    print(f"  size {len(result.members)}, modularity M = {result.modularity:.2f}, "
          f"discovered (M > 1): {result.discovered}")
    print(f"  purity vs planted block: {inside / len(result.members):.0%}\n")

    # --- 2. TLP reuses the same M threshold as its stage boundary ----------
    partitioner = TLPPartitioner(seed=0)
    partition = partitioner.partition(graph, num_communities)
    telemetry = partitioner.last_telemetry
    print(f"TLP with p = {num_communities}:")
    print(f"  RF = {replication_factor(partition, graph):.3f}")
    print(f"  stage I selections : {telemetry.selection_count(1)} "
          f"(mean degree {telemetry.mean_degree(1):.1f})")
    print(f"  stage II selections: {telemetry.selection_count(2)} "
          f"(mean degree {telemetry.mean_degree(2):.1f})")
    nmi = community_recovery_score(partition, truth)
    print(f"  NMI of partitions vs planted communities: {nmi:.2f}")
    assignment = vertex_assignment_from_partition(partition)
    agree = sum(
        1
        for u, v in graph.edges()
        if (truth[u] == truth[v]) == (assignment[u] == assignment[v])
    )
    print(f"  edge-level agreement with ground truth  : {agree / graph.num_edges:.0%}")
    print(
        "\nThe same M > 1 boundary that accepts a community is the switch"
        "\nfrom Stage I (anchor on cores) to Stage II (tighten) in TLP."
    )


if __name__ == "__main__":
    main()
