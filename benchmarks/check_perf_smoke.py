"""CI gate for the perf smoke job.

Run after ``python -m repro.bench serve --quick`` and ``python -m
repro.bench perf --quick`` have written their reports into the current
directory.  Checks, in order:

1. ``BENCH_serve.json`` is schema v4+ and carries the ``batch`` section
   (batches actually formed, requests actually vectorised) — the batch
   path silently falling back to scalar would pass every correctness
   test while losing the throughput this PR bought.  When the run
   included the cluster phase (schema v5, ``--cluster-workers``), the
   ``cluster`` section must show the sharded server answered the same
   verified workload without losing throughput vs single-process (the
   throughput floor applies only when the machine has enough cores to
   host the worker topology; correctness checks always apply).  A
   schema v6 run (``--wire both``) must additionally show the binary
   codec at least matching JSON single-process throughput (small noise
   tolerance) and a passing counter-parity verify.
2. Quick-config throughput has not regressed more than
   ``MAX_REGRESSION`` vs the committed quick baseline
   (``benchmarks/BENCH_serve.quick.json``).  Refresh that baseline in
   the same PR whenever a deliberate change moves it.
3. ``BENCH_perf.json`` is schema v2+ and its ``parallel`` section proves
   the thread-pool paths stayed bit-identical (``grow_identical`` /
   ``fold_identical``) and recorded ``grow_threads`` / ``fold_seconds``.
4. When ``python -m repro.bench refine --quick`` contributed a
   ``refine`` section (schema v3), every row must have ``rf_delta >= 0``
   — a refinement pass that *raises* RF violates the engine's
   monotonicity invariant and must fail the job, not ship.
5. When ``python -m repro.bench oocore --quick`` contributed an
   ``oocore`` section (schema v4), the streaming partitioner's RF must
   stay within ``MAX_OOCORE_RF_RATIO`` of the in-memory HDRF baseline
   on the same edge file, the pipeline must not have dropped edges, and
   the streamed bundle must have re-verified from disk.

Exits non-zero with a one-line reason on the first failure.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Fraction of baseline throughput below which the job fails (>30%
#: regression per the issue; CI runners are noisy, anything tighter
#: false-alarms on shared hardware).
MAX_REGRESSION = 0.30

#: Binary single-process throughput must be at least this fraction of
#: the JSON run in the same report (``--wire both``).  The codec wins on
#: encode/decode microbenchmarks; end-to-end the asyncio framing
#: dominates, so the gate only guards against binary *regressing* the
#: serving path, with headroom for runner noise.
MIN_BINARY_VS_JSON = 0.95

#: Ceiling on streaming-vs-in-memory RF (``oocore`` section).  The
#: two-pass streaming heuristic usually *beats* plain HDRF (clustering
#: affinity), so >1.15x means the budget plumbing or the shared scorer
#: regressed quality.
MAX_OOCORE_RF_RATIO = 1.15

HERE = pathlib.Path(__file__).resolve().parent
SERVE_BASELINE = HERE / "BENCH_serve.quick.json"


def fail(reason: str) -> None:
    print(f"perf smoke FAILED: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    serve_path = pathlib.Path("BENCH_serve.json")
    perf_path = pathlib.Path("BENCH_perf.json")
    for path in (serve_path, perf_path):
        if not path.exists():
            fail(f"{path} not found — run the quick benches first")

    serve = json.loads(serve_path.read_text(encoding="utf-8"))
    if int(serve.get("version", 0)) < 4:
        fail(f"BENCH_serve.json schema {serve.get('version')!r} < 4")
    batch = serve.get("batch")
    if not isinstance(batch, dict):
        fail("BENCH_serve.json has no 'batch' section")
    if int(batch.get("batches", 0)) <= 0:
        fail("no batches formed — dispatcher batching is off")
    if int(batch.get("vectorised_requests", 0)) <= 0:
        fail("no requests vectorised — batch path fell back to scalar")
    if not serve.get("quick"):
        fail("BENCH_serve.json is not a --quick run; gate compares quick-to-quick")

    cluster = serve.get("cluster")
    if int(serve.get("version", 0)) >= 5 and cluster is not None:
        if not isinstance(cluster, dict):
            fail("BENCH_serve.json 'cluster' section is not an object")
        if int(cluster.get("verified_neighbors", 0)) <= 0:
            fail("cluster phase verified no neighbour fan-outs")
        if int(cluster.get("verified_edges", 0)) <= 0:
            fail("cluster phase verified no edge routes")
        if int(cluster.get("num_requests", 0)) != int(serve["num_requests"]):
            fail(
                "cluster phase answered "
                f"{cluster.get('num_requests')} requests, single-process "
                f"answered {serve['num_requests']} — workloads diverged"
            )
        # Sharded serving must not lose throughput vs single-process
        # (acceptance bar for the cluster subsystem) — but the
        # comparison only measures sharding when the worker processes
        # have cores of their own.  On a 1-core box the workers, the
        # front-end, and the bench driver time-slice one CPU, so the
        # cluster pays scatter/gather IPC with nothing to win; gate only
        # when the machine can actually host the topology (front-end +
        # driver + one core per worker), which GitHub's 4-vCPU runners
        # satisfy for --cluster-workers 2.
        cores = int(cluster.get("cpu_count") or 0)
        needed = int(cluster.get("workers", 0)) * int(cluster.get("replicas", 1)) + 2
        if cores >= needed:
            floor = serve["requests_per_s"] * (1.0 - MAX_REGRESSION)
            if cluster["requests_per_s"] < floor:
                fail(
                    f"cluster throughput {cluster['requests_per_s']} req/s is "
                    f"below {floor:.0f} ({serve['requests_per_s']} single-process "
                    f"minus {MAX_REGRESSION:.0%})"
                )
        else:
            print(
                f"note: cluster throughput floor skipped — {cores} CPUs < "
                f"{needed} needed for {cluster.get('workers')} workers "
                f"(speedup_vs_single={cluster.get('speedup_vs_single')})"
            )

    wire_note = ""
    if int(serve.get("version", 0)) >= 6:
        parity = serve.get("counter_parity", "")
        if not str(parity).startswith(("ok", "skipped")):
            fail(f"counter parity verify did not run cleanly: {parity!r}")
        modes = serve.get("wire_modes") or {}
        json_rps = int((modes.get("json") or {}).get("requests_per_s", 0))
        binary_rps = int((modes.get("binary") or {}).get("requests_per_s", 0))
        if json_rps and binary_rps:
            floor = json_rps * MIN_BINARY_VS_JSON
            if binary_rps < floor:
                fail(
                    f"binary wire {binary_rps} req/s is below "
                    f"{floor:.0f} ({MIN_BINARY_VS_JSON:.0%} of JSON's "
                    f"{json_rps} req/s) — the binary codec regressed "
                    "single-process serving"
                )
            wire_note = f"; wire binary {binary_rps} vs json {json_rps} req/s"
        if cluster is not None:
            c_modes = cluster.get("wire_modes") or {}
            for mode, summary in sorted(c_modes.items()):
                ratio = summary.get("speedup_vs_single")
                print(
                    f"note: cluster wire={mode} "
                    f"{summary.get('requests_per_s')} req/s "
                    f"(speedup_vs_single={ratio})"
                )

    baseline = json.loads(SERVE_BASELINE.read_text(encoding="utf-8"))
    floor = baseline["requests_per_s"] * (1.0 - MAX_REGRESSION)
    fresh = serve["requests_per_s"]
    if fresh < floor:
        fail(
            f"throughput {fresh} req/s is below {floor:.0f} "
            f"(baseline {baseline['requests_per_s']} minus {MAX_REGRESSION:.0%})"
        )

    perf = json.loads(perf_path.read_text(encoding="utf-8"))
    if int(perf.get("version", 0)) < 2:
        fail(f"BENCH_perf.json schema {perf.get('version')!r} < 2")
    parallel = perf.get("parallel")
    if not isinstance(parallel, dict):
        fail("BENCH_perf.json has no 'parallel' section")
    if not parallel.get("grow_identical"):
        fail("threaded growth diverged from sequential output")
    if not parallel.get("fold_identical"):
        fail("parallel compaction fold produced a different bundle")
    for field in ("grow_threads", "fold_seconds"):
        if field not in parallel:
            fail(f"BENCH_perf.json parallel section missing {field!r}")

    refine = perf.get("refine")
    refine_note = ""
    if int(perf.get("version", 0)) >= 3 or refine is not None:
        if not isinstance(refine, dict):
            fail("BENCH_perf.json has no 'refine' section — run the refine bench")
        rows = refine.get("rows")
        if not isinstance(rows, list) or not rows:
            fail("BENCH_perf.json refine section recorded no rows")
        for row in rows:
            delta = float(row.get("rf_delta", -1.0))
            if delta < 0:
                fail(
                    f"refinement RAISED RF on {row.get('dataset')}/"
                    f"{row.get('source')}: rf_delta={delta} — "
                    "monotonicity invariant broken"
                )
            if row.get("rf_after", 0) > row.get("rf_before", 0) + 1e-9:
                fail(
                    f"refine row {row.get('dataset')}/{row.get('source')} "
                    "has rf_after > rf_before"
                )
        best = max(float(r.get("rf_delta", 0.0)) for r in rows)
        refine_note = f"; refine rows={len(rows)} best_rf_delta={best}"

    oocore = perf.get("oocore")
    oocore_note = ""
    if int(perf.get("version", 0)) >= 4 or oocore is not None:
        if not isinstance(oocore, dict):
            fail("BENCH_perf.json has no 'oocore' section — run the oocore bench")
        ratio = float(oocore.get("rf_ratio", 0.0) or 0.0)
        if ratio <= 0:
            fail("oocore section recorded no rf_ratio")
        if ratio > MAX_OOCORE_RF_RATIO:
            fail(
                f"streaming RF is {ratio}x in-memory HDRF "
                f"(ceiling {MAX_OOCORE_RF_RATIO}x) — the out-of-core "
                "pipeline regressed partition quality"
            )
        if not oocore.get("bundle_rf_verified"):
            fail("streamed bundle was not re-verified from disk")
        streaming = oocore.get("streaming") or {}
        if int(streaming.get("num_edges", -1)) != int(oocore.get("edges", 0)):
            fail(
                f"streaming pipeline placed {streaming.get('num_edges')} "
                f"edges of {oocore.get('edges')} in the input file"
            )
        oocore_note = (
            f"; oocore rf_ratio={ratio} "
            f"rss={streaming.get('rss_max_kib')} KiB "
            f"({oocore.get('rss_budget_ratio')}x budget)"
        )

    print(
        "perf smoke OK: "
        f"{fresh} req/s (baseline {baseline['requests_per_s']}), "
        f"{batch['batches']} batches (mean {batch['mean_batch_size']}), "
        f"{batch['vectorised_requests']} vectorised; "
        f"grow_threads={parallel['grow_threads']} "
        f"fold_seconds={parallel['fold_seconds']}"
        f"{wire_note}{refine_note}{oocore_note}"
    )


if __name__ == "__main__":
    main()
