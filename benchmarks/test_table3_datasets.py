"""Table III — dataset statistics, and the cost of generating stand-ins.

The statistics themselves are matched by construction (the generators hit
the published |V|/|E| exactly); the benchmark times stand-in generation.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.tables import render_table3
from repro.datasets.catalog import PAPER_DATASETS, dataset_by_key
from repro.datasets.synthetic import instantiate


def test_table3_artifact(benchmark):
    """Render Table III (trivially fast; benchmarked for uniformity)."""
    table = benchmark(render_table3)
    write_artifact("table3.txt", table)
    assert "email-Eu-core" in table
    assert "huapu" in table


@pytest.mark.parametrize("key", ["G1", "G4", "G9"])
def test_standin_generation(benchmark, key):
    """Generation cost of a bench-scale stand-in, stats asserted."""
    spec = dataset_by_key(key)
    graph = benchmark.pedantic(
        lambda: instantiate(spec, scale=spec.bench_scale, seed=0),
        rounds=3,
        iterations=1,
    )
    scaled = spec.scaled(spec.bench_scale)
    assert graph.num_vertices == scaled.vertices
    assert graph.num_edges == scaled.edges


def test_all_standins_match_table3_shape(benchmark):
    """Average degree of every stand-in matches the published Table III."""

    def check():
        mismatches = []
        for spec in PAPER_DATASETS:
            graph = instantiate(spec, scale=spec.bench_scale, seed=0)
            if abs(graph.average_degree() - spec.average_degree) > 0.4:
                mismatches.append(spec.key)
        return mismatches

    mismatches = benchmark.pedantic(check, rounds=1, iterations=1)
    assert mismatches == []
