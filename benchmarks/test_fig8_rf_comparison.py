"""Fig. 8 — replication factor of TLP vs METIS/LDG/DBH/Random, p = 10/15/20.

Regenerates all three panels on the nine bench-scale stand-ins, writes them
to ``benchmarks/artifacts/fig8_p*.txt``, asserts the paper's qualitative
shape, and benchmarks each algorithm's partitioning kernel.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.figures import fig8
from repro.partitioning.metrics import replication_factor
from repro.partitioning.registry import PAPER_ALGORITHMS, make_partitioner

P_VALUES = (10, 15, 20)


@pytest.fixture(scope="module")
def fig8_data(bench_graphs):
    data = fig8(graphs=bench_graphs, p_values=P_VALUES, seed=0)
    for p in P_VALUES:
        write_artifact(f"fig8_p{p}.txt", data.render(p))
    return data


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_partitioning_kernel(benchmark, g4, algorithm):
    """Wall-clock of one (G4, p=10) partitioning call per algorithm."""
    partitioner = make_partitioner(algorithm, seed=0)
    partition = benchmark.pedantic(
        lambda: partitioner.partition(g4, 10), rounds=3, iterations=1
    )
    assert replication_factor(partition, g4) >= 1.0


def test_fig8_shape_random_worst(benchmark, fig8_data, bench_graphs):
    """Random has the worst RF on every dataset and p (paper Fig. 8)."""

    def violations():
        bad = []
        for dataset in bench_graphs:
            for p in P_VALUES:
                worst = fig8_data.rf(dataset, "Random", p)
                for algo in ("TLP", "METIS", "LDG", "DBH"):
                    if fig8_data.rf(dataset, algo, p) >= worst:
                        bad.append((dataset, algo, p))
        return bad

    assert benchmark.pedantic(violations, rounds=1, iterations=1) == []


def test_fig8_shape_tlp_and_metis_lead(benchmark, fig8_data, bench_graphs):
    """TLP or METIS is the best algorithm on every (dataset, p) cell."""

    def violations():
        bad = []
        for dataset in bench_graphs:
            for p in P_VALUES:
                best = min(
                    ("TLP", "METIS", "LDG", "DBH", "Random"),
                    key=lambda a: fig8_data.rf(dataset, a, p),
                )
                if best not in ("TLP", "METIS"):
                    bad.append((dataset, p, best))
        return bad

    assert benchmark.pedantic(violations, rounds=1, iterations=1) == []


def test_fig8_shape_tlp_beats_streaming(benchmark, fig8_data, bench_graphs):
    """TLP beats both streaming baselines on the vast majority of cells."""

    def win_fraction():
        wins = total = 0
        for dataset in bench_graphs:
            for p in P_VALUES:
                tlp = fig8_data.rf(dataset, "TLP", p)
                for algo in ("LDG", "DBH"):
                    total += 1
                    if tlp < fig8_data.rf(dataset, algo, p):
                        wins += 1
        return wins / total

    assert benchmark.pedantic(win_fraction, rounds=1, iterations=1) >= 0.85
