"""Incremental-growth bench — the intro's "graphs increase incrementally".

Partitions 80% of a graph with TLP, streams the remaining 20% through the
dynamic maintainer, and compares against re-partitioning from scratch: the
online placement should stay within a modest RF premium, and a refresh pass
should claw most of it back.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.core.dynamic import DynamicPartitioner
from repro.core.tlp import TLPPartitioner
from repro.graph.graph import Graph
from repro.partitioning.metrics import replication_factor
from repro.streaming.orders import edge_stream

P = 10


@pytest.fixture(scope="module")
def growth_results(g4):
    edges = edge_stream(g4, "random", seed=0)
    cut = int(0.8 * len(edges))
    base = Graph.from_edges(edges[:cut])
    initial = TLPPartitioner(seed=0).partition(base, P)
    dyn = DynamicPartitioner(initial, slack=1.15)
    dyn.add_edges(edges[cut:])
    online_rf = replication_factor(dyn.snapshot(), g4)
    saved = dyn.refresh()
    refreshed_rf = replication_factor(dyn.snapshot(), g4)
    full_rf = replication_factor(TLPPartitioner(seed=0).partition(g4, P), g4)
    write_artifact(
        "dynamic_growth.txt",
        render_table(
            ["strategy", "RF"],
            [
                ["TLP on 80% + online inserts", online_rf],
                ["  + refresh pass", refreshed_rf],
                ["TLP re-partition from scratch", full_rf],
            ],
        )
        + f"\nreplicas saved by refresh: {saved}",
    )
    return {"online": online_rf, "refreshed": refreshed_rf, "full": full_rf}


def test_online_premium_bounded(benchmark, growth_results):
    def premium():
        return growth_results["online"] - growth_results["full"]

    assert benchmark.pedantic(premium, rounds=1, iterations=1) < 0.8


def test_refresh_recovers_quality(benchmark, growth_results):
    def ordering():
        return (
            growth_results["refreshed"] <= growth_results["online"] + 1e-12
        )

    assert benchmark.pedantic(ordering, rounds=1, iterations=1)


def test_insert_kernel(benchmark, g4):
    edges = edge_stream(g4, "random", seed=0)
    cut = int(0.9 * len(edges))
    base = Graph.from_edges(edges[:cut])
    initial = TLPPartitioner(seed=0).partition(base, P)

    def insert_tail():
        dyn = DynamicPartitioner(initial, slack=1.15)
        dyn.add_edges(edges[cut:])
        return dyn

    dyn = benchmark.pedantic(insert_tail, rounds=3, iterations=1)
    assert dyn.insertions == len(edges) - cut
