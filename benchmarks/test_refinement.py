"""Replication-refinement bench — the library's post-processing extension.

The paper's conclusion anticipates further quality improvements; this bench
measures what greedy RF refinement buys on top of each Fig. 8 algorithm,
and verifies TLP is already near the refinement fixpoint (evidence its
local growth leaves little greedy slack on the table).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.partitioning.metrics import replication_factor
from repro.partitioning.refinement import refine_replication
from repro.partitioning.registry import PAPER_ALGORITHMS, make_partitioner

SLACK = 1.05


@pytest.fixture(scope="module")
def refinement_rows(g4):
    rows = {}
    table = []
    for name in PAPER_ALGORITHMS:
        before = make_partitioner(name, seed=0).partition(g4, 10)
        refined, stats = refine_replication(before, slack=SLACK)
        refined.validate_against(g4)
        rf_before = replication_factor(before, g4)
        rf_after = replication_factor(refined, g4)
        rows[name] = (rf_before, rf_after, stats.moves)
        table.append([name, rf_before, rf_after, rf_before - rf_after, stats.moves])
    table.sort(key=lambda row: row[2])
    write_artifact(
        "refinement.txt",
        render_table(["algorithm", "RF before", "RF after", "gain", "moves"], table),
    )
    return rows


def test_refinement_never_hurts(benchmark, refinement_rows):
    def violators():
        return [
            name
            for name, (before, after, _) in refinement_rows.items()
            if after > before + 1e-12
        ]

    assert benchmark.pedantic(violators, rounds=1, iterations=1) == []


def test_random_gains_most(benchmark, refinement_rows):
    def gains():
        return {
            name: before - after
            for name, (before, after, _) in refinement_rows.items()
        }

    values = benchmark.pedantic(gains, rounds=1, iterations=1)
    assert values["Random"] == max(values.values())


def test_tlp_near_fixpoint(benchmark, refinement_rows):
    def tlp_gain():
        before, after, _ = refinement_rows["TLP"]
        return before - after

    gain = benchmark.pedantic(tlp_gain, rounds=1, iterations=1)
    assert gain < 0.35


def test_refinement_kernel(benchmark, g4):
    before = make_partitioner("Random", seed=0).partition(g4, 10)
    refined, stats = benchmark.pedantic(
        lambda: refine_replication(before, slack=SLACK), rounds=3, iterations=1
    )
    assert stats.replicas_saved > 0
