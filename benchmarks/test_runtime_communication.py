"""The paper's motivation (§I) — partition quality drives communication.

Runs PageRank on the simulated PowerGraph-style engine over partitions from
each Fig. 8 algorithm and checks that message volume orders exactly as RF.
Also benchmarks the engine's superstep throughput.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.communication import communication_experiment, render_communication
from repro.partitioning.registry import PAPER_ALGORITHMS, make_partitioner
from repro.runtime.engine import GASEngine
from repro.runtime.programs import ConnectedComponents, PageRank


@pytest.fixture(scope="module")
def comm_rows(g4):
    rows = communication_experiment(
        g4, algorithms=PAPER_ALGORITHMS, num_partitions=10, seed=0, max_supersteps=5
    )
    write_artifact("communication.txt", render_communication(rows))
    return rows


def test_messages_order_matches_rf(benchmark, comm_rows):
    def is_ordered():
        msgs = [r.gather_messages_per_superstep for r in comm_rows]
        return msgs == sorted(msgs)

    assert benchmark.pedantic(is_ordered, rounds=1, iterations=1)


def test_tlp_cuts_communication_vs_random(benchmark, comm_rows):
    by_name = {r.algorithm: r for r in comm_rows}

    def speedup():
        return (
            by_name["Random"].gather_messages_per_superstep
            / by_name["TLP"].gather_messages_per_superstep
        )

    assert benchmark.pedantic(speedup, rounds=1, iterations=1) > 1.5


def test_pagerank_superstep_kernel(benchmark, g4):
    partition = make_partitioner("TLP", seed=0).partition(g4, 10)
    engine = GASEngine(g4, partition, PageRank())
    result = benchmark.pedantic(
        lambda: engine.run(max_supersteps=3), rounds=3, iterations=1
    )
    assert result.stats.num_supersteps == 3


def test_connected_components_to_convergence_kernel(benchmark, g4):
    partition = make_partitioner("TLP", seed=0).partition(g4, 10)
    engine = GASEngine(g4, partition, ConnectedComponents())
    result = benchmark.pedantic(lambda: engine.run(), rounds=3, iterations=1)
    assert result.converged
