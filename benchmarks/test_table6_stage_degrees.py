"""Table VI — mean degree of the vertices selected in Stage I vs Stage II.

The paper's finding: Stage I selects the high-degree core vertices, Stage II
the low-degree periphery, on every dataset and p.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.tables import table6

P_VALUES = (10, 15, 20)


@pytest.fixture(scope="module")
def table6_data(bench_graphs):
    data = table6(graphs=bench_graphs, p_values=P_VALUES, seed=0)
    write_artifact("table6.txt", data.render())
    return data


@pytest.mark.parametrize("p", P_VALUES)
def test_stage1_degree_exceeds_stage2_on_every_dataset(benchmark, table6_data, p):
    def violations():
        bad = []
        for dataset in table6_data.datasets:
            s1, s2 = table6_data.mean_degrees[(dataset, p)]
            if not (s1 > 0 and s2 > 0 and s1 > s2):
                bad.append(dataset)
        return bad

    assert benchmark.pedantic(violations, rounds=1, iterations=1) == []


def test_stage1_dominance_is_large_on_sparse_graphs(benchmark, table6_data):
    """On the sparser stand-ins the gap is a multiple, as in Table VI."""

    def min_ratio():
        ratios = []
        for dataset in ("G4", "G9"):
            for p in P_VALUES:
                s1, s2 = table6_data.mean_degrees[(dataset, p)]
                ratios.append(s1 / s2)
        return min(ratios)

    assert benchmark.pedantic(min_ratio, rounds=1, iterations=1) > 1.5


def test_telemetry_overhead_kernel(benchmark, bench_graphs):
    """TLP with telemetry enabled (it always is) on G9 — the near-tree case."""
    from repro.core.tlp import TLPPartitioner

    g9 = bench_graphs["G9"]
    partitioner = TLPPartitioner(seed=0)
    part = benchmark.pedantic(
        lambda: partitioner.partition(g9, 10), rounds=3, iterations=1
    )
    assert partitioner.last_telemetry.records
    assert part.num_partitions == 10
