"""§II-A — vertex partitioning vs. edge partitioning, measured.

The paper (after PowerGraph/GraphX) motivates edge partitioning with two
claims about power-law graphs: vertex cuts (1) replicate less than the
ghost mechanism of edge cuts and (2) balance the per-machine *edge* load
that actually determines compute time.  This bench measures both on a
power-law stand-in, plus the seed-strategy and makespan ablations of the
extended implementation.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.core.tlp import TLPPartitioner
from repro.partitioning.ldg import LDGPartitioner
from repro.partitioning.metrics import edge_balance, replication_factor
from repro.partitioning.registry import make_partitioner
from repro.partitioning.vertex_adapter import VertexToEdgePartitioner
from repro.partitioning.vertex_metrics import (
    edge_load_balance,
    vertex_replication_factor,
)
from repro.runtime.engine import GASEngine
from repro.runtime.programs import PageRank
from repro.runtime.stats import estimate_makespan

P = 10


@pytest.fixture(scope="module")
def comparison(g4):
    ldg = LDGPartitioner(seed=0)
    assignment = ldg.partition_vertices(g4, P)
    vertex_rf = vertex_replication_factor(g4, assignment)
    vertex_edge_load = edge_load_balance(g4, assignment, P)
    edge_part = VertexToEdgePartitioner(LDGPartitioner(seed=0)).partition(g4, P)
    tlp_part = TLPPartitioner(seed=0).partition(g4, P)
    rows = [
        ["vertex partitioning (LDG + ghosts)", vertex_rf, vertex_edge_load],
        [
            "edge partitioning (LDG-derived)",
            replication_factor(edge_part, g4),
            edge_balance(edge_part),
        ],
        [
            "edge partitioning (TLP)",
            replication_factor(tlp_part, g4),
            edge_balance(tlp_part),
        ],
    ]
    write_artifact(
        "vertex_vs_edge.txt",
        render_table(["scheme", "replication", "edge-load balance"], rows),
    )
    return {
        "vertex_rf": vertex_rf,
        "vertex_edge_load": vertex_edge_load,
        "edge_rf": replication_factor(edge_part, g4),
        "edge_balance": edge_balance(edge_part),
        "tlp_rf": replication_factor(tlp_part, g4),
    }


def test_edge_partitioning_replicates_less(benchmark, comparison):
    assert benchmark.pedantic(
        lambda: comparison["edge_rf"] < comparison["vertex_rf"],
        rounds=1,
        iterations=1,
    )


def test_edge_partitioning_balances_edge_load(benchmark, comparison):
    assert benchmark.pedantic(
        lambda: comparison["edge_balance"] < comparison["vertex_edge_load"],
        rounds=1,
        iterations=1,
    )


def test_tlp_best_replication(benchmark, comparison):
    assert benchmark.pedantic(
        lambda: comparison["tlp_rf"]
        < min(comparison["edge_rf"], comparison["vertex_rf"]),
        rounds=1,
        iterations=1,
    )


def test_seed_strategy_ablation(benchmark, g4):
    """Seed strategy barely moves TLP's RF — the heuristics, not the seed,
    carry the quality (an implicit robustness claim of the paper's
    'select x randomly')."""

    def spread():
        rf = {}
        for strategy in ("random", "max-degree", "min-degree"):
            part = TLPPartitioner(seed=0, seed_strategy=strategy).partition(g4, P)
            rf[strategy] = replication_factor(part, g4)
        write_artifact(
            "seed_strategies.txt",
            render_table(["strategy", "RF"], [[s, v] for s, v in rf.items()]),
        )
        return max(rf.values()) - min(rf.values())

    assert benchmark.pedantic(spread, rounds=1, iterations=1) < 0.5


def test_makespan_model_orders_like_rf(benchmark, g4):
    def makespans():
        values = {}
        for name in ("TLP", "Random"):
            partition = make_partitioner(name, seed=0).partition(g4, P)
            engine = GASEngine(g4, partition, PageRank())
            result = engine.run(max_supersteps=5)
            values[name] = estimate_makespan(
                engine.machine_loads(), result.stats, edge_cost=1.0, message_cost=2.0
            )
        return values

    values = benchmark.pedantic(makespans, rounds=1, iterations=1)
    assert values["TLP"] < values["Random"]


def test_failure_recovery_overhead(benchmark, g4):
    """Checkpoint recovery replays only the post-checkpoint suffix."""
    partition = TLPPartitioner(seed=0).partition(g4, P)

    def wasted():
        engine = GASEngine(g4, partition, PageRank())
        result = engine.run(max_supersteps=12, checkpoint_every=4, fail_at=[6])
        return result.stats.wasted_supersteps

    assert benchmark.pedantic(wasted, rounds=1, iterations=1) == 2
