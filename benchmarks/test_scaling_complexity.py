"""§III-E — time and space scaling of TLP.

The paper bounds the naive algorithm at O(L^2 d^2) time and O(L d) space.
Our incremental implementation must scale clearly sub-quadratically in the
edge count, and its peak memory must track the partition size, not the
graph size.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.bench.scaling import empirical_exponent, time_scaling_sweep
from repro.core.tlp import TLPPartitioner
from repro.graph.generators import holme_kim


@pytest.fixture(scope="module")
def sweep_points():
    points = time_scaling_sweep(sizes=(400, 800, 1600, 3200), m_attach=4, seed=0)
    table = render_table(
        ["|V|", "|E|", "seconds", "peak KiB"],
        [[p.num_vertices, p.num_edges, p.seconds, p.peak_kib] for p in points],
    )
    write_artifact(
        "scaling.txt",
        table + f"\nlog-log exponent: {empirical_exponent(points):.2f}",
    )
    return points


def test_time_scaling_subquadratic(benchmark, sweep_points):
    exponent = benchmark.pedantic(
        lambda: empirical_exponent(sweep_points), rounds=1, iterations=1
    )
    assert exponent < 1.8  # paper's naive bound would be ~2


def test_time_grows_with_size(benchmark, sweep_points):
    def is_monotone():
        seconds = [p.seconds for p in sweep_points]
        return seconds[-1] > seconds[0]

    assert benchmark.pedantic(is_monotone, rounds=1, iterations=1)


@pytest.mark.parametrize("p", [4, 16])
def test_more_partitions_cost_kernel(benchmark, p):
    """Smaller partitions (larger p) mean smaller frontiers per round."""
    graph = holme_kim(1500, 4, 0.5, seed=0)
    partitioner = TLPPartitioner(seed=0)
    part = benchmark.pedantic(
        lambda: partitioner.partition(graph, p), rounds=3, iterations=1
    )
    assert part.num_partitions == p
