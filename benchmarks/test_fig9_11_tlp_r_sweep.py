"""Figs. 9/10/11 — TLP vs TLP_R for R in {0.0 .. 1.0}, p in {10, 15, 20}.

The paper's conclusions, asserted per panel:
(1) interior R values beat the endpoints (two stages beat one stage);
(2) the endpoints are the worst settings;
(3) the optimum R differs per graph;
(4) TLP (modularity switch) is near the best interior R without tuning.

The full 9-dataset x 11-R x 3-p grid is large even at bench scale, so the
benchmark panels cover three structurally distinct datasets (dense social G1,
sparse social G4, near-tree G9) at all three p; the full grid is
``python -m repro.bench fig9 fig10 fig11``.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.figures import tlp_r_sweep

PANELS = [("G1", 10), ("G1", 15), ("G1", 20), ("G4", 10), ("G9", 10)]
R_VALUES = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


@pytest.fixture(scope="module")
def sweeps(bench_graphs):
    results = {}
    for dataset, p in PANELS:
        sweep = tlp_r_sweep(
            bench_graphs[dataset], dataset, p, r_values=R_VALUES, seed=0
        )
        results[(dataset, p)] = sweep
        write_artifact(f"fig9_11_{dataset}_p{p}.txt", sweep.render())
    return results


@pytest.mark.parametrize("panel", PANELS, ids=lambda t: f"{t[0]}-p{t[1]}")
def test_interior_not_worse_than_endpoints(benchmark, sweeps, panel):
    """Conclusion (1)/(2): some interior R beats the worse endpoint."""
    sweep = sweeps[panel]
    gap = benchmark.pedantic(
        lambda: sweep.endpoint_worst() - sweep.best_interior(),
        rounds=1,
        iterations=1,
    )
    assert gap >= -0.02  # interior at least matches endpoints (usually beats)


@pytest.mark.parametrize("panel", PANELS, ids=lambda t: f"{t[0]}-p{t[1]}")
def test_tlp_near_best_interior(benchmark, sweeps, panel):
    """Conclusion (4): TLP is near-optimal without tuning R."""
    sweep = sweeps[panel]
    ratio = benchmark.pedantic(
        lambda: sweep.tlp_rf / sweep.best_interior(), rounds=1, iterations=1
    )
    assert ratio <= 1.35


def test_optimal_r_varies_across_graphs(benchmark, sweeps):
    """Conclusion (3): no single R is optimal for all graphs."""

    def optimal_rs():
        best = set()
        for (dataset, p), sweep in sweeps.items():
            pairs = list(zip(sweep.r_values, sweep.tlp_r_rf))
            best.add(min(pairs, key=lambda rv: rv[1])[0])
        return best

    values = benchmark.pedantic(optimal_rs, rounds=1, iterations=1)
    assert len(values) >= 2


def test_tlp_r_kernel(benchmark, bench_graphs):
    """Wall-clock of one TLP_R run (G4, R=0.5, p=10)."""
    from repro.core.tlp_r import TLPRPartitioner

    g4 = bench_graphs["G4"]
    partitioner = TLPRPartitioner(0.5, seed=0)
    part = benchmark.pedantic(
        lambda: partitioner.partition(g4, 10), rounds=3, iterations=1
    )
    assert part.num_partitions == 10
