"""Ablation benches for the implementation choices DESIGN.md calls out.

Each ablation runs TLP with one knob flipped and reports/bounds the effect:

* strict vs. loose (paper-literal) capacity;
* residual vs. original similarity scope (Stage I neighbourhoods);
* reseed-on-break vs. literal Algorithm-1 break;
* the sliding-window future-work feature for streaming baselines;
* the vertex->edge adapter strategies for METIS/LDG.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.core.tlp import TLPPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.ldg import LDGPartitioner
from repro.partitioning.metrics import edge_balance, replication_factor
from repro.partitioning.vertex_adapter import VertexToEdgePartitioner
from repro.streaming.orders import edge_stream
from repro.streaming.window import windowed_stream


@pytest.fixture(scope="module")
def ablation_rows(g4):
    rows = []

    def run(label, partitioner):
        part = partitioner.partition(g4, 10)
        rows.append(
            [
                label,
                replication_factor(part, g4),
                edge_balance(part),
            ]
        )
        return part

    run("TLP strict capacity", TLPPartitioner(seed=0))
    run("TLP loose capacity", TLPPartitioner(seed=0, strict_capacity=False))
    run("TLP original-scope mu_s1", TLPPartitioner(seed=0, similarity_scope="original"))
    run("TLP no reseed", TLPPartitioner(seed=0, reseed_on_break=False))
    write_artifact(
        "ablations.txt", render_table(["variant", "RF", "balance"], rows)
    )
    return {row[0]: row for row in rows}


def test_strict_capacity_costs_little_rf(benchmark, ablation_rows):
    """Definition 3 compliance should not meaningfully hurt RF."""

    def rf_gap():
        return (
            ablation_rows["TLP strict capacity"][1]
            - ablation_rows["TLP loose capacity"][1]
        )

    assert abs(benchmark.pedantic(rf_gap, rounds=1, iterations=1)) < 0.6


def test_loose_capacity_hurts_balance(benchmark, ablation_rows):
    def balances():
        return (
            ablation_rows["TLP strict capacity"][2],
            ablation_rows["TLP loose capacity"][2],
        )

    strict, loose = benchmark.pedantic(balances, rounds=1, iterations=1)
    assert strict <= loose + 1e-9


def test_similarity_scope_equivalence_class(benchmark, ablation_rows):
    """Residual vs original Stage-I neighbourhoods land in the same RF band."""

    def gap():
        return abs(
            ablation_rows["TLP strict capacity"][1]
            - ablation_rows["TLP original-scope mu_s1"][1]
        )

    assert benchmark.pedantic(gap, rounds=1, iterations=1) < 0.6


def test_window_size_sweep_for_streaming(benchmark, g4):
    """Future work (§V): sliding-window reordering vs raw shuffled stream."""
    shuffled = edge_stream(g4, "random", seed=1)

    def rf_for(window):
        stream = shuffled if window == 1 else windowed_stream(shuffled, window)
        part = GreedyPartitioner(seed=0).assign_stream(stream, 10)
        return replication_factor(part, g4)

    def sweep():
        return {w: rf_for(w) for w in (1, 64, 1024)}

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        "window_sweep.txt",
        render_table(["window", "RF(Greedy)"], [[w, rf] for w, rf in values.items()]),
    )
    assert values[1024] <= values[1] * 1.1  # windowing never badly hurts


@pytest.mark.parametrize("strategy", ["balanced", "first", "random"])
def test_adapter_strategy_rf_band(benchmark, g4, strategy):
    """All vertex->edge adapter strategies give comparable RF for LDG."""
    partitioner = VertexToEdgePartitioner(
        LDGPartitioner(seed=0), strategy=strategy, seed=0
    )
    part = benchmark.pedantic(
        lambda: partitioner.partition(g4, 10), rounds=2, iterations=1
    )
    rf = replication_factor(part, g4)
    assert 1.0 <= rf < 10.0
