"""Extended comparison — every implemented algorithm on one dataset.

Beyond the paper's Fig. 8 five, this bench ranks the related-work baselines
(HDRF, Greedy, Grid, FENNEL, NE, KL, Spectral) and the TLP variants
(one-stage ablations, windowed) on a common workload, asserting the broad
quality bands the literature predicts.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.report import render_table
from repro.partitioning.metrics import edge_balance, replication_factor
from repro.partitioning.registry import (
    EXTENDED_ALGORITHMS,
    PAPER_ALGORITHMS,
    make_partitioner,
)

ALL = tuple(PAPER_ALGORITHMS) + tuple(EXTENDED_ALGORITHMS)


@pytest.fixture(scope="module")
def ranking(g4):
    rows = []
    rf = {}
    for name in ALL:
        partitioner = make_partitioner(name, seed=0)
        partition = partitioner.partition(g4, 10)
        partition.validate_against(g4)
        rf[name] = replication_factor(partition, g4)
        rows.append([name, rf[name], edge_balance(partition)])
    rows.sort(key=lambda row: row[1])
    write_artifact(
        "extended_baselines.txt",
        render_table(["algorithm", "RF", "balance"], rows),
    )
    return rf


def test_informed_methods_beat_random(benchmark, ranking):
    def violators():
        return [
            name
            for name in ALL
            if name not in ("Random",) and ranking[name] >= ranking["Random"]
        ]

    assert benchmark.pedantic(violators, rounds=1, iterations=1) == []


def test_local_family_is_competitive(benchmark, ranking):
    """TLP and NE (local methods) sit in the top half of the ranking."""

    def top_half():
        ordered = sorted(ALL, key=lambda n: ranking[n])
        half = set(ordered[: len(ordered) // 2 + 1])
        return {"TLP", "NE"} <= half

    assert benchmark.pedantic(top_half, rounds=1, iterations=1)


def test_windowed_tlp_within_band_of_tlp(benchmark, ranking):
    def gap():
        return ranking["TLP-W"] - ranking["TLP"]

    assert benchmark.pedantic(gap, rounds=1, iterations=1) < 1.0


@pytest.mark.parametrize("name", ["HDRF", "Greedy", "NE", "KL", "Spectral"])
def test_extended_kernel(benchmark, g4, name):
    partitioner = make_partitioner(name, seed=0)
    partition = benchmark.pedantic(
        lambda: partitioner.partition(g4, 10), rounds=2, iterations=1
    )
    assert partition.num_partitions == 10
