"""Table IV — dRF = RF(METIS) - RF(TLP) per dataset and p.

The paper reports dRF > 0 on 8/9 datasets and positive averages for all p.
Our reproduction asserts a positive average and a clear majority of positive
cells (the exact losing dataset may differ: our METIS is a reimplementation
and the graphs are stand-ins — see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.figures import fig8
from repro.bench.tables import table4

P_VALUES = (10, 15, 20)


@pytest.fixture(scope="module")
def table4_data(bench_graphs):
    data = fig8(
        graphs=bench_graphs, algorithms=("TLP", "METIS"), p_values=P_VALUES, seed=0
    )
    result = table4(fig8_data=data)
    write_artifact("table4.txt", result.render())
    return result


@pytest.mark.parametrize("p", P_VALUES)
def test_average_delta_rf_positive(benchmark, table4_data, p):
    """The 'Average' column of Table IV is positive for every p."""
    average = benchmark.pedantic(
        lambda: table4_data.average(p), rounds=1, iterations=1
    )
    assert average > 0


@pytest.mark.parametrize("p", P_VALUES)
def test_majority_of_datasets_positive(benchmark, table4_data, p):
    """TLP beats METIS on a clear majority of datasets (8/9 in the paper)."""
    fraction = benchmark.pedantic(
        lambda: table4_data.positive_fraction(p), rounds=1, iterations=1
    )
    assert fraction >= 2 / 3
