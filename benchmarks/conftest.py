"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper at the
small ``bench_scale`` of each dataset (seconds, not hours) and writes the
rendered artefacts to ``benchmarks/artifacts/``.  The full-scale reproduction
is ``python -m repro.bench all`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import load_paper_graphs

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def write_artifact(name: str, content: str) -> None:
    """Persist a rendered table/figure for inspection after the run."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / name).write_text(content + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_graphs():
    """All nine Table-III stand-ins at their bench scales (cached on disk)."""
    return load_paper_graphs(seed=0, bench=True)


@pytest.fixture(scope="session")
def g1(bench_graphs):
    return bench_graphs["G1"]


@pytest.fixture(scope="session")
def g4(bench_graphs):
    return bench_graphs["G4"]


@pytest.fixture(scope="session")
def g9(bench_graphs):
    return bench_graphs["G9"]
