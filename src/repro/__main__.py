"""Command-line partitioner: ``python -m repro <edge-list> -p 10``.

Reads a SNAP-format edge list (optionally gzipped), partitions its edges
with any registered algorithm (default TLP), prints a quality report, and
optionally writes the result:

* ``--assignments out.tsv`` — one ``u <TAB> v <TAB> partition`` line per edge;
* ``--output-dir parts/``  — one ``part_<k>.edges`` file per partition.

There is also a ``serve`` subcommand that answers routing queries against
a saved partition bundle over TCP (see ``docs/SERVING.md``)::

    python -m repro serve parts/ --port 7531

A running server hot-swaps a new bundle in without dropping connections
(epoch-based atomic flip): send it SIGHUP, start it with ``--watch`` so
it polls the bundle's manifest for changes, or use the admin command::

    python -m repro reload parts_v2/ --port 7531

``serve --wal`` turns on the write path (``insert_edge`` /
``delete_edge`` protocol ops backed by a write-ahead log in the bundle
directory), and ``compact`` folds the accumulated mutations back into
the bundle on a live server::

    python -m repro serve parts/ --port 7531 --wal
    python -m repro compact --port 7531

``partition-stream`` partitions an edge list **without materialising the
graph** — two streaming passes under a byte budget, writing the same
bundle format ``--save-dir`` does (see ``docs/STREAMING_PARTITIONING.md``)::

    python -m repro partition-stream graph.txt.gz parts/ -p 16 --memory-budget 256M

``refine`` runs the local-search RF refinement post-pass over a saved
bundle (boundary-edge moves and pair swaps under the capacity bound) and
rewrites it in place — a running ``--watch`` server picks the refined
bundle up automatically, or ``reload`` swaps it in by hand::

    python -m repro refine parts/
    python -m repro serve parts/ --wal --refine-on-compact   # refine online

Examples
--------
::

    python -m repro graph.txt -p 10
    python -m repro graph.txt.gz -p 16 --algorithm METIS --seed 7 \
        --assignments parts.tsv --detail
    python -m repro graph.txt -p 8 --algorithm TLP-W:100000   # bounded memory
    python -m repro graph.txt -p 8 --save-dir parts/ && python -m repro serve parts/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.partition_stats import describe_partition
from repro.graph.io import read_edge_list
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.metrics import PartitionReport
from repro.partitioning.registry import available_partitioners, make_partitioner


def _parse_bytes(text: str) -> int:
    """Parse a byte size: plain bytes or a K/M/G-suffixed count (binary)."""
    text = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    suffix = text[-1:].upper()
    if suffix in units:
        return int(float(text[:-1]) * units[suffix])
    return int(text)


def _build_partition_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro partition-stream",
        description="Partition an edge list into a serving bundle without "
        "ever materialising the graph: two streaming passes (clustering + "
        "degree sketch, then cluster-aware HDRF/greedy placement into "
        "per-partition spills) and an external-sort fold into the same "
        "bundle format --save-dir writes.",
    )
    parser.add_argument("input", help="edge-list file (SNAP format, .gz ok)")
    parser.add_argument("output", type=Path, help="bundle directory to write")
    parser.add_argument(
        "-p", "--partitions", type=int, required=True, help="number of partitions"
    )
    parser.add_argument(
        "--memory-budget",
        type=_parse_bytes,
        default=None,
        metavar="BYTES",
        help="byte budget for in-memory state (suffixes K/M/G; e.g. 256M). "
        "Sizes the exact-degree cap, spill buffers, and sort runs; "
        "omitted = generous defaults",
    )
    parser.add_argument(
        "--policy",
        choices=("hdrf", "greedy"),
        default="hdrf",
        help="pass-2 placement heuristic (default hdrf)",
    )
    parser.add_argument(
        "--lam", type=float, default=1.1, help="HDRF balance weight (default 1.1)"
    )
    parser.add_argument(
        "--gamma",
        type=float,
        default=None,
        metavar="G",
        help="cluster-affinity bonus (default 0.5; only with clustering)",
    )
    parser.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the pass-1 clustering (degree sketch only; plain "
        "streaming HDRF placement)",
    )
    parser.add_argument(
        "--hints",
        type=Path,
        default=None,
        metavar="BUNDLE",
        help="prior bundle whose refined partition-size profile "
        "(metadata['refined']['partition_sizes']) becomes HDRF balance "
        "priors for placement",
    )
    parser.add_argument(
        "--compress", action="store_true", help="write gzip edge files"
    )
    return parser


def partition_stream_main(argv: List[str]) -> int:
    """The ``partition-stream`` subcommand: out-of-core partitioning."""
    from repro.partitioning.oocore import partition_stream
    from repro.partitioning.oocore.place import DEFAULT_GAMMA

    args = _build_partition_stream_parser().parse_args(argv)
    if args.partitions < 1:
        print("error: --partitions must be >= 1", file=sys.stderr)
        return 2
    budget = (
        f"{args.memory_budget} bytes" if args.memory_budget else "unbounded"
    )
    print(
        f"streaming {args.input} into p={args.partitions} "
        f"[{args.policy} placement, memory budget {budget}]"
    )
    try:
        result = partition_stream(
            args.input,
            args.output,
            num_partitions=args.partitions,
            memory_budget=args.memory_budget,
            policy=args.policy,
            lam=args.lam,
            gamma=args.gamma if args.gamma is not None else DEFAULT_GAMMA,
            cluster=not args.no_cluster,
            hints=args.hints,
            compress=args.compress,
            metadata={
                "algorithm": "oocore-2ps",
                "policy": args.policy,
                "input": str(args.input),
                "num_partitions": args.partitions,
                "memory_budget_bytes": args.memory_budget,
            },
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot partition {args.input}: {exc}", file=sys.stderr)
        return 2
    print(
        f"pass 1 (cluster+sketch) : {result.pass1_seconds:.3f}s "
        f"[{result.sketch_kind} degrees, {result.num_clusters} clusters]"
    )
    print(
        f"pass 2 (placement)      : {result.pass2_seconds:.3f}s "
        f"[{result.num_edges} edges, {result.num_vertices} vertices]"
    )
    print(f"bundle (sort+csr)       : {result.bundle_seconds:.3f}s")
    print(
        f"replication factor      : {result.replication_factor:.4f} "
        f"({result.edges_per_s:.0f} edges/s end-to-end)"
    )
    print(f"wrote partition bundle with manifest {result.manifest_path}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("input", help="edge-list file (SNAP format, .gz ok)")
    parser.add_argument(
        "-p", "--partitions", type=int, required=True, help="number of partitions"
    )
    parser.add_argument(
        "--algorithm",
        default="TLP",
        help=f"one of {available_partitioners()} (or TLP_R:<r> / TLP-W:<window>)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--assignments", type=Path, default=None, help="write 'u v k' TSV here"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="write one part_<k>.edges file per partition here",
    )
    parser.add_argument(
        "--save-dir",
        type=Path,
        default=None,
        help="write a verified partition bundle (edge files + JSON manifest)",
    )
    parser.add_argument(
        "--detail", action="store_true", help="print per-partition diagnostics"
    )
    parser.add_argument(
        "--no-sidecar",
        action="store_true",
        help="with --save-dir: skip the binary CSR sidecar (text-only bundle)",
    )
    return parser


def write_assignments(partition: EdgePartition, path: Path) -> None:
    """Write the edge -> partition mapping as a TSV."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# u\tv\tpartition\n")
        for k in range(partition.num_partitions):
            for u, v in partition.edges_of(k):
                fh.write(f"{u}\t{v}\t{k}\n")


def write_partition_files(partition: EdgePartition, directory: Path) -> List[Path]:
    """Write each partition as its own edge-list file; returns the paths."""
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for k in range(partition.num_partitions):
        path = directory / f"part_{k}.edges"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# partition {k}: {len(partition.edges_of(k))} edges\n")
            for u, v in partition.edges_of(k):
                fh.write(f"{u}\t{v}\n")
        paths.append(path)
    return paths


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve routing queries against a saved partition bundle.",
    )
    parser.add_argument("directory", type=Path, help="a --save-dir bundle")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    parser.add_argument(
        "--max-queue", type=int, default=1024, help="bounded request queue size"
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds to coalesce lookups into one batch",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=5.0,
        help="per-request timeout in seconds",
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip manifest checksum checks"
    )
    parser.add_argument(
        "--store-backend",
        choices=("auto", "csr", "dict"),
        default="auto",
        help="adjacency layout: memory-mapped CSR sidecar (csr), legacy "
        "dict-of-sets (dict), or csr-when-available (auto, the default)",
    )
    parser.add_argument(
        "--no-hot-reload",
        action="store_true",
        help="disable the reload admin op, SIGHUP, and --watch",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="poll the bundle manifest this often and hot-reload on change",
    )
    parser.add_argument(
        "--wal",
        action="store_true",
        help="enable edge mutations backed by a write-ahead log in the bundle "
        "directory (replayed on start)",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL durability: fsync every append, at most every 50ms (default), "
        "or never",
    )
    parser.add_argument(
        "--placement",
        choices=("hdrf", "greedy"),
        default="hdrf",
        help="streaming heuristic routing inserted edges to a partition",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="EDGES",
        help="per-partition edge capacity bound C for inserts "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--refine-on-compact",
        action="store_true",
        help="with --wal: run local-search RF refinement on every "
        "compaction, folding out mutation-induced RF drift before the "
        "epoch swap",
    )
    parser.add_argument(
        "--refine-slack",
        type=float,
        default=1.0,
        metavar="S",
        help="with --refine-on-compact: capacity headroom multiplier "
        "ceil(S*m/p) for the refinement pass (default 1.0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="cluster mode: shard the store across N worker processes "
        "(0 = single-process, the default)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="cluster mode: R replica processes per shard (failover targets)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose Prometheus metrics on http://HOST:PORT/metrics",
    )
    return parser


def _install_stop_signals(stop: "asyncio.Event") -> None:  # noqa: F821
    """SIGTERM and SIGINT both trigger a graceful drain-and-stop."""
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, AttributeError, OSError, RuntimeError):
            # No POSIX signals on this platform, or the loop is not on
            # the main thread (embedded / tests); Ctrl-C still works via
            # KeyboardInterrupt.
            pass


def _serve_cluster(args: "argparse.Namespace") -> int:  # noqa: F821
    """Cluster mode: supervisor + N shard workers behind one front door."""
    import asyncio

    from repro.service.cluster import ClusterError, ClusterServer
    from repro.service.promhttp import MetricsServer

    async def run() -> int:
        server = ClusterServer(
            args.directory,
            workers=args.workers,
            replicas=args.replicas,
            host=args.host,
            port=args.port,
            backend=args.store_backend,
            verify=not args.no_verify,
            max_queue=args.max_queue,
            batch_window=args.batch_window,
            request_timeout=args.request_timeout,
            allow_reload=not args.no_hot_reload,
        )
        try:
            host, port = await server.start()
        except ClusterError as exc:
            print(f"error: cluster failed to start: {exc}", file=sys.stderr)
            return 2
        router = server.cluster.router
        print(
            f"opened {args.directory} [{router.backend} backend]: "
            f"p={router.num_partitions}, {router.num_edges} edges, "
            f"{router.num_vertices} vertices, "
            f"RF={router.replication_factor():.4f}"
        )
        print(
            f"serving on {host}:{port} — {server.cluster.workers} shards "
            f"x {server.cluster.replicas} replicas "
            "(SIGTERM or Ctrl-C drains and stops)"
        )
        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = MetricsServer(
                server.metrics, host=args.host, port=args.metrics_port
            )
            mhost, mport = await metrics_server.start()
            print(f"metrics on http://{mhost}:{mport}/metrics")
        stop = asyncio.Event()
        _install_stop_signals(stop)
        try:
            await stop.wait()
        finally:
            print("draining in-flight requests and stopping workers ...")
            if metrics_server is not None:
                await metrics_server.stop()
            await server.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
        return 0


def serve_main(argv: List[str]) -> int:
    """The ``serve`` subcommand: run a server until interrupted."""
    import asyncio

    from repro.service.server import PartitionServer
    from repro.service.store import PartitionStore, ReloadError, StoreManager

    args = _build_serve_parser().parse_args(argv)
    if args.workers:
        if args.wal:
            print(
                "error: --wal is a single-process feature; cluster mode "
                "(--workers) serves read-only",
                file=sys.stderr,
            )
            return 2
        return _serve_cluster(args)
    try:
        store = PartitionStore.open(
            args.directory,
            verify=not args.no_verify,
            backend=args.store_backend,
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot open {args.directory}: {exc}", file=sys.stderr)
        return 2
    print(
        f"opened {args.directory} [{store.backend} backend]: "
        f"p={store.num_partitions}, "
        f"{store.num_edges} edges, {store.num_vertices} vertices, "
        f"RF={store.replication_factor():.4f}"
    )

    from repro.partitioning.serialization import MANIFEST_NAME

    manifest = Path(args.directory) / MANIFEST_NAME

    # Hot reloads reopen bundles with the same backend choice.
    manager = StoreManager(store, backend=args.store_backend)
    ingestor = None
    if args.wal:
        from repro.service.ingest import Ingestor

        try:
            ingestor = Ingestor.enable(
                manager,
                args.directory,
                fsync=args.fsync,
                policy=args.placement,
                capacity=args.capacity,
                refine_on_compact=args.refine_on_compact,
                refine_slack=args.refine_slack,
            )
        except Exception as exc:  # noqa: BLE001 — bad WAL = refuse to start
            print(f"error: cannot enable ingest: {exc}", file=sys.stderr)
            return 2
        capacity = args.capacity if args.capacity is not None else "unbounded"
        refine = (
            f", refine-on-compact slack {args.refine_slack:g}"
            if args.refine_on_compact
            else ""
        )
        print(
            f"ingest enabled [{args.placement} placement, capacity {capacity}, "
            f"fsync {args.fsync}{refine}]: replayed "
            f"{ingestor.replayed_mutations} WAL mutations "
            f"({ingestor.wal.size} bytes)"
        )

    async def run() -> None:
        server = PartitionServer(
            manager,
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            batch_window=args.batch_window,
            request_timeout=args.request_timeout,
            allow_reload=not args.no_hot_reload,
            ingestor=ingestor,
        )
        async def hot_reload(origin: str) -> None:
            try:
                info = await manager.reload(
                    args.directory, verify=not args.no_verify
                )
            except ReloadError as exc:
                print(f"{origin}: reload failed, old epoch keeps serving: {exc}")
            else:
                print(
                    f"{origin}: hot reload -> epoch {info['epoch']} "
                    f"(RF={info['replication_factor']}, "
                    f"drained {info['drained']} in-flight)"
                )

        async def watch_manifest(interval: float) -> None:
            last_mtime = manifest.stat().st_mtime if manifest.exists() else 0.0
            while True:
                await asyncio.sleep(interval)
                try:
                    mtime = manifest.stat().st_mtime
                except OSError:
                    continue
                if mtime != last_mtime:
                    last_mtime = mtime
                    await hot_reload("watch")

        host, port = await server.start()
        print(f"serving on {host}:{port} — SIGTERM or Ctrl-C drains and stops")
        metrics_server = None
        if args.metrics_port is not None:
            from repro.service.promhttp import MetricsServer

            metrics_server = MetricsServer(
                server.metrics, host=args.host, port=args.metrics_port
            )
            mhost, mport = await metrics_server.start()
            print(f"metrics on http://{mhost}:{mport}/metrics")
        watcher = None
        if args.watch > 0 and not args.no_hot_reload:
            watcher = asyncio.create_task(watch_manifest(args.watch))
            print(f"watching {manifest} every {args.watch:g}s")
        if not args.no_hot_reload:
            try:
                import signal

                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGHUP,
                    lambda: asyncio.ensure_future(hot_reload("SIGHUP")),
                )
                print("SIGHUP triggers a hot reload of the bundle")
            except (NotImplementedError, AttributeError, OSError, RuntimeError):
                # No POSIX signals on this platform, or the loop is not
                # on the main thread (embedded / tests).
                pass
        stop_event = asyncio.Event()
        _install_stop_signals(stop_event)
        try:
            await stop_event.wait()
        finally:
            if watcher is not None:
                watcher.cancel()
            print("draining in-flight requests ...")
            if metrics_server is not None:
                await metrics_server.stop()
            await server.stop()
            if ingestor is not None:
                ingestor.close()  # flush + fsync the WAL tail

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _build_reload_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro reload",
        description="Hot-swap a running server onto a new partition bundle.",
    )
    parser.add_argument(
        "directory", type=Path, help="the --save-dir bundle to swap in"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--no-verify", action="store_true", help="skip manifest checksum checks"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="admin call timeout in seconds"
    )
    return parser


def reload_main(argv: List[str]) -> int:
    """The ``reload`` subcommand: one admin call against a live server."""
    from repro.service.client import ServiceError, SyncServiceClient

    args = _build_reload_parser().parse_args(argv)
    client = SyncServiceClient(
        args.host, args.port, timeout=args.timeout, max_retries=0
    )
    try:
        with client:
            info = client.reload(str(args.directory), verify=not args.no_verify)
    except ServiceError as exc:
        print(f"error: server refused the reload: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr
        )
        return 2
    print(
        f"epoch {info['previous_epoch']} -> {info['epoch']} "
        f"[{info.get('backend', 'dict')} backend]: "
        f"p={info['num_partitions']}, {info['num_edges']} edges, "
        f"RF={info['replication_factor']}, drained {info['drained']} in-flight "
        f"(build {info['build_seconds']}s)"
    )
    return 0


def _build_compact_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro compact",
        description="Fold a live server's pending mutations into its bundle "
        "(WAL resets, new epoch swaps in, no queries dropped).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--no-verify", action="store_true", help="skip manifest checksum checks"
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="admin call timeout in seconds"
    )
    return parser


def compact_main(argv: List[str]) -> int:
    """The ``compact`` subcommand: one admin call against a live server."""
    from repro.service.client import ServiceError, SyncServiceClient

    args = _build_compact_parser().parse_args(argv)
    client = SyncServiceClient(
        args.host, args.port, timeout=args.timeout, max_retries=0
    )
    try:
        with client:
            info = client.compact(verify=not args.no_verify)
    except ServiceError as exc:
        print(f"error: server refused the compaction: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr
        )
        return 2
    if info.get("skipped"):
        print(f"nothing to compact (epoch {info['epoch']} unchanged)")
        return 0
    print(
        f"folded {info['folded_mutations']} mutations: "
        f"epoch {info['previous_epoch']} -> {info['epoch']}, "
        f"{info['num_edges']} edges, RF={info['replication_factor']}, "
        f"drained {info['drained']} in-flight "
        f"({info['compaction_seconds']}s, WAL reset to {info['wal_bytes']} bytes)"
    )
    return 0


def _build_refine_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro refine",
        description="Lower a saved bundle's replication factor with "
        "local-search refinement (boundary-edge moves and pair swaps under "
        "the capacity bound), rewriting the bundle with before/after RF "
        "recorded in its manifest.",
    )
    parser.add_argument("directory", type=Path, help="a --save-dir bundle")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="DIR",
        help="write the refined bundle here instead of rewriting in place",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=1.0,
        metavar="S",
        help="capacity headroom multiplier: bound is ceil(S*m/p), floored "
        "at the input's largest partition (default 1.0)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=0,
        metavar="EDGES",
        help="explicit per-partition edge bound (overrides --slack)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.0,
        metavar="RF",
        help="stop when a pass improves RF by less than this "
        "(default 0 = run to the fixpoint)",
    )
    parser.add_argument(
        "--max-passes", type=int, default=8, help="pass bound (default 8)"
    )
    parser.add_argument(
        "--no-swaps",
        action="store_true",
        help="disable the capacity-neutral pair-swap phase (moves only)",
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip manifest checksum checks"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool size for rewriting the bundle (default: serial)",
    )
    return parser


def refine_main(argv: List[str]) -> int:
    """The ``refine`` subcommand: refine a saved bundle offline."""
    from repro.partitioning.refine import RefineError, refine_bundle

    args = _build_refine_parser().parse_args(argv)
    try:
        manifest, stats = refine_bundle(
            args.directory,
            output=args.output,
            verify=not args.no_verify,
            workers=args.workers,
            capacity=args.capacity,
            slack=args.slack,
            epsilon=args.epsilon,
            max_passes=args.max_passes,
            swaps=not args.no_swaps,
        )
    except RefineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: cannot refine {args.directory}: {exc}", file=sys.stderr)
        return 2
    print(
        f"RF {stats.rf_before:.4f} -> {stats.rf_after:.4f} "
        f"(-{stats.rf_delta:.4f}): {stats.moves} moves + {stats.swaps} swaps "
        f"over {stats.passes} passes in {stats.seconds:.3f}s "
        f"[{stats.converged}, capacity {stats.capacity}]"
    )
    print(f"wrote refined bundle with manifest {manifest}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "reload":
        return reload_main(argv[1:])
    if argv and argv[0] == "compact":
        return compact_main(argv[1:])
    if argv and argv[0] == "refine":
        return refine_main(argv[1:])
    if argv and argv[0] == "partition-stream":
        return partition_stream_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.partitions < 1:
        print("error: --partitions must be >= 1", file=sys.stderr)
        return 2
    try:
        graph = read_edge_list(args.input)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    try:
        partitioner = make_partitioner(args.algorithm, seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"partitioning {graph.num_vertices} vertices / {graph.num_edges} edges "
        f"into p={args.partitions} with {args.algorithm} (seed {args.seed})"
    )
    partition = partitioner.partition(graph, args.partitions)
    partition.validate_against(graph)

    report = PartitionReport.evaluate(partition, graph)
    print(f"replication factor : {report.replication_factor:.4f}")
    print(f"edge balance       : {report.edge_balance:.4f}")
    print(f"spanned vertices   : {report.spanned_vertices}")
    if args.detail:
        print()
        print(describe_partition(partition, graph))

    if args.assignments is not None:
        write_assignments(partition, args.assignments)
        print(f"wrote assignments to {args.assignments}")
    if args.output_dir is not None:
        paths = write_partition_files(partition, args.output_dir)
        print(f"wrote {len(paths)} partition files to {args.output_dir}/")
    if args.save_dir is not None:
        from repro.partitioning.serialization import save_partition

        manifest = save_partition(
            partition,
            args.save_dir,
            metadata={
                "algorithm": args.algorithm,
                "seed": args.seed,
                "num_partitions": args.partitions,
                "input": str(args.input),
                "replication_factor": report.replication_factor,
            },
            sidecar=not args.no_sidecar,
        )
        print(f"wrote partition bundle with manifest {manifest}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        raise SystemExit(0)
