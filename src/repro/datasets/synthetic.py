"""Instantiate dataset stand-ins from their specs.

Every generated graph matches its spec's ``|V|`` and ``|E|`` *exactly*
(after :func:`repro.graph.generators.with_exact_edges` adjustment), is
deterministic given ``seed``, and carries the structural signature of its
family: heavy-tailed degrees + clustering for ``social``, near-tree shape
for ``genealogy``.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.catalog import DatasetSpec
from repro.graph.generators import genealogy_graph, holme_kim, with_exact_edges
from repro.graph.graph import Graph
from repro.utils.rng import Seed, make_rng


def instantiate(
    spec: DatasetSpec, scale: float = 1.0, seed: Seed = 0
) -> Graph:
    """Generate the stand-in graph for ``spec`` at ``scale``.

    The same ``(spec.key, scale, seed)`` always yields the same graph.
    """
    target = spec.scaled(scale) if scale != 1.0 else spec
    rng = make_rng(seed)
    if target.kind == "social":
        graph = _social(target, rng)
    elif target.kind == "genealogy":
        graph = _genealogy(target, rng)
    else:
        raise ValueError(f"unknown dataset kind {target.kind!r}")
    graph = with_exact_edges(graph, target.edges, seed=rng)
    return graph


def _social(spec: DatasetSpec, rng) -> Graph:
    n, m = spec.vertices, spec.edges
    # Holme-Kim produces ~ m_attach * (n - m_attach) edges; aim slightly low
    # and let with_exact_edges top up (removal would destroy clustering).
    m_attach = max(1, min(n - 1, round(m / n)))
    return holme_kim(n, m_attach, triad_prob=0.6, seed=rng)


def _genealogy(spec: DatasetSpec, rng) -> Graph:
    n, m = spec.vertices, spec.edges
    num_trees = max(1, n // 1000)
    return genealogy_graph(n, m, seed=rng, num_trees=num_trees)


def load_dataset(
    key_or_spec, scale: Optional[float] = None, seed: Seed = 0, bench: bool = False
) -> Graph:
    """Convenience loader used by the harness and CLI.

    ``scale=None`` picks the spec's ``bench_scale`` when ``bench`` is true,
    else its ``default_scale``.
    """
    from repro.datasets.catalog import dataset_by_key

    spec = key_or_spec if isinstance(key_or_spec, DatasetSpec) else dataset_by_key(key_or_spec)
    if scale is None:
        scale = spec.bench_scale if bench else spec.default_scale
    return instantiate(spec, scale=scale, seed=seed)
