"""The paper's nine datasets (Table III) and their synthetic stand-ins.

The eight SNAP graphs and the huapu genealogy graph are not available
offline, so every spec carries the *published* ``|V|``/``|E|`` plus the
generator family whose structure matches the real graph:

* ``social`` — power-law degree distribution with triadic closure
  (Holme–Kim), matching email/vote/citation/social graphs;
* ``genealogy`` — near-tree forest with sparse cross links, matching huapu
  (average degree ~3.3).

``|V|`` for G8 (Slashdot0811) is printed as "77,36" in the paper — a typo;
we use SNAP's published 77,360.  Stand-ins are instantiated at a
``scale``: vertex and edge counts are multiplied by it, preserving average
degree, so the full Table III shape survives scaled-down runs (pure-Python
partitioners cannot match the authors' workstation on millions of edges —
see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DatasetSpec", "PAPER_DATASETS", "dataset_by_key", "table3_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table III."""

    key: str  # G1..G9
    name: str  # the dataset's published name
    vertices: int  # |V(G)| as published
    edges: int  # |E(G)| as published
    kind: str  # "social" | "genealogy"
    #: Scale used by the pytest benchmark suite (keeps CI runs in seconds).
    bench_scale: float
    #: Scale used by the CLI when --scale is not given (keeps a full
    #: reproduction run under ~1 hour of pure Python).
    default_scale: float

    @property
    def size(self) -> int:
        """``|V| + |E|`` as reported in Table III's last column."""
        return self.vertices + self.edges

    @property
    def average_degree(self) -> float:
        """``2|E| / |V|``."""
        return 2.0 * self.edges / self.vertices

    def scaled(self, scale: float) -> "DatasetSpec":
        """A copy with vertex/edge counts scaled (min 10 vertices, 10 edges).

        Linear scaling increases *density* (m/n^2 grows by 1/scale), so for
        dense datasets at tiny scales the edge target is capped at the
        complete graph on the scaled vertex count.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        vertices = max(10, round(self.vertices * scale))
        edges = max(10, round(self.edges * scale))
        edges = min(edges, vertices * (vertices - 1) // 2)
        return DatasetSpec(
            key=self.key,
            name=f"{self.name}@{scale:g}" if scale != 1.0 else self.name,
            vertices=vertices,
            edges=edges,
            kind=self.kind,
            bench_scale=1.0,
            default_scale=1.0,
        )


#: Table III, in the paper's order.
PAPER_DATASETS: List[DatasetSpec] = [
    DatasetSpec("G1", "email-Eu-core", 1_005, 25_571, "social", 0.20, 1.0),
    DatasetSpec("G2", "Wiki-Vote", 7_115, 103_689, "social", 0.06, 1.0),
    DatasetSpec("G3", "CA-HepPh", 12_008, 118_521, "social", 0.05, 1.0),
    DatasetSpec("G4", "Email-Enron", 36_692, 183_831, "social", 0.03, 1.0),
    DatasetSpec("G5", "Slashdot081106", 77_357, 516_575, "social", 0.012, 0.25),
    DatasetSpec("G6", "soc_Epinions1", 75_879, 508_837, "social", 0.012, 0.25),
    DatasetSpec("G7", "Slashdot090221", 82_144, 549_202, "social", 0.011, 0.25),
    # |V| corrected from the paper's truncated "77,36" to SNAP's 77,360.
    DatasetSpec("G8", "Slashdot0811", 77_360, 905_468, "social", 0.007, 0.15),
    DatasetSpec("G9", "huapu", 4_309_321, 7_030_787, "genealogy", 0.0008, 0.02),
]

_BY_KEY: Dict[str, DatasetSpec] = {spec.key: spec for spec in PAPER_DATASETS}


def dataset_by_key(key: str) -> DatasetSpec:
    """Look up a spec by its paper key (``"G1"`` .. ``"G9"``)."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; known: {sorted(_BY_KEY)}"
        ) from None


def table3_rows() -> List[Dict[str, object]]:
    """Table III as plain dict rows (rendered by ``repro.bench.report``)."""
    return [
        {
            "Graph Name": spec.name,
            "Notation": spec.key,
            "|V(G)|": spec.vertices,
            "|E(G)|": spec.edges,
            "|V(G)|+|E(G)|": spec.size,
        }
        for spec in PAPER_DATASETS
    ]
