"""On-disk caching of generated dataset stand-ins.

Generating the larger stand-ins (hundreds of thousands of edges) takes
seconds to minutes; experiments sweep the same nine graphs dozens of times.
The cache stores each generated graph as a gzip edge list keyed by
``(dataset key, scale, seed, generator version)`` under a cache directory
(``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the working directory).

Cache files are written atomically (temp file + rename), and a file that
fails to parse — e.g. a write interrupted before this hardening existed —
is treated as a miss: it is logged, deleted, and regenerated rather than
crashing every later run.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path
from typing import Optional

logger = logging.getLogger(__name__)

from repro.datasets.catalog import DatasetSpec, dataset_by_key
from repro.datasets.synthetic import instantiate
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list

#: Bump when generator behaviour changes so stale caches are ignored.
GENERATOR_VERSION = 1


def cache_dir() -> Path:
    """The active cache directory (created on demand)."""
    root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_path(spec: DatasetSpec, scale: float, seed: int) -> Path:
    name = f"{spec.key}_s{scale:g}_seed{seed}_v{GENERATOR_VERSION}.edges.gz"
    return cache_dir() / name


def load_cached(
    key_or_spec, scale: float = 1.0, seed: int = 0, refresh: bool = False
) -> Graph:
    """Load a stand-in from cache, generating (and caching) on a miss."""
    spec = (
        key_or_spec
        if isinstance(key_or_spec, DatasetSpec)
        else dataset_by_key(key_or_spec)
    )
    path = _cache_path(spec, scale, seed)
    if path.exists() and not refresh:
        try:
            return read_edge_list(path)
        except (OSError, EOFError, ValueError) as exc:
            # Truncated or corrupt cache file (e.g. an interrupted write
            # from before writes were atomic): regenerate instead of
            # failing every run that touches this dataset.
            logger.warning("discarding corrupt cache file %s: %s", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
    graph = instantiate(spec, scale=scale, seed=seed)
    _write_atomic(graph, path, spec, scale, seed)
    return graph


def _write_atomic(
    graph: Graph, path: Path, spec: DatasetSpec, scale: float, seed: int
) -> None:
    """Write the cache entry via a temp file so readers never see a torn file."""
    fd, tmp_name = tempfile.mkstemp(
        suffix=".tmp.gz", prefix=path.stem + ".", dir=path.parent
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        write_edge_list(
            graph,
            tmp,
            header=[f"stand-in for {spec.name} scale={scale:g} seed={seed}"],
        )
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def clear_cache() -> int:
    """Delete all cached graphs; returns how many files were removed."""
    removed = 0
    for path in cache_dir().glob("*.edges.gz"):
        path.unlink()
        removed += 1
    return removed


def cached_path_if_exists(
    key_or_spec, scale: float = 1.0, seed: int = 0
) -> Optional[Path]:
    """Path of the cached file if present (for tests and tooling)."""
    spec = (
        key_or_spec
        if isinstance(key_or_spec, DatasetSpec)
        else dataset_by_key(key_or_spec)
    )
    path = _cache_path(spec, scale, seed)
    return path if path.exists() else None
