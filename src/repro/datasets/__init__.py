"""The paper's datasets (Table III) as deterministic synthetic stand-ins."""

from repro.datasets.cache import cache_dir, clear_cache, load_cached
from repro.datasets.catalog import (
    PAPER_DATASETS,
    DatasetSpec,
    dataset_by_key,
    table3_rows,
)
from repro.datasets.synthetic import instantiate, load_dataset

__all__ = [
    "cache_dir",
    "clear_cache",
    "load_cached",
    "PAPER_DATASETS",
    "DatasetSpec",
    "dataset_by_key",
    "table3_rows",
    "instantiate",
    "load_dataset",
]
