"""Structural validation of dataset stand-ins ("Table III extended").

The stand-ins match the published ``|V|``/``|E|`` by construction; this
module measures the *structural* properties that were design targets —
degree skew and clustering for social graphs, near-tree shape for huapu —
so a report can show the generators did their job, not just hit the counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bench.report import render_table
from repro.datasets.catalog import PAPER_DATASETS, DatasetSpec
from repro.datasets.synthetic import instantiate
from repro.graph.clustering import average_clustering
from repro.graph.degree import degree_gini, max_degree
from repro.graph.graph import Graph
from repro.graph.traversal import connected_components


@dataclass
class StandinValidation:
    """Measured structure of one generated stand-in."""

    key: str
    name: str
    vertices: int
    edges: int
    target_vertices: int
    target_edges: int
    average_degree: float
    target_average_degree: float
    max_degree: int
    degree_gini: float
    clustering: float
    components: int

    @property
    def counts_exact(self) -> bool:
        """Whether |V| and |E| match the (scaled) targets exactly."""
        return (
            self.vertices == self.target_vertices
            and self.edges == self.target_edges
        )


def validate_standin(
    spec: DatasetSpec, scale: float, seed: int = 0, graph: Optional[Graph] = None
) -> StandinValidation:
    """Generate (or accept) a stand-in and measure its structure."""
    target = spec.scaled(scale) if scale != 1.0 else spec
    if graph is None:
        graph = instantiate(spec, scale=scale, seed=seed)
    return StandinValidation(
        key=spec.key,
        name=spec.name,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        target_vertices=target.vertices,
        target_edges=target.edges,
        average_degree=graph.average_degree(),
        target_average_degree=target.average_degree,
        max_degree=max_degree(graph),
        degree_gini=degree_gini(graph),
        clustering=average_clustering(graph),
        components=len(connected_components(graph)),
    )


def validate_all(scale_override: Optional[float] = None, seed: int = 0) -> List[StandinValidation]:
    """Validate every paper dataset at its bench scale (or an override)."""
    results = []
    for spec in PAPER_DATASETS:
        scale = scale_override if scale_override is not None else spec.bench_scale
        results.append(validate_standin(spec, scale, seed=seed))
    return results


def render_validation(validations: List[StandinValidation]) -> str:
    """Table III extended: counts plus measured structure."""
    rows = []
    for v in validations:
        rows.append(
            [
                v.key,
                v.vertices,
                v.edges,
                "yes" if v.counts_exact else "NO",
                v.average_degree,
                v.target_average_degree,
                v.max_degree,
                v.degree_gini,
                v.clustering,
                v.components,
            ]
        )
    return render_table(
        [
            "key",
            "|V|",
            "|E|",
            "exact",
            "avg deg",
            "target",
            "max deg",
            "gini",
            "clustering",
            "components",
        ],
        rows,
        precision=2,
    )
