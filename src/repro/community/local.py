"""Local community detection with the modularity M (Luo et al.).

The paper's two-stage idea imports its machinery from local community
detection: Definition 8's modularity ``M = internal/external`` and the
Eq. 7 closeness score both come from Luo et al. [21, 22].  This module
implements that source algorithm, so the lineage is runnable:

Given a seed vertex, greedily grow a community by adding the neighbour with
the best modularity gain while the gain is positive, then prune members
whose removal improves M (keeping the community connected and the seed
inside), iterating until stable.  A community is *discovered* when its final
``M > 1`` — the same threshold TLP uses as its stage boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.graph.graph import Graph
from repro.utils.validation import check_positive


@dataclass
class CommunityResult:
    """Outcome of a local community search."""

    seed: int
    members: Set[int]
    modularity: float
    discovered: bool  # final M > 1 (Luo et al.'s acceptance test)


def _degrees_into(graph: Graph, v: int, members: Set[int]) -> tuple:
    """(edges from v into members, edges from v outside members)."""
    inside = sum(1 for u in graph.neighbors(v) if u in members)
    return inside, graph.degree(v) - inside


def _modularity(internal: int, external: int) -> float:
    return float("inf") if external == 0 else internal / external


def _is_connected_without(graph: Graph, members: Set[int], drop: int) -> bool:
    remaining = members - {drop}
    if not remaining:
        return True
    start = next(iter(remaining))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u in remaining and u not in seen:
                seen.add(u)
                stack.append(u)
    return seen == remaining


def local_community(
    graph: Graph,
    seed: int,
    max_size: Optional[int] = None,
    max_rounds: int = 50,
) -> CommunityResult:
    """Grow a local community around ``seed``.

    ``max_size`` caps the community (useful when using this as a primitive);
    ``max_rounds`` bounds the add/prune alternation.
    """
    if not graph.has_vertex(seed):
        raise KeyError(f"seed {seed} is not a vertex of the graph")
    if max_size is not None:
        check_positive("max_size", max_size)
    members: Set[int] = {seed}
    internal = 0
    external = graph.degree(seed)

    for _ in range(max_rounds):
        changed = False
        # --- addition phase: best-first while the gain is positive --------
        while max_size is None or len(members) < max_size:
            best_vertex = None
            best_gain = 0.0
            best_counts = (0, 0)
            frontier: Set[int] = set()
            for v in members:
                frontier.update(
                    u for u in graph.neighbors(v) if u not in members
                )
            current = _modularity(internal, external)
            for u in sorted(frontier):
                d_in, d_out = _degrees_into(graph, u, members)
                new_internal = internal + d_in
                new_external = external - d_in + d_out
                gain = _modularity(new_internal, new_external) - current
                if gain > best_gain:
                    best_gain = gain
                    best_vertex = u
                    best_counts = (d_in, d_out)
            if best_vertex is None:
                break
            members.add(best_vertex)
            internal += best_counts[0]
            external += best_counts[1] - best_counts[0]
            changed = True
        # --- pruning phase: drop members whose removal improves M ---------
        pruned = True
        while pruned:
            pruned = False
            current = _modularity(internal, external)
            for v in sorted(members):
                if v == seed or len(members) == 1:
                    continue
                d_in, d_out = _degrees_into(graph, v, members - {v})
                new_internal = internal - d_in
                new_external = external + d_in - d_out
                if _modularity(new_internal, new_external) <= current:
                    continue
                if not _is_connected_without(graph, members, v):
                    continue
                members.remove(v)
                internal = new_internal
                external = new_external
                pruned = True
                changed = True
                break
        if not changed:
            break

    modularity = _modularity(internal, external)
    return CommunityResult(
        seed=seed,
        members=members,
        modularity=modularity,
        discovered=modularity > 1.0,
    )


def detect_communities(
    graph: Graph, max_size: Optional[int] = None
) -> Dict[int, int]:
    """Cover the graph with local communities; returns ``vertex -> label``.

    Seeds are processed in decreasing degree order (hubs anchor their
    communities — the same intuition as TLP's Stage I); vertices already
    claimed keep their first label, and unreached vertices become
    singletons.
    """
    labels: Dict[int, int] = {}
    next_label = 0
    order: List[int] = sorted(
        graph.vertices(), key=lambda v: (-graph.degree(v), v)
    )
    for seed in order:
        if seed in labels:
            continue
        result = local_community(graph, seed, max_size=max_size)
        claimed = [v for v in result.members if v not in labels]
        if not claimed:
            claimed = [seed]
        for v in claimed:
            labels[v] = next_label
        next_label += 1
    return labels
