"""Local community detection — the machinery TLP borrows (Luo et al.)."""

from repro.community.local import CommunityResult, detect_communities, local_community

__all__ = ["CommunityResult", "detect_communities", "local_community"]
