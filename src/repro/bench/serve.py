"""Tracked load test for the partition service: ``python -m repro.bench serve``.

Starts an in-process :class:`~repro.service.server.PartitionServer` over a
TLP partitioning of a dataset stand-in (persisted through
``save_partition`` and reopened through ``PartitionStore.open``, so the
whole serving path — disk format included — is what gets measured), then
drives a mixed query workload through concurrent pipelined clients:

* every ``neighbors`` response is checked **set-equal to the direct
  ``Graph`` adjacency** — the routed fan-out must lose nothing;
* every ``edge`` response is checked against the partition's own
  edge → partition map;
* client-side latency is recorded per operation and reported as exact
  p50/p95/p99 over all samples, alongside the server's own histogram
  snapshot;
* the bundle is opened through **both** store backends and timed —
  ``store_open_seconds`` records the dict-of-sets rebuild next to the
  memory-mapped CSR sidecar open (the hot-reload window under load), and
  ``rss_max_kib`` records the process's peak resident set;
* ``--mutate`` adds the WAL write path: a dedicated writer streams
  insert/delete ops (fresh vertex ids only, so read verification stays
  exact) through the :mod:`repro.service.ingest` subsystem while the
  readers run, and the report's ``ingest`` section records mutation
  throughput, WAL bytes, fsync latency, and RF drift.

Results land in ``BENCH_serve.json`` so serving-path regressions show up
in review diffs, like ``BENCH_perf.json`` does for the partitioner.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

#: Bump when the schema of ``BENCH_serve.json`` changes.
#: v2: ``store_backend``, ``store_open_seconds`` and ``rss_max_kib``.
#: v3: additive ``ingest`` section (mutate workload: insert/delete
#: throughput and WAL fsync latency); every v2 field is unchanged, so
#: v2 readers keep working.
#: v4: additive ``batch`` section (server-side batching + vectorised
#: answering counters) — what the CI perf smoke job asserts on.
#: v5: additive ``cluster`` section (``--cluster-workers``: the same
#: verified workload replayed against the multi-process sharded server,
#: with throughput vs the single-process run); every v4 field unchanged.
#: v6: wire codec selection (``--wire json|binary|both``) — top-level
#: ``wire`` names the headline codec, ``wire_modes`` records per-codec
#: single-process throughput, the ``cluster`` section gains ``wire`` and
#: (with ``both``) per-codec ratios, and the verify pass asserts
#: server-vs-client per-op counter parity; every v5 field unchanged.
SCHEMA_VERSION = 6

DEFAULT_REPORT = "BENCH_serve.json"
DEFAULT_DATASET = "G1"
QUICK_SCALE = 0.2
FULL_SCALE = 1.0
QUICK_REQUESTS = 1_500
FULL_REQUESTS = 10_000
DEFAULT_P = 8
DEFAULT_CONCURRENCY = 8

#: Workload mix (op, weight) — neighbour fan-out dominates, like a
#: gather step; stats ride along as the cheap control-plane op.
QUERY_MIX: Sequence[Tuple[str, float]] = (
    ("neighbors", 0.45),
    ("master", 0.25),
    ("edge", 0.20),
    ("partition_stats", 0.05),
    ("stats", 0.05),
)


def _build_workload(
    graph: Graph, partition, num_requests: int, seed: int
) -> List[Tuple[str, Dict[str, int]]]:
    """A deterministic shuffled list of (op, args) drawn from QUERY_MIX."""
    rng = random.Random(seed)
    vertices = graph.vertex_list()
    edges = graph.edge_list()
    ops: List[Tuple[str, Dict[str, int]]] = []
    for op, weight in QUERY_MIX:
        count = max(1, round(weight * num_requests))
        for _ in range(count):
            if op in ("neighbors", "master"):
                ops.append((op, {"v": rng.choice(vertices)}))
            elif op == "edge":
                u, v = rng.choice(edges)
                ops.append((op, {"u": u, "v": v}))
            elif op == "partition_stats":
                ops.append((op, {"k": rng.randrange(partition.num_partitions)}))
            else:
                ops.append((op, {}))
    rng.shuffle(ops)
    return ops[:num_requests] if len(ops) > num_requests else ops


def _build_mutations(
    graph: Graph, count: int, delete_ratio: float, seed: int
) -> List[Tuple[str, Dict[str, int]]]:
    """A deterministic insert/delete sequence over *fresh* vertex ids.

    Every inserted edge joins two vertices above the base graph's id
    range, and deletes only target still-alive own inserts — so the read
    workload's neighbour/edge verification against the base graph stays
    exact while mutations run.
    """
    rng = random.Random(seed + 0x5EED)
    next_id = max(graph.vertices()) + 1
    anchor = next_id
    next_id += 1
    alive: List[Tuple[int, int]] = []
    ops: List[Tuple[str, Dict[str, int]]] = []
    for _ in range(count):
        if alive and rng.random() < delete_ratio:
            u, v = alive.pop(rng.randrange(len(alive)))
            ops.append(("delete_edge", {"u": u, "v": v}))
        else:
            # Chain off a random alive endpoint (or the anchor) so the
            # overlay grows a connected fresh component, like a stream.
            tail = rng.choice(alive)[1] if alive else anchor
            edge = (tail, next_id)
            next_id += 1
            alive.append(edge)
            ops.append(("insert_edge", {"u": edge[0], "v": edge[1]}))
    return ops


def _rss_max_kib() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return int(usage // 1024) if usage > 1 << 30 else int(usage)


def _time_store_open(directory: str, backend: str) -> Tuple[float, object]:
    """Open the bundle with ``backend``; returns (seconds, store)."""
    from repro.service.store import PartitionStore

    start = time.perf_counter()
    store = PartitionStore.open(directory, backend=backend)
    return time.perf_counter() - start, store


def _quantile(sorted_samples: List[float], q: float) -> float:
    """Exact empirical quantile of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, max(0, int(q * len(sorted_samples))))
    return sorted_samples[index]


async def _drive(
    host: str,
    port: int,
    workload: List[Tuple[str, Dict[str, int]]],
    concurrency: int,
    graph: Graph,
    edge_owner: Dict[Tuple[int, int], int],
    mutations: Optional[List[Tuple[str, Dict[str, int]]]] = None,
    wire: str = "json",
) -> Tuple[Dict[str, List[float]], int, int, float]:
    """Run the workload through ``concurrency`` clients; verify responses.

    ``mutations`` adds one dedicated writer driving insert/delete ops
    (idempotently stamped by the client wrappers) concurrently with the
    readers; the returned float is the writer's wall-clock seconds
    (0.0 without mutations).  ``wire`` selects the client codec
    (binary-preferring clients negotiate on connect).
    """
    from repro.service.client import ServiceClient

    latencies: Dict[str, List[float]] = {op: [] for op, _ in QUERY_MIX}
    verified_neighbors = 0
    verified_edges = 0
    lock = asyncio.Lock()

    async def mutator() -> float:
        assert mutations is not None
        client = ServiceClient(
            host,
            port,
            max_retries=5,
            backoff_base=0.02,
            client_tag="bench-writer",
            wire=wire,
        )
        samples: Dict[str, List[float]] = {"insert_edge": [], "delete_edge": []}
        start = time.perf_counter()
        async with client:
            for op, args in mutations:
                began = time.perf_counter()
                if op == "insert_edge":
                    result = await client.insert_edge(args["u"], args["v"])
                else:
                    result = await client.delete_edge(args["u"], args["v"])
                samples[op].append(time.perf_counter() - began)
                if "partition" not in result:
                    raise AssertionError(f"{op} response without placement: {result}")
        elapsed = time.perf_counter() - start
        async with lock:
            for op, values in samples.items():
                latencies.setdefault(op, []).extend(values)
        return elapsed

    async def worker(chunk: List[Tuple[str, Dict[str, int]]]) -> Tuple[int, int]:
        nonlocal_ok = [0, 0]
        # Latencies accumulate locally and merge once at the end: an async
        # lock acquisition per request would be measurable driver overhead.
        local: Dict[str, List[float]] = {}
        client = ServiceClient(
            host, port, max_retries=5, backoff_base=0.02, wire=wire
        )
        async with client:
            for op, args in chunk:
                start = time.perf_counter()
                result = await client.call(op, **args)
                local.setdefault(op, []).append(time.perf_counter() - start)
                if op == "neighbors":
                    routed = set(result["neighbors"])
                    direct = graph.neighbors(args["v"])
                    if routed != direct:
                        raise AssertionError(
                            f"routed neighbours of {args['v']} != direct adjacency: "
                            f"missing={sorted(direct - routed)[:5]} "
                            f"extra={sorted(routed - direct)[:5]}"
                        )
                    nonlocal_ok[0] += 1
                elif op == "edge":
                    expected = edge_owner[(args["u"], args["v"])]
                    if result["partition"] != expected:
                        raise AssertionError(
                            f"edge ({args['u']}, {args['v']}) routed to "
                            f"{result['partition']}, owner is {expected}"
                        )
                    nonlocal_ok[1] += 1
        async with lock:
            for op, values in local.items():
                latencies.setdefault(op, []).extend(values)
        return nonlocal_ok[0], nonlocal_ok[1]

    chunks = [workload[i::concurrency] for i in range(concurrency)]
    tasks = [worker(chunk) for chunk in chunks if chunk]
    mutate_task = asyncio.ensure_future(mutator()) if mutations else None
    counts = await asyncio.gather(*tasks)
    mutate_seconds = await mutate_task if mutate_task is not None else 0.0
    for n_ok, e_ok in counts:
        verified_neighbors += n_ok
        verified_edges += e_ok
    return latencies, verified_neighbors, verified_edges, mutate_seconds


def run_serve(
    graph: Graph,
    dataset: str = DEFAULT_DATASET,
    p: int = DEFAULT_P,
    num_requests: int = QUICK_REQUESTS,
    concurrency: int = DEFAULT_CONCURRENCY,
    seed: int = 0,
    quick: bool = False,
    batch_window: float = 0.002,
    mutate_ratio: float = 0.0,
    delete_ratio: float = 0.3,
    fsync: str = "always",
    profile_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    cluster_workers: int = 0,
    cluster_replicas: int = 1,
    wire: str = "binary",
) -> Dict:
    """Partition, persist, serve, and load-test ``graph``; returns the report.

    ``mutate_ratio > 0`` enables the WAL write path: the server runs with
    an :class:`~repro.service.ingest.Ingestor` and a dedicated writer
    drives ``round(mutate_ratio * num_requests)`` insert/delete ops
    (``delete_ratio`` of them deletes) concurrently with the readers.
    Mutations only touch fresh vertex ids above the base graph, so the
    read-side verification stays exact.  The report gains an ``ingest``
    section: mutation throughput, WAL bytes, fsync-policy latency
    (``fsync`` — always/batch/never), and RF drift.

    ``profile_path`` runs the whole load phase under ``cProfile`` and
    writes the top-20 cumulative hotspots there (plain text), so future
    perf work starts from data instead of guesses.  Profiling slows the
    run; the throughput figures of a profiled run are not comparable.

    ``cluster_workers > 0`` adds a second phase: the same bundle is
    served by a :class:`~repro.service.cluster.ClusterServer` (that many
    shard worker processes, ``cluster_replicas`` replicas each) and the
    *same* workload is replayed with the same verification — so the
    report's ``cluster`` section tracks sharded vs single-process
    throughput over bit-identical answers.

    ``wire`` selects the client codec: ``"json"``, ``"binary"`` (the
    default — clients negotiate on connect), or ``"both"``, which drives
    the workload once per codec against the same server (JSON first,
    binary as the headline) and records per-codec throughput under
    ``wire_modes``.  The verify pass also asserts per-op counter parity:
    the server's ``op_*`` counters must equal the client-side op counts
    (dedup-answered requests included), unless a retryable disturbance
    (timeout/overload/failover) made double-counting legitimate.

    Raises ``AssertionError`` if any routed response disagrees with the
    graph or the partition — correctness is part of what this benchmark
    tracks, exactly like backend parity in ``repro.bench.perf``.
    """
    from repro.core.tlp import TLPPartitioner
    from repro.partitioning.serialization import save_partition
    from repro.service.server import PartitionServer
    from repro.service.store import PartitionStore, StoreManager

    if wire not in ("json", "binary", "both"):
        raise ValueError(f"wire must be json, binary or both, got {wire!r}")
    #: Codecs to drive, headline last — JSON first so the binary numbers
    #: land in the top-level fields when measuring both.
    wire_list = ["json", "binary"] if wire == "both" else [wire]
    headline_wire = wire_list[-1]

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    note(f"partitioning {graph!r} into p={p} with TLP(seed={seed})")
    partition = TLPPartitioner(seed=seed).partition(graph, p)
    edge_owner = dict(partition.edge_to_partition())

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        note("persisting partition bundle (gzip + CSR sidecar)")
        save_partition(
            partition,
            tmp,
            metadata={"algorithm": "TLP", "seed": seed, "dataset": dataset},
            compress=True,
        )
        # Time both store backends over the same bundle: the dict path
        # rebuilds Python sets per edge, the CSR path memory-maps the
        # sidecar — this difference is the hot-reload window under load.
        note("opening the store with the dict and csr backends")
        dict_open_seconds, _ = _time_store_open(tmp, "dict")
        csr_open_seconds, store = _time_store_open(tmp, "csr")
        store_open = {
            "dict": round(dict_open_seconds, 6),
            "csr": round(csr_open_seconds, 6),
            "speedup": round(dict_open_seconds / csr_open_seconds, 2)
            if csr_open_seconds
            else 0.0,
        }
        note(
            f"store open: dict {store_open['dict']}s, csr {store_open['csr']}s "
            f"({store_open['speedup']}x)"
        )

        workload = _build_workload(graph, partition, num_requests, seed)
        mutations: Optional[List[Tuple[str, Dict[str, int]]]] = None
        ingestor = None
        if mutate_ratio > 0.0:
            from repro.service.ingest import Ingestor

            count = max(1, round(mutate_ratio * num_requests))
            mutations = _build_mutations(graph, count, delete_ratio, seed)
            note(
                f"ingest on: {count} mutations "
                f"({sum(1 for op, _ in mutations if op == 'delete_edge')} deletes), "
                f"WAL fsync={fsync}"
            )
            manager = StoreManager(store)
            ingestor = Ingestor.enable(manager, tmp, fsync=fsync)
            served: object = manager
        else:
            served = store
        note(f"driving {len(workload)} queries through {concurrency} clients")

        async def bench() -> Tuple[
            Dict[str, List[float]], int, int, Dict, Optional[Dict], float, float,
            Dict[str, Dict[str, float]],
        ]:
            server = PartitionServer(
                served, batch_window=batch_window, ingestor=ingestor
            )
            async with server:
                host, port = server.address
                per_wire: Dict[str, Dict[str, float]] = {}
                for mode in wire_list:
                    # Mutations ride only on the headline drive, so the
                    # ingest section measures one writer pass either way.
                    muts = mutations if mode == headline_wire else None
                    start = time.perf_counter()
                    latencies, n_ok, e_ok, mutate_seconds = await _drive(
                        host, port, workload, concurrency, graph, edge_owner,
                        muts, wire=mode,
                    )
                    elapsed = time.perf_counter() - start
                    total = sum(len(s) for s in latencies.values())
                    per_wire[mode] = {
                        "num_requests": total,
                        "elapsed_s": round(elapsed, 4),
                        "requests_per_s": round(total / elapsed) if elapsed else 0,
                    }
                    note(
                        f"wire={mode}: {per_wire[mode]['requests_per_s']} req/s "
                        f"over {total} requests"
                    )
                from repro.service.client import ServiceClient

                async with ServiceClient(host, port) as client:
                    stats = await client.stats()
                    ingest = (
                        await client.ingest_stats() if ingestor is not None else None
                    )
            return (
                latencies, n_ok, e_ok, stats, ingest, elapsed, mutate_seconds,
                per_wire,
            )

        try:
            if profile_path is not None:
                import cProfile

                note(f"profiling the load phase (cProfile -> {profile_path})")
                profiler = cProfile.Profile()
                outcome = profiler.runcall(asyncio.run, bench())
                _write_profile(profiler, profile_path)
            else:
                outcome = asyncio.run(bench())
            (
                latencies,
                verified_neighbors,
                verified_edges,
                stats,
                ingest_stats,
                elapsed,
                mutate_seconds,
                wire_modes,
            ) = outcome
        finally:
            if ingestor is not None:
                ingestor.close()

        # Verify pass: server-side per-op counters must agree with the
        # client-side op counts — dedup-answered requests included.
        parity = _assert_counter_parity(
            stats["metrics"]["counters"], workload, len(wire_list), mutations
        )
        note(f"counter parity: {parity}")

        cluster_report: Optional[Dict] = None
        if cluster_workers > 0:
            from repro.service.cluster import ClusterServer

            note(
                f"cluster phase: {cluster_workers} shard workers "
                f"x {cluster_replicas} replicas, same workload"
            )

            async def cluster_bench() -> Tuple[
                Dict[str, List[float]], int, int, float,
                Dict[str, Dict[str, float]], Dict,
            ]:
                server = ClusterServer(
                    tmp,
                    workers=cluster_workers,
                    replicas=cluster_replicas,
                    batch_window=batch_window,
                )
                async with server:
                    chost, cport = server.address
                    per_wire: Dict[str, Dict[str, float]] = {}
                    for mode in wire_list:
                        start = time.perf_counter()
                        lat, n_ok, e_ok, _ = await _drive(
                            chost, cport, workload, concurrency, graph,
                            edge_owner, wire=mode,
                        )
                        mode_elapsed = time.perf_counter() - start
                        mode_total = sum(len(s) for s in lat.values())
                        per_wire[mode] = {
                            "num_requests": mode_total,
                            "elapsed_s": round(mode_elapsed, 4),
                            "requests_per_s": round(mode_total / mode_elapsed)
                            if mode_elapsed
                            else 0,
                        }
                        note(
                            f"cluster wire={mode}: "
                            f"{per_wire[mode]['requests_per_s']} req/s"
                        )
                    from repro.service.client import ServiceClient

                    async with ServiceClient(chost, cport) as client:
                        cstats = await client.stats()
                    return lat, n_ok, e_ok, mode_elapsed, per_wire, cstats

            (
                c_lat, c_n_ok, c_e_ok, c_elapsed, c_wire_modes, c_stats,
            ) = asyncio.run(cluster_bench())
            c_total = sum(len(s) for s in c_lat.values())
            c_rps = round(c_total / c_elapsed) if c_elapsed else 0
            c_parity = _assert_counter_parity(
                c_stats["metrics"]["counters"], workload, len(wire_list), None
            )
            note(f"cluster counter parity: {c_parity}")

    if verified_neighbors == 0:
        raise AssertionError("workload exercised no neighbours queries")

    ops_report = {}
    for op, samples in latencies.items():
        if not samples:
            continue
        ordered = sorted(samples)
        ops_report[op] = {
            "count": len(ordered),
            "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 4),
            "p50_ms": round(_quantile(ordered, 0.50) * 1e3, 4),
            "p95_ms": round(_quantile(ordered, 0.95) * 1e3, 4),
            "p99_ms": round(_quantile(ordered, 0.99) * 1e3, 4),
        }

    ingest_report: Optional[Dict] = None
    if ingest_stats is not None:
        mutation_count = len(latencies.get("insert_edge", ())) + len(
            latencies.get("delete_edge", ())
        )
        ingest_report = {
            "mutate_ratio": mutate_ratio,
            "delete_ratio": delete_ratio,
            "fsync": fsync,
            "mutations": mutation_count,
            "inserts": ingest_stats["inserts"],
            "deletes": ingest_stats["deletes"],
            "mutate_seconds": round(mutate_seconds, 4),
            "mutations_per_s": round(mutation_count / mutate_seconds)
            if mutate_seconds
            else 0,
            "wal_bytes": ingest_stats["wal_bytes"],
            "pending_mutations": ingest_stats["pending_mutations"],
            "overlay_rf_drift": ingest_stats["overlay_rf_drift"],
            # Server-side fsync histogram (ms quantiles); None when the
            # policy never fsynced during the run.
            "wal_fsync_ms": stats["metrics"]["latency"].get("wal_fsync"),
        }

    counters = stats["metrics"]["counters"]
    batches = counters.get("batches", 0)
    batch_report = {
        # Server-side batching: how many dispatcher batches formed, how
        # many requests rode in multi-request batches, and how much work
        # the vectorised store path / coalescing absorbed.
        "batches": batches,
        "requests_in_batches": counters.get("batch_requests_total", 0),
        "batched_requests": counters.get("batched_requests", 0),
        "mean_batch_size": round(
            counters.get("batch_requests_total", 0) / batches, 2
        )
        if batches
        else 0.0,
        "dedup_hits": counters.get("batch_dedup_hits", 0),
        "vectorised_requests": counters.get("requests_vectorised", 0),
    }

    total = sum(len(s) for s in latencies.values())
    single_rps = round(total / elapsed) if elapsed else 0
    if cluster_workers > 0:
        # Per-codec sharded-vs-single ratio: each codec's cluster replay
        # against the same codec's single-process drive.
        for mode, summary in c_wire_modes.items():
            single_mode_rps = wire_modes.get(mode, {}).get("requests_per_s", 0)
            summary["speedup_vs_single"] = (
                round(summary["requests_per_s"] / single_mode_rps, 3)
                if single_mode_rps
                else 0.0
            )
        cluster_report = {
            "workers": cluster_workers,
            "replicas": cluster_replicas,
            # The sharded number only means anything relative to the
            # single-process one when the workers had cores to run on.
            "cpu_count": os.cpu_count(),
            "wire": headline_wire,
            "num_requests": c_total,
            "elapsed_s": round(c_elapsed, 4),
            "requests_per_s": c_rps,
            "speedup_vs_single": round(c_rps / single_rps, 3)
            if single_rps
            else 0.0,
            "verified_neighbors": c_n_ok,
            "verified_edges": c_e_ok,
            "wire_modes": c_wire_modes,
            "counter_parity": c_parity,
        }
    return {
        "version": SCHEMA_VERSION,
        "quick": quick,
        "dataset": dataset,
        "algorithm": "TLP",
        "p": p,
        "seed": seed,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "store_backend": stats.get("backend", "dict"),
        "store_open_seconds": store_open,
        "rss_max_kib": _rss_max_kib(),
        "replication_factor": stats["replication_factor"],
        "wire": headline_wire,
        "wire_modes": wire_modes,
        "counter_parity": parity,
        "num_requests": total,
        "concurrency": concurrency,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": single_rps,
        "verified_neighbors": verified_neighbors,
        "verified_edges": verified_edges,
        "batch": batch_report,
        "cluster": cluster_report,
        "ingest": ingest_report,
        "ops": ops_report,
        "server_metrics": stats["metrics"],
    }


#: Counters that, when nonzero, mean a request may legitimately have
#: been answered (and counted) more times than the client sent it —
#: retries after timeouts/overload, failover re-sends — so strict
#: per-op parity cannot be asserted for that run.
_DISTURBANCE_COUNTERS = (
    "requests_timeout",
    "requests_overload",
    "requests_unavailable",
    "requests_rejected_shutdown",
    "requests_stale_epoch",
    "responses_dropped",
    "responses_unencodable",
    "failovers",
    "workers_marked_down",
    "shard_unavailable_errors",
)


def _assert_counter_parity(
    counters: Dict[str, int],
    workload: List[Tuple[str, Dict[str, int]]],
    passes: int,
    mutations: Optional[List[Tuple[str, Dict[str, int]]]],
) -> str:
    """Assert server ``op_*`` counters equal client-side op counts.

    Every workload op ran ``passes`` times (once per wire mode) and every
    one succeeded (the drive raises otherwise), so the server must have
    counted exactly that many — dedup-answered requests included.
    Negotiation pings (``op_ping`` from binary probes) and the final
    ``stats``/``ingest_stats`` snapshot calls are excluded: ping is not in
    the workload mix, and a snapshot's own increment lands after the
    snapshot it returns.  Returns a short description of what was
    checked, or why the check was skipped.
    """
    disturbed = [
        name for name in _DISTURBANCE_COUNTERS if counters.get(name, 0)
    ]
    if disturbed:
        return f"skipped (retries possible: {', '.join(disturbed)})"
    expected: Dict[str, int] = {}
    for op, _ in workload:
        expected[op] = expected.get(op, 0) + passes
    if mutations:
        for op, _ in mutations:
            expected[op] = expected.get(op, 0) + 1
    drift = {
        op: (counters.get(f"op_{op}", 0), want)
        for op, want in sorted(expected.items())
        if counters.get(f"op_{op}", 0) != want
    }
    if drift:
        raise AssertionError(
            "server/client op counter drift: "
            + ", ".join(
                f"op_{op}={got} (clients sent {want})"
                for op, (got, want) in drift.items()
            )
        )
    return f"ok ({len(expected)} ops x {passes} pass(es))"


def _write_profile(profiler, path: str, top: int = 20) -> str:
    """Dump the top-``top`` cumulative-time hotspots to ``path``."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(buffer.getvalue())
    os.replace(tmp, path)
    return path


def write_report(report: Dict, path: str = DEFAULT_REPORT) -> str:
    """Write the report atomically; returns the path written."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path
