"""Plain-text rendering of experiment tables and figure series.

The paper's figures are bar/line charts; in a terminal reproduction the
same data is printed as aligned tables, one row per series point, so the
qualitative comparisons (who wins, where the crossovers are) can be read
directly from the benchmark output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Uniform cell formatting: floats to ``precision`` digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], precision: int = 3
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_banner(title: str) -> str:
    """A section banner for CLI output."""
    bar = "=" * max(20, len(title) + 4)
    return f"{bar}\n  {title}\n{bar}"


def render_bar(value: float, maximum: float, width: int = 40) -> str:
    """A unicode bar for quick visual series comparison in the terminal."""
    if maximum <= 0:
        return ""
    filled = round(width * value / maximum)
    return "#" * max(0, min(width, filled))
