"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.communication import (
    CommunicationRow,
    communication_experiment,
    render_communication,
)
from repro.bench.figures import (
    DEFAULT_P_VALUES,
    DEFAULT_R_VALUES,
    Fig8Data,
    TLPRSweep,
    fig8,
    fig9_to_11,
    tlp_r_sweep,
)
from repro.bench.harness import (
    ExperimentResult,
    load_paper_graphs,
    run_grid,
    run_single,
)
from repro.bench.scaling import ScalingPoint, empirical_exponent, time_scaling_sweep
from repro.bench.tables import Table4Data, Table6Data, render_table3, table4, table6

__all__ = [
    "CommunicationRow",
    "communication_experiment",
    "render_communication",
    "DEFAULT_P_VALUES",
    "DEFAULT_R_VALUES",
    "Fig8Data",
    "TLPRSweep",
    "fig8",
    "fig9_to_11",
    "tlp_r_sweep",
    "ExperimentResult",
    "load_paper_graphs",
    "run_grid",
    "run_single",
    "ScalingPoint",
    "empirical_exponent",
    "time_scaling_sweep",
    "Table4Data",
    "Table6Data",
    "render_table3",
    "table4",
    "table6",
]
