"""Robustness sweeps: seed sensitivity and the balance-slack trade-off.

Two extended experiments the paper does not report but a practitioner asks
for immediately:

* **Seed sensitivity** — TLP seeds partitions at random vertices; how much
  does RF move across seeds?  (Mean ± spread per algorithm.)
* **Slack trade-off** — Definition 3's capacity ``C = ceil(slack·m/p)``; a
  little imbalance slack usually buys replication quality.  The sweep
  measures RF and realised balance as slack grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.tlp import TLPPartitioner
from repro.graph.graph import Graph
from repro.partitioning.metrics import edge_balance, replication_factor
from repro.partitioning.registry import make_partitioner


@dataclass
class SeedSensitivityRow:
    """RF statistics of one algorithm across seeds."""

    algorithm: str
    mean_rf: float
    min_rf: float
    max_rf: float
    std_rf: float

    @property
    def spread(self) -> float:
        """max - min."""
        return self.max_rf - self.min_rf


def seed_sensitivity(
    graph: Graph,
    algorithms: Sequence[str],
    num_partitions: int,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> List[SeedSensitivityRow]:
    """RF across ``seeds`` for each algorithm, sorted by mean RF."""
    rows: List[SeedSensitivityRow] = []
    for name in algorithms:
        values = []
        for seed in seeds:
            partition = make_partitioner(name, seed=seed).partition(
                graph, num_partitions
            )
            values.append(replication_factor(partition, graph))
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        rows.append(
            SeedSensitivityRow(
                algorithm=name,
                mean_rf=mean,
                min_rf=min(values),
                max_rf=max(values),
                std_rf=math.sqrt(variance),
            )
        )
    rows.sort(key=lambda row: row.mean_rf)
    return rows


@dataclass
class SlackRow:
    """One point of the slack trade-off sweep."""

    slack: float
    replication_factor: float
    edge_balance: float


def slack_tradeoff(
    graph: Graph,
    num_partitions: int,
    slacks: Sequence[float] = (1.0, 1.05, 1.1, 1.2, 1.35, 1.5),
    seed: int = 0,
) -> List[SlackRow]:
    """TLP's RF and realised balance as the capacity slack grows."""
    rows: List[SlackRow] = []
    for slack in slacks:
        partition = TLPPartitioner(seed=seed, slack=slack).partition(
            graph, num_partitions
        )
        rows.append(
            SlackRow(
                slack=slack,
                replication_factor=replication_factor(partition, graph),
                edge_balance=edge_balance(partition),
            )
        )
    return rows
