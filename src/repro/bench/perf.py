"""Tracked throughput benchmark for the TLP hot path.

The CSR backend exists purely for speed, so its speed is a tracked
artefact: ``python -m repro.bench perf`` times the TLP hot loop on the G5
(Slashdot) stand-in for every backend, checks that the CSR and reference
backends produce *identical* partitionings (same RF per seed — the
backends are bit-for-bit equivalent, so anything else is a bug), and
writes the measurements to ``BENCH_perf.json`` so regressions show up in
review diffs.

METIS and LDG ride along as context: they bound what "fast" and "good"
mean for a non-local streaming heuristic and an offline partitioner on
the same workload.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.partitioning.metrics import replication_factor

#: Bump when the schema of ``BENCH_perf.json`` changes.
#: v2 adds the ``parallel`` section: ``grow_threads``, sequential vs
#: thread-pool growth timings, and the compaction-fold ``fold_seconds``
#: (all additive — v1 readers ignore it).
#: v3 adds the ``refine`` section written by ``python -m repro.bench
#: refine`` (local-search RF refinement: rf_before/rf_after/rf_delta,
#: moves/s, time-to-convergence per dataset x source partitioner).
#: v4 adds the ``oocore`` section written by ``python -m repro.bench
#: oocore`` (out-of-core streaming partitioner vs in-memory HDRF:
#: RF ratio, edges/s, and subprocess-measured peak RSS vs the byte
#: budget).
SCHEMA_VERSION = 4

#: The probe workload: G5 (Slashdot0811) is the largest stand-in that the
#: full benchmark finishes in a couple of minutes at scale 0.25.
PROBE_DATASET = "G5"
QUICK_SCALE = 0.05
FULL_SCALE = 0.25
DEFAULT_P = 8
DEFAULT_REPORT = "BENCH_perf.json"


@dataclass
class PerfRow:
    """One timed ``partition()`` call."""

    dataset: str
    algorithm: str
    backend: str
    p: int
    seed: int
    edges: int
    seconds: float
    edges_per_s: float
    rf: float


def _timed(partitioner, graph: Graph, p: int) -> tuple:
    start = time.perf_counter()
    partition = partitioner.partition(graph, p)
    seconds = time.perf_counter() - start
    return partition, seconds


def run_perf(
    graph: Graph,
    dataset: str = PROBE_DATASET,
    p: int = DEFAULT_P,
    seeds: Sequence[int] = (0, 1),
    quick: bool = False,
    progress: Optional[Callable[[PerfRow], None]] = None,
) -> Dict:
    """Time every contender on ``graph`` and assemble the report dict.

    Raises ``AssertionError`` if the CSR and reference TLP backends
    disagree on any (p, seed) cell — equivalence is part of what this
    benchmark tracks.
    """
    from repro.core.tlp import TLPPartitioner
    from repro.core.tlp_r import TLPRPartitioner
    from repro.partitioning.registry import make_partitioner

    # Pay the one-off kernel compilation outside the timed region.
    from repro.core.native_grow import native_kernel

    native_kernel()

    rows: List[PerfRow] = []

    def record(algorithm: str, backend: str, partitioner, seed: int) -> PerfRow:
        partition, seconds = _timed(partitioner, graph, p)
        row = PerfRow(
            dataset=dataset,
            algorithm=algorithm,
            backend=backend,
            p=p,
            seed=seed,
            edges=graph.num_edges,
            seconds=round(seconds, 4),
            edges_per_s=round(graph.num_edges / seconds) if seconds else 0.0,
            rf=round(replication_factor(partition, graph), 6),
        )
        rows.append(row)
        if progress is not None:
            progress(row)
        return row

    ref_secs = csr_secs = 0.0
    for seed in seeds:
        csr = record("TLP", "csr", TLPPartitioner(seed=seed, backend="csr"), seed)
        ref = record(
            "TLP", "reference", TLPPartitioner(seed=seed, backend="reference"), seed
        )
        csr_secs += csr.seconds
        ref_secs += ref.seconds
        assert csr.rf == ref.rf, (
            f"backend parity violated on {dataset} p={p} seed={seed}: "
            f"csr RF={csr.rf} != reference RF={ref.rf}"
        )
        record(
            "TLP_R(R=0.5)",
            "csr",
            TLPRPartitioner(0.5, seed=seed, backend="csr"),
            seed,
        )
        record("METIS", "-", make_partitioner("METIS", seed=seed), seed)
        record("LDG", "-", make_partitioner("LDG", seed=seed), seed)

    return {
        "version": SCHEMA_VERSION,
        "quick": quick,
        "dataset": dataset,
        "p": p,
        "seeds": list(seeds),
        "edges": graph.num_edges,
        "speedup": round(ref_secs / csr_secs, 2) if csr_secs else None,
        "parallel": _parallel_section(graph, p, seeds),
        "results": [asdict(row) for row in rows],
    }


def _bundle_digests(directory: Path) -> Dict[str, object]:
    """The checksums save_partition recorded (identity fingerprint)."""
    manifest = json.loads(
        (directory / "partition.json").read_text(encoding="utf-8")
    )
    return {
        "sidecar": manifest["csr_sidecar"]["checksum"],
        "parts": [entry["checksum"] for entry in manifest["partitions"]],
    }


def _parallel_section(graph: Graph, p: int, seeds: Sequence[int]) -> Dict:
    """Measure thread-pool growth and compaction fold vs sequential.

    Both measurements double as identity checks: the threaded growth
    jobs must reproduce the sequential partitionings exactly, and the
    parallel fold+save must produce a bundle with the same sha256
    digests (per-partition edge checksums and sidecar checksum) as the
    sequential one.  On a 1-core host the timings tie — the fields
    still land so multi-core runs have a baseline to diff against.
    """
    from repro.core.parallel import partition_many, resolve_workers
    from repro.core.tlp import TLPPartitioner
    from repro.partitioning.serialization import save_partition
    from repro.service.ingest import DeltaOverlay
    from repro.service.store import PartitionStore

    threads = resolve_workers(None)

    # -- growth: independent per-seed jobs, sequential vs thread pool ----
    def jobs():
        return [
            (TLPPartitioner(seed=seed, backend="csr"), graph, p)
            for seed in seeds
        ]

    start = time.perf_counter()
    sequential = [pt.partition(g, num) for pt, g, num in jobs()]
    grow_seq = time.perf_counter() - start
    start = time.perf_counter()
    threaded = partition_many(jobs(), workers=threads)
    grow_par = time.perf_counter() - start
    grow_identical = all(
        [s.edges_of(k) for k in range(p)] == [t.edges_of(k) for k in range(p)]
        for s, t in zip(sequential, threaded)
    )

    # -- compaction fold: overlay with synthetic mutations ---------------
    overlay = DeltaOverlay(PartitionStore(sequential[0]))
    victims = []
    for k in range(p):  # spread deletions over every partition
        victims.extend(sequential[0].edges_of(k)[: max(1, graph.num_edges // (20 * p))])
    for i, (u, v) in enumerate(victims):
        was = overlay.apply_delete(u, v)
        if i % 2 == 0:  # move half of them instead of dropping
            overlay.apply_insert(u, v, (was + 1) % p)

    def fold(workers: int, directory: Path) -> float:
        start = time.perf_counter()
        folded = overlay.to_partition(workers=workers)
        save_partition(folded, directory, workers=workers)
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-perf-fold-") as tmp:
        seq_dir, par_dir = Path(tmp) / "seq", Path(tmp) / "par"
        fold_seq = fold(1, seq_dir)
        fold_par = fold(threads, par_dir)
        fold_identical = _bundle_digests(seq_dir) == _bundle_digests(par_dir)

    return {
        "grow_threads": threads,
        "grow_seconds_sequential": round(grow_seq, 4),
        "grow_seconds_parallel": round(grow_par, 4),
        "grow_identical": grow_identical,
        "fold_mutations": len(victims),
        "fold_seconds": round(fold_par, 4),
        "fold_seconds_sequential": round(fold_seq, 4),
        "fold_identical": fold_identical,
    }


def write_report(report: Dict, path: str = DEFAULT_REPORT) -> str:
    """Write the report atomically; returns the path written."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path
