"""Command-line reproduction driver: ``python -m repro.bench <experiment>``.

Experiments (paper artefact in parentheses):

* ``table3`` — dataset statistics (Table III)
* ``fig8``   — RF of TLP/METIS/LDG/DBH/Random, p = 10/15/20 (Fig. 8)
* ``table4`` — dRF = RF(METIS) - RF(TLP) (Table IV)
* ``fig9`` / ``fig10`` / ``fig11`` — TLP vs TLP_R sweeps at p = 10/15/20
* ``table6`` — mean selected-vertex degree per stage (Table VI)
* ``comm``   — PageRank communication vs RF (the paper's motivation)
* ``scaling`` — time/space scaling of TLP (§III-E)
* ``validate`` — measured structure of every dataset stand-in (Table III ext.)
* ``extended`` — every implemented algorithm ranked on one dataset
* ``window``  — TLP-W window-size sweep (the §V future-work feature)
* ``seeds``   — RF stability across random seeds, per algorithm
* ``slack``   — TLP's balance-slack vs RF trade-off
* ``perf``    — TLP backend throughput benchmark; writes ``BENCH_perf.json``
* ``refine``  — local-search RF refinement benchmark (rf-delta, moves/s,
  time-to-convergence per bundle); merges a ``refine`` section into
  ``BENCH_perf.json``
* ``oocore``  — out-of-core streaming partitioner vs in-memory HDRF
  (RF ratio, edges/s, peak RSS vs byte budget, each in its own
  subprocess); merges an ``oocore`` section into ``BENCH_perf.json``
* ``serve``   — partition-service load test; writes ``BENCH_serve.json``
* ``all``    — everything above (except ``perf``/``refine``/``oocore``/
  ``serve``, run explicitly)

``--scale`` overrides each dataset's default scale (see DESIGN.md §5);
``--quick`` uses the small bench scales the pytest suite uses.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench.communication import communication_experiment, render_communication
from repro.bench.figures import DEFAULT_P_VALUES, fig8, fig9_to_11
from repro.bench.harness import load_paper_graphs
from repro.bench.report import render_banner, render_table
from repro.bench.scaling import empirical_exponent, time_scaling_sweep
from repro.bench.tables import render_table3, table4, table6

FIG_P = {"fig9": 10, "fig10": 15, "fig11": 20}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table3",
            "fig8",
            "table4",
            "fig9",
            "fig10",
            "fig11",
            "table6",
            "comm",
            "scaling",
            "validate",
            "extended",
            "window",
            "seeds",
            "slack",
            "perf",
            "refine",
            "oocore",
            "serve",
            "all",
        ],
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="uniform dataset scale (default: per-dataset defaults)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the tiny bench scales (seconds instead of minutes)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        metavar="GK",
        help="restrict to these dataset keys (e.g. G1 G2)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="oocore only: byte budget for the streaming contender "
        "(suffixes K/M/G; default 8M quick, 64M full)",
    )
    parser.add_argument(
        "--mutate",
        type=float,
        default=0.0,
        metavar="RATIO",
        help="serve only: drive RATIO*requests insert/delete mutations "
        "through the WAL write path alongside the readers",
    )
    parser.add_argument(
        "--delete-ratio",
        type=float,
        default=0.3,
        metavar="R",
        help="serve only: fraction of mutations that are deletes",
    )
    parser.add_argument(
        "--fsync",
        choices=["always", "batch", "never"],
        default="always",
        help="serve only: WAL fsync policy for the mutate workload",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="serve only: run the load phase under cProfile and dump the "
        "top-20 cumulative hotspots next to BENCH_serve.json",
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        metavar="N",
        help="serve only: also replay the workload against a sharded "
        "cluster of N worker processes (0 = skip the cluster phase)",
    )
    parser.add_argument(
        "--cluster-replicas",
        type=int,
        default=1,
        metavar="R",
        help="serve only: replica processes per shard in the cluster phase",
    )
    parser.add_argument(
        "--wire",
        choices=["json", "binary", "both"],
        default="binary",
        help="serve only: client wire codec; 'both' drives the workload "
        "once per codec (binary as the headline numbers)",
    )
    return parser


def _graphs(args):
    return load_paper_graphs(
        scale=args.scale, seed=args.seed, keys=args.datasets, bench=args.quick
    )


def _run_fig8(args, graphs) -> None:
    print(render_banner("Fig. 8 — replication factor per algorithm"))
    data = fig8(
        graphs=graphs,
        seed=args.seed,
        progress=lambda r: print(
            f"  done {r.dataset} {r.algorithm} p={r.num_partitions} "
            f"RF={r.replication_factor:.3f} ({r.seconds:.1f}s)",
            file=sys.stderr,
        ),
    )
    for p in DEFAULT_P_VALUES:
        print(f"\nFig. 8 ({'abc'[DEFAULT_P_VALUES.index(p)]}) p={p}:")
        print(data.render(p))
    print()
    print(render_banner("Table IV — dRF = RF(METIS) - RF(TLP)"))
    print(table4(fig8_data=data).render())


def _run_tlp_r(args, graphs, name: str) -> None:
    p = FIG_P[name]
    print(render_banner(f"Fig. {name[3:]} — TLP vs TLP_R sweep, p={p}"))
    for sweep in fig9_to_11(p, graphs=graphs, seed=args.seed):
        print()
        print(sweep.render())


def _run_table6(args, graphs) -> None:
    print(render_banner("Table VI — mean degree of selected vertices per stage"))
    print(table6(graphs=graphs, seed=args.seed).render())


def _run_comm(args, graphs) -> None:
    print(render_banner("Communication experiment — PageRank messages vs RF"))
    key = sorted(graphs)[0]
    print(f"graph: {key} ({graphs[key]!r}), p=10\n")
    rows = communication_experiment(graphs[key], num_partitions=10, seed=args.seed)
    print(render_communication(rows))


def _run_validate(args) -> None:
    from repro.datasets.validation import render_validation, validate_all

    print(render_banner("Table III extended — stand-in structure validation"))
    print(render_validation(validate_all(scale_override=args.scale, seed=args.seed)))


def _run_extended(args, graphs) -> None:
    from repro.partitioning.metrics import edge_balance, replication_factor
    from repro.partitioning.registry import (
        EXTENDED_ALGORITHMS,
        PAPER_ALGORITHMS,
        make_partitioner,
    )

    key = sorted(graphs)[0]
    graph = graphs[key]
    print(render_banner("Extended comparison — all implemented algorithms"))
    print(f"graph: {key} ({graph!r}), p=10\n")
    rows = []
    for name in tuple(PAPER_ALGORITHMS) + tuple(EXTENDED_ALGORITHMS):
        partition = make_partitioner(name, seed=args.seed).partition(graph, 10)
        rows.append(
            [name, replication_factor(partition, graph), edge_balance(partition)]
        )
    rows.sort(key=lambda row: row[1])
    print(render_table(["algorithm", "RF", "balance"], rows))


def _run_window(args, graphs) -> None:
    import math

    from repro.core.windowed import WindowedLocalPartitioner
    from repro.partitioning.metrics import replication_factor
    from repro.partitioning.registry import make_partitioner

    key = sorted(graphs)[0]
    graph = graphs[key]
    p = 10
    capacity = math.ceil(graph.num_edges / p)
    print(render_banner("TLP-W window sweep — §V future work"))
    print(f"graph: {key} ({graph!r}), p={p}, C={capacity}\n")
    rows = []
    window = capacity
    while window < graph.num_edges:
        part = WindowedLocalPartitioner(window_size=window, seed=args.seed).partition(
            graph, p
        )
        rows.append([window, replication_factor(part, graph)])
        window *= 2
    tlp = make_partitioner("TLP", seed=args.seed).partition(graph, p)
    rows.append(["full graph (TLP)", replication_factor(tlp, graph)])
    print(render_table(["window", "RF"], rows))


def _run_seeds(args, graphs) -> None:
    from repro.bench.sweeps import seed_sensitivity
    from repro.partitioning.registry import PAPER_ALGORITHMS

    key = sorted(graphs)[0]
    graph = graphs[key]
    print(render_banner("Seed sensitivity — RF across 5 seeds"))
    print(f"graph: {key} ({graph!r}), p=10\n")
    rows = seed_sensitivity(graph, PAPER_ALGORITHMS, 10)
    print(
        render_table(
            ["algorithm", "mean RF", "min", "max", "std"],
            [[r.algorithm, r.mean_rf, r.min_rf, r.max_rf, r.std_rf] for r in rows],
        )
    )


def _run_slack(args, graphs) -> None:
    from repro.bench.sweeps import slack_tradeoff

    key = sorted(graphs)[0]
    graph = graphs[key]
    print(render_banner("Slack trade-off — TLP RF vs capacity slack"))
    print(f"graph: {key} ({graph!r}), p=10\n")
    rows = slack_tradeoff(graph, 10, seed=args.seed)
    print(
        render_table(
            ["slack", "RF", "realised balance"],
            [[r.slack, r.replication_factor, r.edge_balance] for r in rows],
        )
    )


def _run_perf(args) -> None:
    from repro.bench.perf import (
        FULL_SCALE,
        PROBE_DATASET,
        QUICK_SCALE,
        run_perf,
        write_report,
    )
    from repro.datasets.cache import load_cached

    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else FULL_SCALE
    )
    dataset = (args.datasets or [PROBE_DATASET])[0]
    print(render_banner("Backend throughput — TLP hot-path benchmark"))
    print(f"graph: {dataset} scale={scale:g}, p=8\n")
    graph = load_cached(dataset, scale=scale, seed=args.seed)
    report = run_perf(
        graph,
        dataset=dataset,
        seeds=(args.seed, args.seed + 1),
        quick=args.quick,
        progress=lambda r: print(
            f"  done {r.algorithm:14s} backend={r.backend:9s} seed={r.seed} "
            f"{r.edges_per_s:>9.0f} edges/s RF={r.rf:.3f}",
            file=sys.stderr,
        ),
    )
    print(
        render_table(
            ["algorithm", "backend", "seed", "seconds", "edges/s", "RF"],
            [
                [r["algorithm"], r["backend"], r["seed"], r["seconds"],
                 r["edges_per_s"], r["rf"]]
                for r in report["results"]
            ],
        )
    )
    print(f"\nTLP speedup (csr vs reference): {report['speedup']:g}x")
    # The refine and oocore experiments own their sections; carry them
    # over so a perf rerun never silently drops tracked numbers.
    import json

    from repro.bench.perf import DEFAULT_REPORT

    try:
        with open(DEFAULT_REPORT, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict):
            for section in ("refine", "oocore"):
                if section in existing:
                    report[section] = existing[section]
    except (OSError, ValueError):
        pass
    path = write_report(report)
    print(f"wrote {path}")


def _run_refine(args) -> None:
    from repro.bench.harness import load_paper_graphs
    from repro.bench.refine import (
        DEFAULT_DATASETS,
        DEFAULT_P,
        merge_refine_section,
        run_refine,
    )

    datasets = args.datasets or list(DEFAULT_DATASETS)
    print(render_banner("Refinement — local-search RF post-pass benchmark"))
    print(f"datasets: {' '.join(datasets)}, p={DEFAULT_P}\n")
    graphs = load_paper_graphs(
        scale=args.scale, seed=args.seed, keys=datasets, bench=args.quick
    )
    section = run_refine(
        graphs,
        seed=args.seed,
        quick=args.quick,
        progress=lambda row: print(
            f"  done {row['dataset']} {row['source']:4s} "
            f"RF {row['rf_before']:.4f} -> {row['rf_after']:.4f} "
            f"(-{row['rf_delta']:.4f}) {row['moves']}mv+{row['swaps']}sw "
            f"in {row['seconds']:g}s [{row['converged']}]",
            file=sys.stderr,
        ),
    )
    print(
        render_table(
            ["dataset", "source", "RF before", "RF after", "delta",
             "moves", "swaps", "seconds", "moves/s", "converged"],
            [
                [r["dataset"], r["source"], r["rf_before"], r["rf_after"],
                 r["rf_delta"], r["moves"], r["swaps"], r["seconds"],
                 r["moves_per_s"], r["converged"]]
                for r in section["rows"]
            ],
        )
    )
    path = merge_refine_section(section)
    print(f"\nmerged refine section into {path}")


def _run_oocore(args) -> None:
    from repro.__main__ import _parse_bytes
    from repro.bench.oocore import (
        PROBE_DATASET,
        merge_oocore_section,
        run_oocore,
    )
    from repro.bench.perf import FULL_SCALE, QUICK_SCALE
    from repro.datasets.cache import load_cached

    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else FULL_SCALE
    )
    dataset = (args.datasets or [PROBE_DATASET])[0]
    budget = (
        _parse_bytes(args.memory_budget)
        if args.memory_budget is not None
        else None
    )
    print(render_banner("Out-of-core — streaming partitioner vs in-memory"))
    print(f"graph: {dataset} scale={scale:g}, p=8\n")
    graph = load_cached(dataset, scale=scale, seed=args.seed)
    section = run_oocore(
        graph,
        dataset=dataset,
        seed=args.seed,
        quick=args.quick,
        memory_budget=budget,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
    )
    streaming, in_memory = section["streaming"], section["in_memory"]
    print(
        render_table(
            ["contender", "RF", "edges/s", "rss KiB"],
            [
                ["streaming", streaming["replication_factor"],
                 streaming["edges_per_s"], streaming["rss_max_kib"]],
                ["in-memory HDRF", in_memory["replication_factor"],
                 in_memory["edges_per_s"], in_memory["rss_max_kib"]],
            ],
        )
    )
    print(
        f"\nRF ratio (streaming / in-memory): {section['rf_ratio']:g}; "
        f"budget {section['memory_budget_bytes']} B, streaming RSS = "
        f"{section['rss_budget_ratio']:g}x budget"
    )
    path = merge_oocore_section(section)
    print(f"merged oocore section into {path}")


def _run_serve(args) -> None:
    from repro.bench.serve import (
        DEFAULT_DATASET,
        FULL_REQUESTS,
        FULL_SCALE,
        QUICK_REQUESTS,
        QUICK_SCALE,
        run_serve,
        write_report,
    )
    from repro.datasets.cache import load_cached

    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else FULL_SCALE
    )
    dataset = (args.datasets or [DEFAULT_DATASET])[0]
    requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    print(render_banner("Serving — partition-service load test"))
    print(f"graph: {dataset} scale={scale:g}, p=8, {requests} mixed queries\n")
    graph = load_cached(dataset, scale=scale, seed=args.seed)
    profile_path = None
    if args.profile:
        from repro.bench.serve import DEFAULT_REPORT

        base = args.output if args.output else DEFAULT_REPORT
        root, _ = os.path.splitext(base)
        profile_path = f"{root}_profile.txt"
    report = run_serve(
        graph,
        dataset=dataset,
        num_requests=requests,
        seed=args.seed,
        quick=args.quick,
        mutate_ratio=args.mutate,
        delete_ratio=args.delete_ratio,
        fsync=args.fsync,
        profile_path=profile_path,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
        cluster_workers=args.cluster_workers,
        cluster_replicas=args.cluster_replicas,
        wire=args.wire,
    )
    print(
        render_table(
            ["op", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
            [
                [op, row["count"], row["mean_ms"], row["p50_ms"],
                 row["p95_ms"], row["p99_ms"]]
                for op, row in sorted(report["ops"].items())
            ],
        )
    )
    open_times = report["store_open_seconds"]
    print(
        f"\nstore open [{report['store_backend']} serving]: "
        f"dict {open_times['dict']:g}s vs csr {open_times['csr']:g}s "
        f"({open_times['speedup']:g}x); peak RSS {report['rss_max_kib']} KiB"
    )
    print(
        f"{report['num_requests']} requests in {report['elapsed_s']:g}s "
        f"= {report['requests_per_s']} req/s [wire={report['wire']}]; "
        f"verified {report['verified_neighbors']} neighbour fan-outs "
        f"and {report['verified_edges']} edge routes"
    )
    modes = report.get("wire_modes") or {}
    if len(modes) > 1:
        per_codec = ", ".join(
            f"{mode} {summary['requests_per_s']} req/s"
            for mode, summary in sorted(modes.items())
        )
        print(f"wire modes: {per_codec}")
    print(f"counter parity: {report['counter_parity']}")
    batch = report["batch"]
    print(
        f"batching: {batch['batches']} batches, mean size "
        f"{batch['mean_batch_size']:g}, {batch['vectorised_requests']} "
        f"vectorised answers, {batch['dedup_hits']} dedup hits"
    )
    if profile_path:
        print(f"profile: top-20 cumulative hotspots in {profile_path}")
    cluster = report.get("cluster")
    if cluster:
        print(
            f"cluster [{cluster['workers']} shards x {cluster['replicas']} "
            f"replicas, wire={cluster['wire']}]: {cluster['num_requests']} "
            f"requests in {cluster['elapsed_s']:g}s = "
            f"{cluster['requests_per_s']} req/s "
            f"({cluster['speedup_vs_single']:g}x vs single-process); "
            f"verified {cluster['verified_neighbors']} fan-outs and "
            f"{cluster['verified_edges']} edge routes"
        )
        c_modes = cluster.get("wire_modes") or {}
        if len(c_modes) > 1:
            per_codec = ", ".join(
                f"{mode} {summary['requests_per_s']} req/s "
                f"({summary['speedup_vs_single']:g}x)"
                for mode, summary in sorted(c_modes.items())
            )
            print(f"cluster wire modes: {per_codec}")
    ingest = report.get("ingest")
    if ingest:
        fsync_ms = ingest.get("wal_fsync_ms") or {}
        fsync_note = (
            f"fsync p99 {fsync_ms['p99_ms']:g}ms" if fsync_ms else "no fsyncs"
        )
        print(
            f"ingest [{ingest['fsync']}]: {ingest['mutations']} mutations "
            f"({ingest['deletes']} deletes) in {ingest['mutate_seconds']:g}s "
            f"= {ingest['mutations_per_s']} mut/s; {fsync_note}; "
            f"WAL {ingest['wal_bytes']} B; RF drift {ingest['overlay_rf_drift']:+g}"
        )
    path = write_report(report)
    print(f"wrote {path}")


def _run_scaling(args) -> None:
    print(render_banner("Scaling — TLP time/space vs graph size (§III-E)"))
    points = time_scaling_sweep(seed=args.seed)
    print(
        render_table(
            ["|V|", "|E|", "p", "seconds", "peak KiB"],
            [
                [pt.num_vertices, pt.num_edges, pt.num_partitions, pt.seconds, pt.peak_kib]
                for pt in points
            ],
        )
    )
    print(f"\nempirical log-log exponent (time vs |E|): {empirical_exponent(points):.2f}")


class _Tee:
    """Duplicate writes to stdout and a file."""

    def __init__(self, primary, secondary):
        self._streams = (primary, secondary)

    def write(self, text):
        for stream in self._streams:
            stream.write(text)

    def flush(self):
        for stream in self._streams:
            stream.flush()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.output:
        out_file = open(args.output, "w", encoding="utf-8")
        original_stdout = sys.stdout
        sys.stdout = _Tee(original_stdout, out_file)
        try:
            return _dispatch(args)
        finally:
            sys.stdout = original_stdout
            out_file.close()
    return _dispatch(args)


def _dispatch(args) -> int:
    wants = (
        [
            "table3",
            "validate",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "table6",
            "comm",
            "extended",
            "window",
            "seeds",
            "slack",
            "scaling",
        ]
        if args.experiment == "all"
        else [args.experiment]
    )
    graphs = None
    needs_graphs = set(wants) & (
        {"fig8", "table4", "table6", "comm", "extended", "window", "seeds", "slack"}
        | set(FIG_P)
    )
    if needs_graphs:
        graphs = _graphs(args)
    for want in wants:
        if want == "table3":
            print(render_banner("Table III — datasets"))
            print(render_table3())
        elif want in ("fig8", "table4"):
            _run_fig8(args, graphs)
        elif want in FIG_P:
            _run_tlp_r(args, graphs, want)
        elif want == "table6":
            _run_table6(args, graphs)
        elif want == "comm":
            _run_comm(args, graphs)
        elif want == "validate":
            _run_validate(args)
        elif want == "extended":
            _run_extended(args, graphs)
        elif want == "window":
            _run_window(args, graphs)
        elif want == "seeds":
            _run_seeds(args, graphs)
        elif want == "slack":
            _run_slack(args, graphs)
        elif want == "perf":
            _run_perf(args)
        elif want == "refine":
            _run_refine(args)
        elif want == "oocore":
            _run_oocore(args)
        elif want == "serve":
            _run_serve(args)
        elif want == "scaling":
            _run_scaling(args)
        print()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        raise SystemExit(0)
