"""Communication-volume experiment: the paper's motivation, quantified.

Section I argues that partition quality (RF) drives the communication of
distributed graph engines.  This experiment partitions one graph with each
algorithm, runs PageRank on the simulated GAS engine, and reports messages
per superstep next to RF — the ordering must match (gather traffic is
``(RF - 1) * |V|`` per superstep by construction of the vertex-cut model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.bench.report import render_table
from repro.graph.graph import Graph
from repro.partitioning.metrics import replication_factor
from repro.partitioning.registry import PAPER_ALGORITHMS, make_partitioner
from repro.runtime.engine import GASEngine
from repro.runtime.programs import PageRank
from repro.runtime.stats import load_imbalance


@dataclass
class CommunicationRow:
    """One algorithm's RF and runtime communication profile."""

    algorithm: str
    replication_factor: float
    gather_messages_per_superstep: float
    total_messages: int
    supersteps: int
    load_imbalance: float


def communication_experiment(
    graph: Graph,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    num_partitions: int = 10,
    seed: int = 0,
    max_supersteps: int = 30,
) -> List[CommunicationRow]:
    """PageRank communication per algorithm on one graph."""
    rows: List[CommunicationRow] = []
    for name in algorithms:
        partition = make_partitioner(name, seed=seed).partition(graph, num_partitions)
        engine = GASEngine(graph, partition, PageRank())
        result = engine.run(max_supersteps=max_supersteps)
        gather = [s.gather_messages for s in result.stats.supersteps]
        rows.append(
            CommunicationRow(
                algorithm=name,
                replication_factor=replication_factor(partition, graph),
                gather_messages_per_superstep=sum(gather) / len(gather),
                total_messages=result.stats.total_messages,
                supersteps=result.stats.num_supersteps,
                load_imbalance=load_imbalance(engine.machine_loads()),
            )
        )
    rows.sort(key=lambda r: r.replication_factor)
    return rows


def render_communication(rows: List[CommunicationRow]) -> str:
    """Aligned table of the communication experiment."""
    headers = [
        "algorithm",
        "RF",
        "gather msgs/superstep",
        "total msgs",
        "supersteps",
        "edge imbalance",
    ]
    body = [
        [
            r.algorithm,
            r.replication_factor,
            r.gather_messages_per_superstep,
            r.total_messages,
            r.supersteps,
            r.load_imbalance,
        ]
        for r in rows
    ]
    return render_table(headers, body)
