"""Tracked benchmark for the out-of-core streaming partitioner.

``python -m repro.bench oocore`` writes a dataset stand-in to an edge
file, runs :func:`repro.partitioning.oocore.pipeline.partition_stream`
over it under an explicit byte budget, and records what streaming costs
against the in-memory HDRF baseline — RF, edges/s, and measured peak
RSS — as an ``oocore`` section merged into ``BENCH_perf.json`` so
quality and footprint regressions show up in review diffs.

Both contenders run in their own subprocess: ``resource.getrusage``'s
``ru_maxrss`` is a process-lifetime high-water mark, so measuring two
pipelines in one process would let the first contaminate the second.
Each child prints a one-line JSON record (its result plus its own
``ru_maxrss``) that the parent collects.

The parent re-verifies the streamed bundle from disk: it must load
(manifest checksums intact) and its recomputed RF must match what the
pipeline reported.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.graph.graph import Graph

DEFAULT_P = 8
#: Same probe workload as the perf bench (G5 / Slashdot0811 stand-in).
PROBE_DATASET = "G5"
#: Byte budgets for the streaming contender (``None`` would unclamp it).
QUICK_BUDGET = 8 << 20
FULL_BUDGET = 64 << 20


def write_edge_file(graph: Graph, path: Path) -> int:
    """Dump ``graph`` as a whitespace edge list; returns the edge count."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
            count += 1
    return count


def _run_child(mode: str, *argv: str) -> Dict[str, object]:
    """Run one contender in a fresh process; returns its JSON record."""
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.oocore", "--child", mode, *argv],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"oocore bench child {mode!r} failed "
            f"(exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_oocore(
    graph: Graph,
    dataset: str = PROBE_DATASET,
    p: int = DEFAULT_P,
    seed: int = 0,
    quick: bool = False,
    memory_budget: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Benchmark streaming vs in-memory partitioning of ``graph``.

    Returns the ``oocore`` section dict for ``BENCH_perf.json``.
    """
    from repro.partitioning.metrics import replication_factor
    from repro.partitioning.serialization import load_partition

    if memory_budget is None:
        memory_budget = QUICK_BUDGET if quick else FULL_BUDGET
    if progress is None:
        def progress(message: str) -> None:
            pass
    with tempfile.TemporaryDirectory(prefix="repro-oocore-") as tmp:
        edges_path = Path(tmp) / "edges.txt"
        bundle = Path(tmp) / "bundle"
        edges = write_edge_file(graph, edges_path)
        progress(f"wrote {edges} edges to {edges_path}")

        streaming = _run_child(
            "stream", str(edges_path), str(bundle), str(p), str(memory_budget)
        )
        progress(
            f"streaming: RF {streaming['replication_factor']} "
            f"{streaming['edges_per_s']:.0f} edges/s "
            f"rss {streaming['rss_max_kib']} KiB "
            f"[{streaming['sketch_kind']} sketch, "
            f"{streaming['num_clusters']} clusters]"
        )
        in_memory = _run_child("inmem", str(edges_path), str(p))
        progress(
            f"in-memory HDRF: RF {in_memory['replication_factor']} "
            f"{in_memory['edges_per_s']:.0f} edges/s "
            f"rss {in_memory['rss_max_kib']} KiB"
        )

        # Re-verify the streamed bundle from disk before the tempdir goes.
        partition = load_partition(bundle)
        rf_disk = replication_factor(partition, graph)
        if abs(rf_disk - float(streaming["replication_factor"])) > 1e-6:
            raise AssertionError(
                f"streamed bundle RF mismatch on {dataset}: disk {rf_disk} "
                f"!= pipeline {streaming['replication_factor']}"
            )

    rf_ratio = float(streaming["replication_factor"]) / float(
        in_memory["replication_factor"]
    )
    budget_kib = memory_budget // 1024
    return {
        "dataset": dataset,
        "p": p,
        "seed": seed,
        "quick": quick,
        "edges": edges,
        "vertices": graph.num_vertices,
        "memory_budget_bytes": memory_budget,
        "streaming": streaming,
        "in_memory": in_memory,
        "rf_ratio": round(rf_ratio, 4),
        "rss_budget_ratio": round(
            int(streaming["rss_max_kib"]) / budget_kib, 3
        ),
        "bundle_rf_verified": True,
    }


def merge_oocore_section(
    section: Dict[str, object], path: Optional[str] = None
) -> str:
    """Merge the ``oocore`` section into ``BENCH_perf.json`` atomically.

    Same contract as :func:`repro.bench.refine.merge_refine_section`:
    each experiment rewrites only its own section.
    """
    from repro.bench.perf import DEFAULT_REPORT, SCHEMA_VERSION, write_report

    if path is None:
        path = DEFAULT_REPORT
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {}
    if not isinstance(report, dict):
        report = {}
    report["version"] = max(
        int(report.get("version", 0) or 0), SCHEMA_VERSION
    )
    report["oocore"] = section
    return write_report(report, path)


# -- subprocess entry points -------------------------------------------------


def _rss_max_kib() -> int:
    """This process's peak resident set, in KiB.

    Prefers ``/proc/self/status`` ``VmHWM``: unlike ``ru_maxrss`` it is
    reset by ``execve``, so a child spawned from a fat parent (fork
    copies the accounting) still reports only its *own* high-water mark.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _child_stream(argv) -> Dict[str, object]:
    from repro.partitioning.oocore import partition_stream

    edges_path, bundle, p, budget = argv
    result = partition_stream(
        edges_path,
        bundle,
        num_partitions=int(p),
        memory_budget=None if budget == "none" else int(budget),
    )
    record = result.summary()
    record["rss_max_kib"] = _rss_max_kib()
    return record


def _child_inmem(argv) -> Dict[str, object]:
    from repro.partitioning.hdrf import HDRFPartitioner
    from repro.partitioning.metrics import replication_factor

    edges_path, p = argv
    edges = [(u, v) for u, v in _read_edges(edges_path) if u != v]
    graph = Graph.from_edges(edges)
    started = time.perf_counter()
    partition = HDRFPartitioner(tie_break="lowest").assign_stream(
        edges, int(p), graph=graph
    )
    seconds = time.perf_counter() - started
    return {
        "replication_factor": round(replication_factor(partition, graph), 6),
        "seconds": round(seconds, 6),
        "edges_per_s": round(graph.num_edges / seconds, 3) if seconds else 0.0,
        "num_edges": graph.num_edges,
        "rss_max_kib": _rss_max_kib(),
    }


def _read_edges(path):
    from repro.graph.chunked import ChunkedEdgeStream

    return ChunkedEdgeStream(path).edges()


def _main(argv) -> int:
    if len(argv) >= 2 and argv[0] == "--child":
        mode, rest = argv[1], argv[2:]
        if mode == "stream":
            record = _child_stream(rest)
        elif mode == "inmem":
            record = _child_inmem(rest)
        else:
            raise SystemExit(f"unknown child mode {mode!r}")
        print(json.dumps(record))
        return 0
    raise SystemExit(
        "this module is driven by `python -m repro.bench oocore`; "
        "direct invocation is for its --child subprocesses only"
    )


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
