"""Builders for the paper's tables (III, IV, VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.figures import DEFAULT_P_VALUES, Fig8Data, fig8
from repro.bench.harness import load_paper_graphs, run_single
from repro.bench.report import render_table
from repro.datasets.catalog import table3_rows
from repro.graph.graph import Graph


def render_table3() -> str:
    """Table III: dataset statistics (published numbers, by construction)."""
    rows = table3_rows()
    headers = list(rows[0].keys())
    return render_table(headers, [list(r.values()) for r in rows])


@dataclass
class Table4Data:
    """``dRF = RF(METIS) - RF(TLP)`` per dataset and p (Table IV)."""

    delta_rf: Dict[tuple, float]  # (dataset, p) -> dRF
    p_values: List[int]
    datasets: List[str]

    def average(self, p: int) -> float:
        """Mean dRF over datasets for one p (the paper's 'Average' column)."""
        values = [self.delta_rf[(d, p)] for d in self.datasets]
        return sum(values) / len(values) if values else 0.0

    def positive_fraction(self, p: int) -> float:
        """Fraction of datasets where TLP beats METIS at this p."""
        values = [self.delta_rf[(d, p)] for d in self.datasets]
        if not values:
            return 0.0
        return sum(1 for v in values if v > 0) / len(values)

    def render(self) -> str:
        headers = ["p"] + self.datasets + ["Average"]
        rows = []
        for p in self.p_values:
            rows.append(
                [f"p={p}"]
                + [self.delta_rf[(d, p)] for d in self.datasets]
                + [self.average(p)]
            )
        return render_table(headers, rows)


def table4(fig8_data: Optional[Fig8Data] = None, **fig8_kwargs) -> Table4Data:
    """Table IV from Fig. 8's runs (computes them when not supplied)."""
    if fig8_data is None:
        fig8_data = fig8(algorithms=("TLP", "METIS"), **fig8_kwargs)
    datasets = sorted({r.dataset for r in fig8_data.results})
    p_values = sorted({r.num_partitions for r in fig8_data.results})
    delta: Dict[tuple, float] = {}
    for dataset in datasets:
        for p in p_values:
            delta[(dataset, p)] = fig8_data.rf(dataset, "METIS", p) - fig8_data.rf(
                dataset, "TLP", p
            )
    return Table4Data(delta_rf=delta, p_values=p_values, datasets=datasets)


@dataclass
class Table6Data:
    """Average degree of the vertices selected per stage (Table VI)."""

    # (dataset, p) -> (stage1 mean degree, stage2 mean degree)
    mean_degrees: Dict[tuple, tuple]
    p_values: List[int]
    datasets: List[str]

    def render(self) -> str:
        headers = ["dataset"]
        for p in self.p_values:
            headers += [f"p={p} StageI", f"p={p} StageII"]
        rows = []
        for dataset in self.datasets:
            row: List = [dataset]
            for p in self.p_values:
                s1, s2 = self.mean_degrees[(dataset, p)]
                row += [s1, s2]
            rows.append(row)
        return render_table(headers, rows, precision=2)


def table6(
    graphs: Optional[Dict[str, Graph]] = None,
    p_values: Sequence[int] = DEFAULT_P_VALUES,
    seed: int = 0,
    scale: Optional[float] = None,
    bench: bool = False,
) -> Table6Data:
    """Run TLP with telemetry and aggregate the per-stage mean degrees."""
    if graphs is None:
        graphs = load_paper_graphs(scale=scale, seed=seed, bench=bench)
    mean_degrees: Dict[tuple, tuple] = {}
    for dataset, graph in graphs.items():
        for p in p_values:
            result = run_single(graph, "TLP", p, seed=seed, dataset=dataset)
            mean_degrees[(dataset, p)] = (
                result.extra.get("stage1_mean_degree", 0.0),
                result.extra.get("stage2_mean_degree", 0.0),
            )
    return Table6Data(
        mean_degrees=mean_degrees,
        p_values=list(p_values),
        datasets=sorted(graphs),
    )
