"""Tracked benchmark for local-search RF refinement.

``python -m repro.bench refine`` builds a partition bundle per dataset
and source partitioner, runs :func:`repro.partitioning.refine.
refine_bundle` over it, and records what refinement bought — RF before
and after, moves/swaps applied, throughput (moves/s), and
time-to-convergence — as a ``refine`` section merged into
``BENCH_perf.json`` so quality regressions show up in review diffs.

Two source partitioners are benchmarked per graph:

* ``TLP`` — the paper's two-stage heuristic.  On dense graphs its
  output is already move-optimal (delta ~0, a tracked finding in
  itself); on sparser graphs the swap phase recovers real RF.
* ``DBH`` — degree-based hashing, a cheap streaming baseline standing
  in for "whatever produced the bundle" (2PS-style: refinement as a
  post-pass decoupled from the initial partitioner).  Refinement
  consistently recovers a large margin here.

Every run re-verifies the conservation invariant at scale: the refined
bundle is reloaded and its RF recomputed from disk must match the
stats the engine reported.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.partitioning.metrics import replication_factor

DEFAULT_P = 8
DEFAULT_SOURCES = ("TLP", "DBH")
DEFAULT_DATASETS = ("G1", "G2", "G3", "G4")


def run_refine(
    graphs: Dict[str, Graph],
    p: int = DEFAULT_P,
    seed: int = 0,
    quick: bool = False,
    sources: Sequence[str] = DEFAULT_SOURCES,
    max_passes: int = 8,
    slack: float = 1.0,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Benchmark bundle refinement on every (dataset, source) cell.

    Returns the ``refine`` section dict for ``BENCH_perf.json``.  Each
    row measures one build -> save -> ``refine_bundle`` -> reload
    round trip; the reported ``seconds`` / ``moves_per_s`` cover the
    refinement engine only (bundle IO is excluded), and ``rf_after`` is
    re-verified against the bundle actually left on disk.
    """
    from repro.partitioning.refine import refine_bundle
    from repro.partitioning.registry import make_partitioner
    from repro.partitioning.serialization import load_partition, save_partition

    rows: List[Dict[str, object]] = []
    for dataset in sorted(graphs):
        graph = graphs[dataset]
        for source in sources:
            partition = make_partitioner(source, seed=seed).partition(graph, p)
            rf_input = replication_factor(partition, graph)
            with tempfile.TemporaryDirectory(prefix="repro-refine-") as tmp:
                bundle = Path(tmp) / "bundle"
                save_partition(
                    partition,
                    bundle,
                    metadata={"algorithm": source, "seed": seed},
                )
                started = time.perf_counter()
                _, stats = refine_bundle(
                    bundle, slack=slack, max_passes=max_passes
                )
                bundle_seconds = time.perf_counter() - started
                refined = load_partition(bundle)
            refined.validate_against(graph)
            rf_disk = replication_factor(refined, graph)
            if abs(rf_disk - stats.rf_after) > 1e-9:
                raise AssertionError(
                    f"refined bundle RF mismatch on {dataset}/{source}: "
                    f"disk {rf_disk} != stats {stats.rf_after}"
                )
            if abs(rf_input - stats.rf_before) > 1e-9:
                raise AssertionError(
                    f"input RF mismatch on {dataset}/{source}: "
                    f"graph {rf_input} != stats {stats.rf_before}"
                )
            row: Dict[str, object] = {
                "dataset": dataset,
                "source": source,
                "p": p,
                "edges": graph.num_edges,
                "vertices": graph.num_vertices,
                "rf_before": round(stats.rf_before, 6),
                "rf_after": round(stats.rf_after, 6),
                "rf_delta": round(stats.rf_delta, 6),
                "moves": stats.moves,
                "swaps": stats.swaps,
                "passes": stats.passes,
                "capacity": stats.capacity,
                "converged": stats.converged,
                "seconds": round(stats.seconds, 4),
                "bundle_seconds": round(bundle_seconds, 4),
                "moves_per_s": round(stats.moves_per_s, 1),
            }
            rows.append(row)
            if progress is not None:
                progress(row)
    return {
        "p": p,
        "seed": seed,
        "quick": quick,
        "slack": slack,
        "max_passes": max_passes,
        "sources": list(sources),
        "rows": rows,
    }


def merge_refine_section(
    section: Dict[str, object], path: Optional[str] = None
) -> str:
    """Merge the ``refine`` section into ``BENCH_perf.json`` atomically.

    The perf report is written by two experiments (``perf`` and
    ``refine``); each rewrites only its own section so either can run
    alone without clobbering the other's numbers.
    """
    from repro.bench.perf import DEFAULT_REPORT, SCHEMA_VERSION, write_report

    if path is None:
        path = DEFAULT_REPORT
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {}
    if not isinstance(report, dict):
        report = {}
    report["version"] = max(
        int(report.get("version", 0) or 0), SCHEMA_VERSION
    )
    report["refine"] = section
    return write_report(report, path)
