"""Complexity measurements backing §III-E of the paper.

Two sweeps:

* time vs. partition size ``L`` (grow the graph at fixed average degree) —
  the paper claims O(L^2 d^2) for the naive algorithm; our incremental
  implementation should scale *sub*-quadratically in L,
* peak local state vs. graph size — the space claim O(L d): local
  partitioning keeps one partition plus its frontier, not the whole graph.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.tlp import TLPPartitioner
from repro.graph.generators import holme_kim


@dataclass
class ScalingPoint:
    """One measurement of the time-scaling sweep."""

    num_vertices: int
    num_edges: int
    num_partitions: int
    seconds: float
    peak_kib: float


def time_scaling_sweep(
    sizes: Sequence[int] = (500, 1000, 2000, 4000),
    m_attach: int = 5,
    num_partitions: int = 8,
    seed: int = 0,
) -> List[ScalingPoint]:
    """TLP wall-clock and peak memory across growing graphs."""
    points: List[ScalingPoint] = []
    for n in sizes:
        graph = holme_kim(n, m_attach, 0.5, seed=seed)
        partitioner = TLPPartitioner(seed=seed)
        tracemalloc.start()
        start = time.perf_counter()
        partitioner.partition(graph, num_partitions)
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        points.append(
            ScalingPoint(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                num_partitions=num_partitions,
                seconds=seconds,
                peak_kib=peak / 1024.0,
            )
        )
    return points


def empirical_exponent(points: List[ScalingPoint]) -> float:
    """Least-squares log-log slope of time vs. edges (1.0 = linear)."""
    import math

    xs = [math.log(p.num_edges) for p in points]
    ys = [math.log(max(p.seconds, 1e-9)) for p in points]
    n = len(points)
    if n < 2:
        return float("nan")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var if var else float("nan")
