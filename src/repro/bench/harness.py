"""Experiment harness: run (dataset x algorithm x p) grids and collect metrics.

Every experiment in the paper's Section IV is a grid over the nine datasets,
a set of algorithms, and partition counts p in {10, 15, 20}; this module is
the shared runner, returning structured records that the table/figure
builders render.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.datasets.cache import load_cached
from repro.datasets.catalog import PAPER_DATASETS, DatasetSpec
from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.metrics import edge_balance, replication_factor
from repro.partitioning.registry import make_partitioner


@dataclass
class ExperimentResult:
    """One (dataset, algorithm, p) cell."""

    dataset: str
    algorithm: str
    num_partitions: int
    replication_factor: float
    edge_balance: float
    seconds: float
    extra: Dict[str, float] = field(default_factory=dict)


def run_single(
    graph: Graph,
    algorithm: str,
    num_partitions: int,
    seed: int = 0,
    dataset: str = "?",
    validate: bool = True,
) -> ExperimentResult:
    """Partition ``graph`` with ``algorithm`` and measure RF/balance/time."""
    partitioner = make_partitioner(algorithm, seed=seed)
    start = time.perf_counter()
    partition: EdgePartition = partitioner.partition(graph, num_partitions)
    seconds = time.perf_counter() - start
    if validate:
        partition.validate_against(graph)
    extra: Dict[str, float] = {}
    telemetry = getattr(partitioner, "last_telemetry", None)
    if telemetry is not None and telemetry.records:
        extra.update(telemetry.summary())
    return ExperimentResult(
        dataset=dataset,
        algorithm=algorithm,
        num_partitions=num_partitions,
        replication_factor=replication_factor(partition, graph),
        edge_balance=edge_balance(partition),
        seconds=seconds,
        extra=extra,
    )


def run_grid(
    graphs: Dict[str, Graph],
    algorithms: Sequence[str],
    partition_counts: Sequence[int],
    seed: int = 0,
    progress: Optional[callable] = None,
) -> List[ExperimentResult]:
    """The full grid; ``progress`` (if given) is called with each result."""
    results: List[ExperimentResult] = []
    for dataset, graph in graphs.items():
        for p in partition_counts:
            for algorithm in algorithms:
                result = run_single(graph, algorithm, p, seed=seed, dataset=dataset)
                results.append(result)
                if progress is not None:
                    progress(result)
    return results


def load_paper_graphs(
    scale: Optional[float] = None,
    seed: int = 0,
    keys: Optional[Iterable[str]] = None,
    bench: bool = False,
) -> Dict[str, Graph]:
    """The nine Table-III stand-ins, keyed G1..G9.

    ``scale=None`` uses each spec's own default (``bench_scale`` when
    ``bench``, else ``default_scale``); a float applies to all datasets.
    """
    wanted = set(keys) if keys is not None else None
    graphs: Dict[str, Graph] = {}
    for spec in PAPER_DATASETS:
        if wanted is not None and spec.key not in wanted:
            continue
        effective = scale
        if effective is None:
            effective = spec.bench_scale if bench else spec.default_scale
        graphs[spec.key] = load_cached(spec, scale=effective, seed=seed)
    return graphs


def results_by(
    results: Iterable[ExperimentResult],
) -> Dict[tuple, ExperimentResult]:
    """Index results by ``(dataset, algorithm, p)`` for table builders."""
    return {
        (r.dataset, r.algorithm, r.num_partitions): r for r in results
    }


def spec_for(dataset_key: str) -> DatasetSpec:
    """Catalog lookup re-exported for report builders."""
    from repro.datasets.catalog import dataset_by_key

    return dataset_by_key(dataset_key)
