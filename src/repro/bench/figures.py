"""Builders for the paper's figures (8, 9, 10, 11).

Each builder returns structured rows *and* a rendered text block, so the
pytest benchmarks can assert on the numbers while the CLI prints the same
artefact a reader would compare against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    ExperimentResult,
    load_paper_graphs,
    run_grid,
    run_single,
)
from repro.bench.report import render_bar, render_table
from repro.graph.graph import Graph
from repro.partitioning.registry import PAPER_ALGORITHMS

DEFAULT_P_VALUES = (10, 15, 20)
DEFAULT_R_VALUES = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass
class Fig8Data:
    """RF of every algorithm on every dataset for each p (Fig. 8 a-c)."""

    results: List[ExperimentResult]

    def rf(self, dataset: str, algorithm: str, p: int) -> float:
        for r in self.results:
            if (
                r.dataset == dataset
                and r.algorithm == algorithm
                and r.num_partitions == p
            ):
                return r.replication_factor
        raise KeyError((dataset, algorithm, p))

    def render(self, p: int, algorithms: Sequence[str] = PAPER_ALGORITHMS) -> str:
        datasets = sorted({r.dataset for r in self.results})
        headers = ["dataset"] + list(algorithms)
        rows = []
        for dataset in datasets:
            rows.append(
                [dataset] + [self.rf(dataset, a, p) for a in algorithms]
            )
        return render_table(headers, rows)


def fig8(
    graphs: Optional[Dict[str, Graph]] = None,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    p_values: Sequence[int] = DEFAULT_P_VALUES,
    seed: int = 0,
    scale: Optional[float] = None,
    bench: bool = False,
    progress=None,
) -> Fig8Data:
    """Reproduce Fig. 8: RF for TLP/METIS/LDG/DBH/Random, p in {10,15,20}."""
    if graphs is None:
        graphs = load_paper_graphs(scale=scale, seed=seed, bench=bench)
    results = run_grid(graphs, algorithms, p_values, seed=seed, progress=progress)
    return Fig8Data(results)


@dataclass
class TLPRSweep:
    """One dataset's TLP vs TLP_R sweep at a fixed p (one inset of Fig. 9-11)."""

    dataset: str
    num_partitions: int
    tlp_rf: float
    r_values: List[float]
    tlp_r_rf: List[float]

    def best_interior(self) -> float:
        """Best RF among 0 < R < 1."""
        interior = [
            rf
            for r, rf in zip(self.r_values, self.tlp_r_rf)
            if 0.0 < r < 1.0
        ]
        return min(interior) if interior else float("nan")

    def endpoint_worst(self) -> float:
        """Worse RF of the two one-stage endpoints R in {0, 1}."""
        endpoints = [
            rf
            for r, rf in zip(self.r_values, self.tlp_r_rf)
            if r in (0.0, 1.0)
        ]
        return max(endpoints) if endpoints else float("nan")

    def render(self) -> str:
        maximum = max(self.tlp_r_rf + [self.tlp_rf])
        lines = [f"{self.dataset}  p={self.num_partitions}  (RF, lower is better)"]
        for r, rf in zip(self.r_values, self.tlp_r_rf):
            lines.append(f"  R={r:3.1f}  RF={rf:7.3f}  {render_bar(rf, maximum)}")
        lines.append(f"  TLP    RF={self.tlp_rf:7.3f}  {render_bar(self.tlp_rf, maximum)}")
        return "\n".join(lines)


def tlp_r_sweep(
    graph: Graph,
    dataset: str,
    num_partitions: int,
    r_values: Sequence[float] = DEFAULT_R_VALUES,
    seed: int = 0,
) -> TLPRSweep:
    """One inset of Figs. 9-11: TLP plus TLP_R for each R on one graph."""
    tlp = run_single(graph, "TLP", num_partitions, seed=seed, dataset=dataset)
    rf_values: List[float] = []
    for r in r_values:
        result = run_single(
            graph, f"TLP_R:{r:g}", num_partitions, seed=seed, dataset=dataset
        )
        rf_values.append(result.replication_factor)
    return TLPRSweep(
        dataset=dataset,
        num_partitions=num_partitions,
        tlp_rf=tlp.replication_factor,
        r_values=list(r_values),
        tlp_r_rf=rf_values,
    )


def fig9_to_11(
    num_partitions: int,
    graphs: Optional[Dict[str, Graph]] = None,
    r_values: Sequence[float] = DEFAULT_R_VALUES,
    seed: int = 0,
    scale: Optional[float] = None,
    bench: bool = False,
) -> List[TLPRSweep]:
    """Fig. 9 (p=10), Fig. 10 (p=15) or Fig. 11 (p=20): all nine insets."""
    if graphs is None:
        graphs = load_paper_graphs(scale=scale, seed=seed, bench=bench)
    return [
        tlp_r_sweep(graph, dataset, num_partitions, r_values, seed=seed)
        for dataset, graph in graphs.items()
    ]
