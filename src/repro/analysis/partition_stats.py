"""Detailed per-partition diagnostics beyond the headline RF.

Used by examples and the extended benches to explain *why* a partitioning is
good: per-partition modularity (the paper's quality driver, Claim 1),
boundary sizes, and the distribution of work a distributed engine would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bench.report import render_table
from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.metrics import (
    external_incidences,
    partition_modularities,
    replication_factor,
)


@dataclass
class PartitionDetail:
    """Diagnostics for one partition ``P_k``."""

    partition: int
    edges: int
    vertices: int
    boundary_vertices: int
    internal_fraction: float
    modularity: float


def partition_details(partition: EdgePartition, graph: Graph) -> List[PartitionDetail]:
    """Per-partition breakdown of sizes, boundaries and modularity."""
    vertex_sets = partition.vertex_sets()
    modularities = partition_modularities(partition, graph)
    externals = external_incidences(partition, graph)
    details: List[PartitionDetail] = []
    for k in range(partition.num_partitions):
        vs = vertex_sets[k]
        internal = len(partition.edges_of(k))
        # Boundary vertex: has at least one incident edge outside P_k.
        boundary = sum(
            1
            for v in vs
            if graph.degree(v)
            > sum(1 for u in graph.neighbors(v) if _edge_in(partition, k, u, v))
        )
        degree_sum = 2 * internal + externals[k]
        details.append(
            PartitionDetail(
                partition=k,
                edges=internal,
                vertices=len(vs),
                boundary_vertices=boundary,
                internal_fraction=(2 * internal / degree_sum) if degree_sum else 1.0,
                modularity=modularities[k],
            )
        )
    return details


def _edge_in(partition: EdgePartition, k: int, u: int, v: int) -> bool:
    mapping = partition.edge_to_partition()
    edge = (u, v) if u < v else (v, u)
    return mapping.get(edge) == k


def describe_partition(partition: EdgePartition, graph: Graph) -> str:
    """Human-readable report over all partitions."""
    details = partition_details(partition, graph)
    rows = [
        [
            d.partition,
            d.edges,
            d.vertices,
            d.boundary_vertices,
            d.internal_fraction,
            "inf" if d.modularity == float("inf") else f"{d.modularity:.3f}",
        ]
        for d in details
    ]
    header = (
        f"RF = {replication_factor(partition, graph):.4f} over "
        f"{partition.num_partitions} partitions\n"
    )
    return header + render_table(
        ["k", "edges", "vertices", "boundary", "internal frac", "modularity"], rows
    )
