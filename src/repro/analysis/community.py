"""Community-recovery scoring for partitions.

Local edge partitioning implicitly performs community detection (the paper
borrows its machinery from that literature), so a natural diagnostic is: on
a graph with *planted* communities, how well do the partitions recover them?
We derive a vertex assignment from an edge partition (each vertex goes to
its master partition — the one holding most of its edges) and score it with
normalised mutual information (NMI) against the ground truth.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence

from repro.partitioning.assignment import EdgePartition
from repro.runtime.replication import ReplicationTable


def vertex_assignment_from_partition(partition: EdgePartition) -> Dict[int, int]:
    """Each covered vertex -> its master partition (most incident edges)."""
    return dict(ReplicationTable(partition).master)


def mutual_information(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """MI (nats) between two parallel label sequences."""
    if len(labels_a) != len(labels_b):
        raise ValueError("label sequences must be parallel")
    n = len(labels_a)
    if n == 0:
        return 0.0
    joint = Counter(zip(labels_a, labels_b))
    count_a = Counter(labels_a)
    count_b = Counter(labels_b)
    mi = 0.0
    for (a, b), n_ab in joint.items():
        p_ab = n_ab / n
        mi += p_ab * math.log(p_ab * n * n / (count_a[a] * count_b[b]))
    return max(0.0, mi)


def entropy(labels: Sequence[int]) -> float:
    """Shannon entropy (nats) of a label sequence."""
    n = len(labels)
    if n == 0:
        return 0.0
    return -sum(
        (c / n) * math.log(c / n) for c in Counter(labels).values()
    )


def normalized_mutual_information(
    labels_a: Sequence[int], labels_b: Sequence[int]
) -> float:
    """NMI in [0, 1] with the arithmetic-mean normaliser."""
    h_a = entropy(labels_a)
    h_b = entropy(labels_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both trivial labelings agree vacuously
    denom = (h_a + h_b) / 2.0
    if denom == 0.0:
        return 0.0
    return min(1.0, mutual_information(labels_a, labels_b) / denom)


def community_recovery_score(
    partition: EdgePartition, ground_truth: Dict[int, int]
) -> float:
    """NMI between the partition's vertex assignment and planted communities.

    Vertices absent from the partition (isolated) are ignored.
    """
    assignment = vertex_assignment_from_partition(partition)
    common = [v for v in assignment if v in ground_truth]
    if not common:
        return 0.0
    return normalized_mutual_information(
        [assignment[v] for v in common], [ground_truth[v] for v in common]
    )
