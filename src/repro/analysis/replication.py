"""Replication-structure analysis.

The degree-based baselines (DBH, HDRF) are built on the observation that
*which* vertices get replicated matters: replicating a hub once saves many
edge placements.  These diagnostics expose that structure for any partition:
the replica histogram, and the degree/replication correlation that Table VI
indirectly measures for TLP's two stages.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition


def replica_histogram(partition: EdgePartition) -> Dict[int, int]:
    """Map ``replica count -> number of vertices with that count``."""
    counts: Counter = Counter()
    for vs in partition.vertex_sets():
        for v in vs:
            counts[v] += 1
    return dict(Counter(counts.values()))


def replicas_by_vertex(partition: EdgePartition) -> Dict[int, int]:
    """Map ``vertex -> replica count`` (covered vertices only)."""
    counts: Counter = Counter()
    for vs in partition.vertex_sets():
        for v in vs:
            counts[v] += 1
    return dict(counts)


def degree_replication_correlation(
    partition: EdgePartition, graph: Graph
) -> float:
    """Pearson correlation between vertex degree and replica count.

    Positive for every sensible edge partitioner (hubs span more
    partitions); strongly positive for DBH/HDRF by design.  Returns 0.0
    when either variable is constant.
    """
    replicas = replicas_by_vertex(partition)
    if not replicas:
        return 0.0
    pairs = [(graph.degree(v), r) for v, r in replicas.items()]
    n = len(pairs)
    mean_d = sum(d for d, _ in pairs) / n
    mean_r = sum(r for _, r in pairs) / n
    cov = sum((d - mean_d) * (r - mean_r) for d, r in pairs)
    var_d = sum((d - mean_d) ** 2 for d, _ in pairs)
    var_r = sum((r - mean_r) ** 2 for _, r in pairs)
    if var_d == 0 or var_r == 0:
        return 0.0
    return cov / math.sqrt(var_d * var_r)


@dataclass
class ReplicationProfile:
    """Summary of who gets replicated."""

    max_replicas: int
    mean_replicas: float
    replicated_fraction: float
    degree_correlation: float
    histogram: Dict[int, int]


def replication_profile(partition: EdgePartition, graph: Graph) -> ReplicationProfile:
    """One-call summary of the replication structure."""
    replicas = replicas_by_vertex(partition)
    if not replicas:
        return ReplicationProfile(0, 0.0, 0.0, 0.0, {})
    values: List[int] = list(replicas.values())
    return ReplicationProfile(
        max_replicas=max(values),
        mean_replicas=sum(values) / len(values),
        replicated_fraction=sum(1 for r in values if r > 1) / len(values),
        degree_correlation=degree_replication_correlation(partition, graph),
        histogram=dict(Counter(values)),
    )
