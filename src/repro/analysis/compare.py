"""Side-by-side comparison of multiple partitionings of one graph.

The pattern "partition with N algorithms, rank by RF, show balance and
timing" recurs in the examples, the CLI and the benches; this module is the
single implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.report import render_table
from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.metrics import (
    edge_balance,
    replication_factor,
    spanned_vertex_count,
)
from repro.partitioning.registry import make_partitioner


@dataclass
class ComparisonRow:
    """One algorithm's results on the comparison workload."""

    algorithm: str
    replication_factor: float
    edge_balance: float
    spanned_vertices: int
    seconds: float
    partition: Optional[EdgePartition] = None


def compare_algorithms(
    graph: Graph,
    algorithms: Sequence[str],
    num_partitions: int,
    seed: int = 0,
    keep_partitions: bool = False,
) -> List[ComparisonRow]:
    """Run every named algorithm; rows sorted by RF ascending."""
    rows: List[ComparisonRow] = []
    for name in algorithms:
        partitioner = make_partitioner(name, seed=seed)
        start = time.perf_counter()
        partition = partitioner.partition(graph, num_partitions)
        seconds = time.perf_counter() - start
        partition.validate_against(graph)
        rows.append(
            ComparisonRow(
                algorithm=name,
                replication_factor=replication_factor(partition, graph),
                edge_balance=edge_balance(partition),
                spanned_vertices=spanned_vertex_count(partition),
                seconds=seconds,
                partition=partition if keep_partitions else None,
            )
        )
    rows.sort(key=lambda row: row.replication_factor)
    return rows


def render_comparison(rows: List[ComparisonRow]) -> str:
    """Aligned table of a comparison run."""
    return render_table(
        ["algorithm", "RF", "balance", "spanned", "seconds"],
        [
            [r.algorithm, r.replication_factor, r.edge_balance, r.spanned_vertices, r.seconds]
            for r in rows
        ],
    )


def best_algorithm(rows: List[ComparisonRow]) -> str:
    """Name of the lowest-RF row (rows must be non-empty)."""
    if not rows:
        raise ValueError("no comparison rows")
    return rows[0].algorithm


def rf_table(rows: List[ComparisonRow]) -> Dict[str, float]:
    """``algorithm -> RF`` mapping."""
    return {row.algorithm: row.replication_factor for row in rows}
