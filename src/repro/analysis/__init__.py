"""Partition analysis: per-partition diagnostics, community recovery,
replication structure."""

from repro.analysis.compare import (
    ComparisonRow,
    best_algorithm,
    compare_algorithms,
    render_comparison,
    rf_table,
)
from repro.analysis.community import (
    community_recovery_score,
    entropy,
    mutual_information,
    normalized_mutual_information,
    vertex_assignment_from_partition,
)
from repro.analysis.partition_stats import (
    PartitionDetail,
    describe_partition,
    partition_details,
)
from repro.analysis.replication import (
    ReplicationProfile,
    degree_replication_correlation,
    replica_histogram,
    replicas_by_vertex,
    replication_profile,
)

__all__ = [
    "ComparisonRow",
    "best_algorithm",
    "compare_algorithms",
    "render_comparison",
    "rf_table",
    "community_recovery_score",
    "entropy",
    "mutual_information",
    "normalized_mutual_information",
    "vertex_assignment_from_partition",
    "PartitionDetail",
    "describe_partition",
    "partition_details",
    "ReplicationProfile",
    "degree_replication_correlation",
    "replica_histogram",
    "replicas_by_vertex",
    "replication_profile",
]
