"""Small argument-validation helpers used across the library.

All raise ``ValueError`` with a message naming the offending parameter, so
user errors surface at API boundaries rather than deep inside algorithms.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0 <= value <= 1:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in_range(name: str, value: Number, low: Number, high: Number) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
