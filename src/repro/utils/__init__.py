"""Shared utilities: seeded randomness, argument validation, timing."""

from repro.utils.rng import SeedSequence, make_rng, spawn_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "SeedSequence",
    "make_rng",
    "spawn_rng",
    "Stopwatch",
    "timed",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
