"""Lightweight wall-clock instrumentation for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


class Stopwatch:
    """Accumulates named wall-clock timings.

    >>> watch = Stopwatch()
    >>> with watch.measure("phase"):
    ...     pass
    >>> watch.total("phase") >= 0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager that adds the elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never measured)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of measurements taken under ``name``."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all totals."""
        return dict(self._totals)


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
