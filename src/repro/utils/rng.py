"""Deterministic random-number helpers.

Every stochastic component in this library accepts a ``seed`` argument and
derives its randomness through :func:`make_rng`, so that a single integer
reproduces an entire experiment.  Sub-streams for independent components are
derived with :func:`spawn_rng` rather than by arithmetic on the seed, which
avoids accidental stream correlation.
"""

from __future__ import annotations

import random
from typing import Optional, Union

Seed = Union[int, random.Random, None]


class SeedSequence:
    """A fork-able source of independent ``random.Random`` streams.

    Mirrors (in miniature) ``numpy.random.SeedSequence``: every call to
    :meth:`spawn` returns a new, statistically independent generator, and
    the sequence of spawned generators is itself a pure function of the
    root seed.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = random.Random(seed)
        self._counter = 0

    def spawn(self) -> random.Random:
        """Return a fresh generator seeded from this sequence."""
        self._counter += 1
        return random.Random(self._root.getrandbits(64) ^ self._counter)

    @property
    def spawn_count(self) -> int:
        """Number of generators spawned so far."""
        return self._counter


def make_rng(seed: Seed = None) -> random.Random:
    """Coerce ``seed`` into a ``random.Random`` instance.

    Accepts ``None`` (OS entropy), an ``int``, or an existing generator
    (returned unchanged, so callers can thread one generator through a
    pipeline).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``."""
    return random.Random(rng.getrandbits(64))
