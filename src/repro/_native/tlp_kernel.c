/* TLP grow-episode kernel: the whole inner loop of one local-partitioning
 * episode (seed -> select -> allocate -> repeat) over the CSR residual
 * arrays, with zero Python transitions per selection.
 *
 * Semantics are bit-for-bit identical to the reference backend
 * (repro/core/state.py, repro/core/frontier.py):
 *
 *   - selection tie-breaks: max primary, then max secondary, then min
 *     vertex (dense indices order like original ids by construction);
 *   - Stage-II score (internal+c)/(external+r-2c) computed in IEEE double
 *     with the same operand order as the numpy expression, +inf when the
 *     denominator is non-positive;
 *   - Stage-I similarity |N(u) ∩ N(j)| / |N(j)| via a two-pointer merge
 *     over sorted CSR rows, lazily flushed exactly when Stage I selects
 *     (early flushes on buffer pressure are score-neutral: a non-member's
 *     live row is constant within a round, and updates to vertices that
 *     later join are discarded with their frontier slot);
 *   - capacity truncation cuts the sorted member-neighbour batch, leaving
 *     frontier/membership untouched, ending the episode.
 *
 * All state lives in caller-owned buffers described by GrowState; the
 * kernel never allocates.  Every scalar field is 8 bytes so the struct
 * layout is unambiguous across the ctypes boundary.
 */

#include <stdint.h>
#include <math.h>

/* Non-negative doubles (all our scores) order like their int64 bit
 * patterns, so every argmax below is a branch-free masked integer
 * reduction the compiler can vectorise without fast-math. */

typedef struct {
    /* static CSR graph (dense index space), shared with CSRResidual */
    int64_t n;
    const int64_t *indptr;
    const int64_t *indices;
    const int64_t *twin;
    uint8_t *alive;          /* per directed slot; both twins flip together */
    int64_t *live_deg;
    int64_t num_live;        /* residual undirected edge count */

    /* frontier: compact parallel arrays + dense position index */
    int64_t *f_ids;
    double  *f_c;            /* exact small integers, stored as doubles so
                              * the Stage-II scan vectorises without
                              * int64->double converts */
    double  *f_r;
    double  *f_mu1;
    double  *f_score;        /* Stage-II scratch, recomputed per selection */
    int64_t *f_pos;          /* size n; -1 = not in frontier */
    int64_t f_size;

    uint8_t *member;         /* size n */

    /* pending Stage-I batches: (member, snapshot range in pend_snap) */
    int64_t *pend_v;
    int64_t *pend_s;
    int64_t *pend_e;
    int64_t pend_count;
    int64_t pend_cap;
    int64_t *pend_snap;      /* flat round-start live-row snapshots */
    int64_t pend_len;
    int64_t pend_buf_cap;

    /* outputs, reset per round by the caller */
    int64_t *edge_u;         /* canonical (min, max) pairs, index space */
    int64_t *edge_v;
    int64_t edge_count;
    int64_t *sel_idx;        /* per-selection telemetry */
    int64_t *sel_stage;
    int64_t *sel_alloc;
    int64_t *sel_ldeg;       /* live degree after the add */
    int64_t *sel_state;      /* internal + frontier size after the add */
    int64_t sel_count;

    /* config */
    int64_t capacity;
    int64_t strict;
    int64_t policy;          /* 0=modularity, 1=edge-count ratio, 2=fixed I, 3=fixed II */
    double ratio;
    int64_t scope_original;

    /* round totals */
    int64_t internal_;
    int64_t external_;
} GrowState;

enum { REASON_CAPACITY = 0, REASON_EMPTY = 1, REASON_TRUNCATED = 2 };

/* -- Stage-I similarity ---------------------------------------------------- */

static void flush_stage1(GrowState *st)
{
    for (int64_t pi = 0; pi < st->pend_count; pi++) {
        int64_t j = st->pend_v[pi];
        int64_t snap_s = st->pend_s[pi], snap_e = st->pend_e[pi];
        const int64_t *nbrs_j;
        int64_t deg_j;
        if (st->scope_original) {
            nbrs_j = st->indices + st->indptr[j];
            deg_j = st->indptr[j + 1] - st->indptr[j];
        } else {
            nbrs_j = st->pend_snap + snap_s;
            deg_j = snap_e - snap_s;
        }
        if (deg_j == 0)
            continue;
        for (int64_t t = snap_s; t < snap_e; t++) {
            int64_t u = st->pend_snap[t];
            if (st->member[u])
                continue;
            int64_t p = st->f_pos[u];
            if (p < 0)
                continue;
            /* |N(u) ∩ N(j)|: merge u's (live) row with j's snapshot row */
            int64_t count = 0;
            int64_t a = st->indptr[u], ue = st->indptr[u + 1], b = 0;
            if (st->scope_original) {
                while (a < ue && b < deg_j) {
                    int64_t x = st->indices[a], y = nbrs_j[b];
                    if (x < y) a++;
                    else if (x > y) b++;
                    else { count++; a++; b++; }
                }
            } else {
                while (a < ue && b < deg_j) {
                    if (!st->alive[a]) { a++; continue; }
                    int64_t x = st->indices[a], y = nbrs_j[b];
                    if (x < y) a++;
                    else if (x > y) b++;
                    else { count++; a++; b++; }
                }
            }
            double val = (double)count / (double)deg_j;
            if (val > st->f_mu1[p])
                st->f_mu1[p] = val;
        }
    }
    st->pend_count = 0;
    st->pend_len = 0;
}

/* -- frontier primitives --------------------------------------------------- */

static inline void touch_inc(GrowState *st, int64_t u)
{
    int64_t p = st->f_pos[u];
    if (p >= 0) {
        st->f_c[p] += 1.0;
        return;
    }
    p = st->f_size++;
    st->f_ids[p] = u;
    st->f_c[p] = 1.0;
    st->f_r[p] = (double)st->live_deg[u];
    st->f_mu1[p] = 0.0;
    st->f_pos[u] = p;
}

static inline void frontier_remove(GrowState *st, int64_t u)
{
    int64_t p = st->f_pos[u];
    if (p < 0)
        return;
    int64_t last = st->f_size - 1;
    if (p != last) {
        st->f_ids[p] = st->f_ids[last];
        st->f_c[p] = st->f_c[last];
        st->f_r[p] = st->f_r[last];
        st->f_mu1[p] = st->f_mu1[last];
        st->f_pos[st->f_ids[p]] = p;
    }
    st->f_pos[u] = -1;
    st->f_size = last;
}

/* -- selection ------------------------------------------------------------- */

static int64_t select_stage1(GrowState *st)
{
    flush_stage1(st);
    int64_t n = st->f_size;
    const int64_t *mu = (const int64_t *)st->f_mu1;
    const int64_t *r = (const int64_t *)st->f_r;
    const int64_t *ids = st->f_ids;
    /* max mu1; among ties max r; among those min vertex — three masked
     * reductions, identical tie-breaks to Frontier.select_stage1. */
    int64_t bmu = mu[0];
    for (int64_t i = 1; i < n; i++)
        if (mu[i] > bmu)
            bmu = mu[i];
    /* Masked reductions use all-ones/zero masks (AND for max over
     * non-negative values, OR for min) — the select form defeats the
     * vectoriser, this form does not. */
    uint64_t br = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t mask = (uint64_t)0 - (uint64_t)(mu[i] == bmu);
        uint64_t rv = (uint64_t)r[i] & mask;
        br = rv > br ? rv : br;
    }
    uint64_t bid = UINT64_MAX;
    for (int64_t i = 0; i < n; i++) {
        uint64_t mask =
            (uint64_t)0 - (uint64_t)((mu[i] == bmu) & ((uint64_t)r[i] == br));
        uint64_t idv = (uint64_t)ids[i] | ~mask;
        bid = idv < bid ? idv : bid;
    }
    return (int64_t)bid;
}

static int64_t select_stage2(GrowState *st)
{
    int64_t n = st->f_size;
    const double *fc = st->f_c, *fr = st->f_r;
    double *score = st->f_score;
    double internal = (double)st->internal_;
    double external = (double)st->external_;
    /* Pass 1: branch-free score fill — pure double arithmetic so the
     * divisions vectorise, which is where the selection's time goes. */
    for (int64_t i = 0; i < n; i++) {
        double num = internal + fc[i];
        double den = external + (fr[i] - 2.0 * fc[i]);
        double s = num / den;
        score[i] = den > 0.0 ? s : INFINITY;
    }
    /* Pass 2: max score.  Every score is positive (or +inf), so its bit
     * pattern orders like the double and an integer max-reduction
     * vectorises without fast-math. */
    const int64_t *bits = (const int64_t *)score;
    int64_t bmax = bits[0];
    for (int64_t i = 1; i < n; i++)
        if (bits[i] > bmax)
            bmax = bits[i];
    /* Passes 3-4: among exact-max scores, max c then min vertex (same
     * masked-reduction shape as Stage I; c bits are positive doubles). */
    const int64_t *cb = (const int64_t *)fc;
    const int64_t *ids = st->f_ids;
    uint64_t bc = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t mask = (uint64_t)0 - (uint64_t)(bits[i] == bmax);
        uint64_t cv = (uint64_t)cb[i] & mask;
        bc = cv > bc ? cv : bc;
    }
    uint64_t bid = UINT64_MAX;
    for (int64_t i = 0; i < n; i++) {
        uint64_t mask =
            (uint64_t)0 - (uint64_t)((bits[i] == bmax) & ((uint64_t)cb[i] == bc));
        uint64_t idv = (uint64_t)ids[i] | ~mask;
        bid = idv < bid ? idv : bid;
    }
    return (int64_t)bid;
}

static inline int64_t pick_stage(GrowState *st)
{
    switch (st->policy) {
    case 0:
        return st->internal_ <= st->external_ ? 1 : 2;
    case 1:
        return (double)st->internal_ < st->ratio * (double)st->capacity ? 1 : 2;
    case 2:
        return 1;
    default:
        return 2;
    }
}

/* -- growth ---------------------------------------------------------------- */

static inline void ensure_pending_room(GrowState *st, int64_t rowlen)
{
    if (st->pend_count >= st->pend_cap ||
        st->pend_len + rowlen > st->pend_buf_cap)
        flush_stage1(st);
}

static void seed_vertex(GrowState *st, int64_t i)
{
    ensure_pending_room(st, st->indptr[i + 1] - st->indptr[i]);
    int64_t snap_start = st->pend_len;
    st->member[i] = 1;
    for (int64_t x = st->indptr[i]; x < st->indptr[i + 1]; x++) {
        if (!st->alive[x])
            continue;
        int64_t u = st->indices[x];
        st->pend_snap[st->pend_len++] = u;
        touch_inc(st, u);
    }
    st->external_ += st->pend_len - snap_start;
    int64_t pc = st->pend_count++;
    st->pend_v[pc] = i;
    st->pend_s[pc] = snap_start;
    st->pend_e[pc] = st->pend_len;
}

/* Returns 1 if the batch was capacity-truncated (ends the episode). */
static int add_vertex(GrowState *st, int64_t i, int64_t max_edges,
                      int64_t *allocated_out)
{
    ensure_pending_room(st, st->indptr[i + 1] - st->indptr[i]);
    int64_t snap_start = st->pend_len;
    int64_t alloc = 0, outside = 0;
    int truncated = 0;
    /* Single sorted scan: the snapshot records the full pre-kill live row
     * (member neighbours included — flush classifies members at *flush*
     * time), member edges are allocated in ascending-id order (canonical
     * truncation), outside neighbours enter the frontier. */
    for (int64_t x = st->indptr[i]; x < st->indptr[i + 1]; x++) {
        if (!st->alive[x])
            continue;
        int64_t u = st->indices[x];
        if (st->member[u]) {
            if (max_edges >= 0 && alloc >= max_edges) {
                truncated = 1;
                break;
            }
            /* allocate edge {i, u}: kill both directed slots */
            st->alive[x] = 0;
            st->alive[st->twin[x]] = 0;
            st->live_deg[i]--;
            st->live_deg[u]--;
            st->num_live--;
            int64_t e = st->edge_count++;
            st->edge_u[e] = u < i ? u : i;
            st->edge_v[e] = u < i ? i : u;
            alloc++;
        } else {
            outside++;
        }
        st->pend_snap[st->pend_len++] = u;
    }
    st->internal_ += alloc;
    st->external_ -= alloc;
    *allocated_out = alloc;
    if (truncated) {
        st->pend_len = snap_start;   /* roll back: no membership, no snapshot */
        return 1;
    }
    st->member[i] = 1;
    frontier_remove(st, i);
    for (int64_t t = snap_start; t < st->pend_len; t++) {
        int64_t u = st->pend_snap[t];
        if (!st->member[u])
            touch_inc(st, u);
    }
    st->external_ += outside;
    int64_t pc = st->pend_count++;
    st->pend_v[pc] = i;
    st->pend_s[pc] = snap_start;
    st->pend_e[pc] = st->pend_len;
    return 0;
}

int64_t tlp_grow_episode(GrowState *st, int64_t seed_idx)
{
    seed_vertex(st, seed_idx);
    for (;;) {
        if (st->internal_ >= st->capacity)
            return REASON_CAPACITY;
        if (st->f_size == 0)
            return REASON_EMPTY;
        int64_t stage = pick_stage(st);
        int64_t vi = stage == 1 ? select_stage1(st) : select_stage2(st);
        int64_t max_edges = st->strict ? st->capacity - st->internal_ : -1;
        int64_t alloc = 0;
        int truncated = add_vertex(st, vi, max_edges, &alloc);
        int64_t s = st->sel_count++;
        st->sel_idx[s] = vi;
        st->sel_stage[s] = stage;
        st->sel_alloc[s] = alloc;
        st->sel_ldeg[s] = st->live_deg[vi];
        st->sel_state[s] = st->internal_ + st->f_size;
        if (truncated)
            return REASON_TRUNCATED;
    }
}
