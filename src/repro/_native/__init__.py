"""Optional compiled kernel for the TLP hot loop.

The C source (``tlp_kernel.c``) ships with the package and is compiled
lazily, once, with whatever ``cc``/``gcc`` the host provides — no build
step, no new dependency.  The shared object is cached outside the source
tree keyed by a hash of the source, so editing the kernel invalidates the
cache automatically.  Every failure mode (no compiler, sandboxed tmp,
load error) degrades silently to ``None`` and the callers fall back to
the pure-numpy CSR path, which is bit-for-bit equivalent.

Set ``REPRO_NO_NATIVE=1`` to force the numpy fallback (used by the test
suite to cover both paths), ``REPRO_NATIVE_CACHE`` to move the build
cache.

**Threading.** The kernel is loaded with :class:`ctypes.CDLL`, so every
``tlp_grow_episode`` call releases the GIL for its whole duration —
growth jobs fanned out by :func:`repro.core.parallel.partition_many`
overlap their episodes on separate cores.  The kernel itself keeps no
global state: everything it reads or writes lives in the
:class:`GrowState` struct it is handed, so concurrent calls are safe as
long as each thread passes its own state (each
:class:`~repro.core.native_grow.NativeRunner` owns one).  Never share a
``GrowState`` (or its backing ``NativeRunner`` buffers) between threads.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

_SOURCE = os.path.join(os.path.dirname(__file__), "tlp_kernel.c")

_lock = threading.Lock()
_kernel: Optional[ctypes.CDLL] = None
_attempted = False
_failure: Optional[str] = None


class GrowState(ctypes.Structure):
    """Mirror of the ``GrowState`` struct in ``tlp_kernel.c``.

    Field order and widths must match the C definition exactly; every
    scalar is 8 bytes so there is no padding ambiguity.
    """

    _fields_ = [
        # static CSR graph
        ("n", ctypes.c_int64),
        ("indptr", ctypes.POINTER(ctypes.c_int64)),
        ("indices", ctypes.POINTER(ctypes.c_int64)),
        ("twin", ctypes.POINTER(ctypes.c_int64)),
        ("alive", ctypes.POINTER(ctypes.c_uint8)),
        ("live_deg", ctypes.POINTER(ctypes.c_int64)),
        ("num_live", ctypes.c_int64),
        # frontier
        ("f_ids", ctypes.POINTER(ctypes.c_int64)),
        ("f_c", ctypes.POINTER(ctypes.c_double)),
        ("f_r", ctypes.POINTER(ctypes.c_double)),
        ("f_mu1", ctypes.POINTER(ctypes.c_double)),
        ("f_score", ctypes.POINTER(ctypes.c_double)),
        ("f_pos", ctypes.POINTER(ctypes.c_int64)),
        ("f_size", ctypes.c_int64),
        ("member", ctypes.POINTER(ctypes.c_uint8)),
        # pending Stage-I batches
        ("pend_v", ctypes.POINTER(ctypes.c_int64)),
        ("pend_s", ctypes.POINTER(ctypes.c_int64)),
        ("pend_e", ctypes.POINTER(ctypes.c_int64)),
        ("pend_count", ctypes.c_int64),
        ("pend_cap", ctypes.c_int64),
        ("pend_snap", ctypes.POINTER(ctypes.c_int64)),
        ("pend_len", ctypes.c_int64),
        ("pend_buf_cap", ctypes.c_int64),
        # outputs
        ("edge_u", ctypes.POINTER(ctypes.c_int64)),
        ("edge_v", ctypes.POINTER(ctypes.c_int64)),
        ("edge_count", ctypes.c_int64),
        ("sel_idx", ctypes.POINTER(ctypes.c_int64)),
        ("sel_stage", ctypes.POINTER(ctypes.c_int64)),
        ("sel_alloc", ctypes.POINTER(ctypes.c_int64)),
        ("sel_ldeg", ctypes.POINTER(ctypes.c_int64)),
        ("sel_state", ctypes.POINTER(ctypes.c_int64)),
        ("sel_count", ctypes.c_int64),
        # config
        ("capacity", ctypes.c_int64),
        ("strict", ctypes.c_int64),
        ("policy", ctypes.c_int64),
        ("ratio", ctypes.c_double),
        ("scope_original", ctypes.c_int64),
        # round totals
        ("internal_", ctypes.c_int64),
        ("external_", ctypes.c_int64),
    ]


#: Episode end reasons returned by ``tlp_grow_episode``.
REASON_CAPACITY = 0
REASON_EMPTY = 1
REASON_TRUNCATED = 2


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "repro-native")


def _find_compiler() -> Optional[str]:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


#: Tried in order; ``-march=native`` unlocks wide SIMD on the selection
#: scans but is not accepted by every toolchain/arch combination.
_FLAG_SETS = (
    ["-O3", "-march=native", "-fno-strict-aliasing", "-shared", "-fPIC"],
    ["-O3", "-fno-strict-aliasing", "-shared", "-fPIC"],
)


def _compile_once(cc: str, flags: list, source: bytes) -> str:
    """Compile with ``flags`` into the cache; returns the .so path."""
    key = hashlib.sha256(source + repr(flags).encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"tlp_kernel_{key}.so")
    if os.path.exists(so_path):
        return so_path
    os.makedirs(cache, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            [cc, *flags, "-o", tmp, _SOURCE],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path


def _compile_and_load() -> ctypes.CDLL:
    with open(_SOURCE, "rb") as fh:
        source = fh.read()
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    last_error: Optional[Exception] = None
    for flags in _FLAG_SETS:
        try:
            so_path = _compile_once(cc, flags, source)
            break
        except Exception as exc:
            last_error = exc
    else:
        raise RuntimeError(f"kernel compilation failed: {last_error}")
    lib = ctypes.CDLL(so_path)
    lib.tlp_grow_episode.argtypes = [ctypes.POINTER(GrowState), ctypes.c_int64]
    lib.tlp_grow_episode.restype = ctypes.c_int64
    return lib


def load_kernel(require: bool = False) -> Optional[ctypes.CDLL]:
    """The compiled kernel, or ``None`` when it cannot be built.

    The first call pays the (cached) compile; later calls are a dict hit.
    With ``require=True`` a build failure raises instead of returning
    ``None``.
    """
    global _kernel, _attempted, _failure
    if os.environ.get("REPRO_NO_NATIVE"):
        if require:
            raise RuntimeError("native kernel disabled by REPRO_NO_NATIVE")
        return None
    with _lock:
        if not _attempted:
            _attempted = True
            try:
                _kernel = _compile_and_load()
            except Exception as exc:  # degrade to the numpy path
                _kernel = None
                _failure = f"{type(exc).__name__}: {exc}"
        if _kernel is None and require:
            raise RuntimeError(f"native kernel unavailable ({_failure})")
        return _kernel
