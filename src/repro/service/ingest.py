"""The write path: WAL-backed edge mutations over the immutable stores.

The serving bundles (:mod:`repro.service.store`) are immutable by
design — that is what makes them shareable, mmap-able, and hot-swappable.
This module layers mutability on top without giving any of that up:

* :class:`DeltaOverlay` wraps a base :class:`PartitionStore` (dict or
  CSR backend alike) and records edge inserts/deletes plus the implied
  vertex-replica and master changes.  Every read query merges base +
  delta, and the summary stats — ``replication_factor()``,
  ``partition_sizes()``, ``partition_stats()`` — stay **exact**, not
  approximations: the overlay maintains the same integer numerator and
  denominator a from-scratch rebuild would produce, so the RF float is
  bit-identical to recomputing from the materialised partition.
* Placement reuses the streaming heuristics the repo already ships:
  :func:`place_hdrf` (Petroni et al.) and :func:`place_greedy`
  (PowerGraph Oblivious), restricted to partitions under the capacity
  bound ``C`` and made deterministic (ties break to the lowest id) so a
  WAL replay reproduces the exact same placements.
* :class:`Ingestor` owns the mutation protocol: validate → append to
  the :class:`~repro.service.wal.WriteAheadLog` → apply to the overlay
  (WAL-before-apply, so a crash never acknowledges a lost mutation),
  with client-sequence deduplication for idempotent retries, and
  **compaction**: fold the overlay into a fresh bundle via
  ``save_partition``, reset the WAL, and epoch-swap it in through the
  PR 3 :class:`~repro.service.store.StoreManager` without dropping
  in-flight queries.

Consistency model (documented for operators in docs/SERVING.md): reads
are snapshot-consistent per batch — the handler keys batches by
``(epoch, delta_version)`` so one batch observes one delta version —
and mutations are serial (the asyncio server applies them one at a
time on the event loop; there is no cross-mutation interleaving).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.parallel import parallel_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partitioning.refine import RefineStats
from repro.graph.graph import Edge, normalize_edge
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.scoring import balance_offsets, greedy_choice, hdrf_ties
from repro.service.store import (
    NeighborRow,
    PartitionStore,
    Route,
    StoreManager,
)
from repro.service.wal import WriteAheadLog

PathLike = Union[str, Path]

#: Default WAL file name inside a bundle directory.
WAL_NAME = "ingest.wal"

#: Accepted values for the ``policy=`` option of :class:`Ingestor`.
PLACEMENT_POLICIES = ("hdrf", "greedy")


class IngestError(RuntimeError):
    """Base class for mutation failures."""


class ConflictError(IngestError):
    """The mutation contradicts current state (duplicate insert, double delete)."""


class CapacityError(IngestError):
    """Every partition is at the capacity bound; compact or repartition."""


class IngestFrozen(IngestError):
    """Mutations are paused while a compaction folds the overlay (retryable)."""


# -- the overlay -------------------------------------------------------------


class DeltaOverlay(PartitionStore):
    """Base store + mutation delta, answering every store query exactly.

    The overlay keeps the base untouched and tracks, per partition, the
    inserted edges, the deleted base edges, and — per *touched* vertex —
    the effective local degree in every partition plus the current
    master.  Untouched vertices fall through to the base store, so read
    cost only grows with the mutation set, not the graph.

    Aggregates are maintained incrementally as plain integers
    (``covered`` vertices and ``total replicas``), which makes
    :meth:`replication_factor` bit-identical to recomputing from
    :meth:`to_partition` — the acceptance criterion the property tests
    pin down.

    Thread-model: mutations only ever run on the event loop (or the
    single test thread); read queries never write overlay state, so a
    compaction may safely fold :meth:`to_partition` in an executor
    thread while reads continue.
    """

    def __init__(self, base: PartitionStore) -> None:
        # Deliberately does not chain to PartitionStore.__init__: the
        # overlay adopts the base store instead of building tables.
        self._base = base
        self.metadata = base.metadata
        self.epoch = base.epoch
        p = base.num_partitions
        #: Owner of every overlay-inserted edge.
        self._ins_owner: Dict[Edge, int] = {}
        #: Base owner of every deleted base edge.
        self._del_owner: Dict[Edge, int] = {}
        # Per-partition adjacency deltas: added / removed neighbour sets.
        self._adj_ins: List[Dict[int, Set[int]]] = [{} for _ in range(p)]
        self._adj_del: List[Dict[int, Set[int]]] = [{} for _ in range(p)]
        # Per-partition aggregate deltas vs. the base store.
        self._size_delta: List[int] = [0] * p
        self._vertex_delta: List[int] = [0] * p
        self._master_delta: List[int] = [0] * p
        #: Effective local degree per touched vertex ({} = now uncovered).
        self._deg: Dict[int, Dict[int, int]] = {}
        #: Current master per touched vertex (None = uncovered).
        self._master: Dict[int, Optional[int]] = {}
        # Live RF as integers: denominator and numerator.
        self._covered = base.num_vertices
        self._total_replicas = base.total_replicas()
        #: Bumped once per applied mutation; batch snapshot key.
        self.delta_version = 0
        #: Mutations applied since this overlay was created (compaction resets
        #: by swapping in a fresh overlay, not by rewinding this counter).
        self.pending_mutations = 0

    # -- identity ----------------------------------------------------------

    @property
    def base(self) -> PartitionStore:
        """The wrapped immutable store."""
        return self._base

    @property
    def backend(self) -> str:  # type: ignore[override]
        """The base store's backend; the overlay is layout-agnostic."""
        return self._base.backend

    @property
    def partition(self) -> EdgePartition:
        """Materialise base + delta (expensive; compaction/compat only)."""
        return self.to_partition()

    # -- basic shape -------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return self._base.num_partitions

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + sum(self._size_delta)

    @property
    def num_vertices(self) -> int:
        return self._covered

    def has_vertex(self, v: int) -> bool:
        deg = self._deg.get(v)
        if deg is not None:
            return bool(deg)
        return self._base.has_vertex(v)

    # -- routing -----------------------------------------------------------

    def master_of(self, v: int) -> int:
        if v in self._deg:
            master = self._master.get(v)
            if master is None:
                raise KeyError(v)
            return master
        return self._base.master_of(v)

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        deg = self._deg.get(v)
        if deg is not None:
            return tuple(sorted(deg))
        return self._base.replicas_of(v)

    def owner_of_edge(self, u: int, v: int) -> int:
        edge = normalize_edge(u, v)
        owner = self._ins_owner.get(edge)
        if owner is not None:
            return owner
        if edge in self._del_owner:
            raise KeyError(edge)
        return self._base.owner_of_edge(u, v)

    def neighbors(self, v: int) -> Set[int]:
        deg = self._deg.get(v)
        if deg is None:
            return self._base.neighbors(v)
        if not deg:
            raise KeyError(v)
        merged: Set[int] = set()
        for k in deg:
            merged |= self.local_neighbors(v, k)
        return merged

    def local_neighbors(self, v: int, k: int) -> Set[int]:
        neighbours = self._base.local_neighbors(v, k)
        dropped = self._adj_del[k].get(v)
        if dropped:
            neighbours -= dropped
        added = self._adj_ins[k].get(v)
        if added:
            neighbours |= added
        return neighbours

    def local_degree(self, v: int, k: int) -> int:
        deg = self._deg.get(v)
        if deg is not None:
            return deg.get(k, 0)
        return self._base.local_degree(v, k)

    def degree(self, v: int) -> int:
        """Total effective degree of ``v`` (0 if uncovered).

        Each edge lives in exactly one partition, so summing local
        degrees over the replica set gives the true degree — the partial
        degree the HDRF placement score needs.
        """
        deg = self._deg.get(v)
        if deg is not None:
            return sum(deg.values())
        base = self._base
        return sum(base.local_degree(v, k) for k in base.replicas_of(v))

    # -- batch routing -----------------------------------------------------
    #
    # Delta corrections only apply to *touched* rows: ``_bump_degree``
    # records both endpoints of every mutation in ``_deg``, so any vertex
    # absent from it answers exactly as the base store.  Each batch is
    # therefore split once — touched vertices take the scalar overlay
    # path, the (typically much larger) untouched remainder is answered
    # by one vectorised call on the base.

    def route_many(self, vertices: Sequence[int]) -> List[Route]:
        out: List[Route] = [None] * len(vertices)
        base_pos: List[int] = []
        base_vs: List[int] = []
        for i, v in enumerate(vertices):
            deg = self._deg.get(v)
            if deg is None:
                base_pos.append(i)
                base_vs.append(v)
            elif deg:
                master = self._master.get(v)
                if master is not None:
                    out[i] = (master, tuple(sorted(deg)))
        if base_vs:
            for i, route in zip(base_pos, self._base.route_many(base_vs)):
                out[i] = route
        return out

    def neighbors_many(self, vertices: Sequence[int]) -> List[NeighborRow]:
        out: List[NeighborRow] = [None] * len(vertices)
        base_pos: List[int] = []
        base_vs: List[int] = []
        for i, v in enumerate(vertices):
            deg = self._deg.get(v)
            if deg is None:
                base_pos.append(i)
                base_vs.append(v)
            elif deg:
                merged: Set[int] = set()
                for k in deg:
                    merged |= self.local_neighbors(v, k)
                out[i] = (sorted(merged), tuple(sorted(deg)))
        if base_vs:
            for i, row in zip(base_pos, self._base.neighbors_many(base_vs)):
                out[i] = row
        return out

    def owners_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * len(pairs)
        base_pos: List[int] = []
        base_pairs: List[Tuple[int, int]] = []
        for i, (u, v) in enumerate(pairs):
            edge = normalize_edge(u, v)
            owner = self._ins_owner.get(edge)
            if owner is not None:
                out[i] = owner
            elif edge not in self._del_owner:
                base_pos.append(i)
                base_pairs.append(edge)
        if base_pairs:
            for i, owner in zip(base_pos, self._base.owners_many(base_pairs)):
                out[i] = owner
        return out

    # -- summaries ---------------------------------------------------------

    def partition_stats(self, k: int) -> Dict[str, int]:
        stats = self._base.partition_stats(k)
        stats["edges"] += self._size_delta[k]
        stats["vertices"] += self._vertex_delta[k]
        stats["masters"] += self._master_delta[k]
        stats["mirrors"] = stats["vertices"] - stats["masters"]
        return stats

    def partition_sizes(self) -> List[int]:
        return [
            size + delta
            for size, delta in zip(self._base.partition_sizes(), self._size_delta)
        ]

    def total_replicas(self) -> int:
        return self._total_replicas

    def replication_factor(self) -> float:
        if self._covered == 0:
            return 1.0
        return self._total_replicas / self._covered

    def rf_drift(self) -> float:
        """Overlay RF minus base RF — what compaction would claw back."""
        return self.replication_factor() - self._base.replication_factor()

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out["pending_mutations"] = self.pending_mutations
        out["delta_version"] = self.delta_version
        return out

    # -- mutation queries --------------------------------------------------

    def edge_exists(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is in the effective edge set."""
        edge = normalize_edge(u, v)
        if edge in self._ins_owner:
            return True
        if edge in self._del_owner:
            return False
        try:
            self._base.owner_of_edge(u, v)
        except KeyError:
            return False
        return True

    # -- mutation appliers -------------------------------------------------
    # Validation and WAL ordering live in Ingestor; these assume a legal
    # mutation and keep every aggregate exact.

    def apply_insert(self, u: int, v: int, k: int) -> None:
        """Add edge ``{u, v}`` to partition ``k``."""
        a, b = normalize_edge(u, v)
        edge = (a, b)
        if edge in self._ins_owner:  # pragma: no cover - Ingestor validates
            raise ConflictError(f"edge {edge} already inserted")
        if self._del_owner.get(edge) == k:
            # Reinsert into the partition whose base copy we deleted:
            # cancel the delete rather than stacking an insert on top.
            del self._del_owner[edge]
            self._drop_adj(self._adj_del, k, a, b)
        else:
            self._ins_owner[edge] = k
            self._add_adj(self._adj_ins, k, a, b)
        self._size_delta[k] += 1
        self._bump_degree(a, k, +1)
        self._bump_degree(b, k, +1)
        self._mutated()

    def apply_delete(self, u: int, v: int) -> int:
        """Remove edge ``{u, v}``; returns the partition that held it."""
        a, b = normalize_edge(u, v)
        edge = (a, b)
        k = self._ins_owner.pop(edge, None)
        if k is not None:
            self._drop_adj(self._adj_ins, k, a, b)
        else:
            if edge in self._del_owner:
                raise ConflictError(f"edge {edge} already deleted")
            k = self._base.owner_of_edge(a, b)  # KeyError if absent
            self._del_owner[edge] = k
            self._add_adj(self._adj_del, k, a, b)
        self._size_delta[k] -= 1
        self._bump_degree(a, k, -1)
        self._bump_degree(b, k, -1)
        self._mutated()
        return k

    def to_partition(self, workers: Optional[int] = None) -> EdgePartition:
        """Fold base + delta into a fresh :class:`EdgePartition`.

        Deterministic: base edge order is preserved, overlay inserts are
        appended in sorted order.  This is the compaction input and the
        reference the property tests rebuild stats from.

        ``workers`` folds the partitions on a thread pool (one partition
        per worker; ``None`` = one per core, ``1`` = sequential).  Each
        partition's fold reads only that partition's base edges and
        delta entries and results merge by ascending ``k``, so the
        output is identical for any worker count.  The caller must hold
        mutations off for the duration (compaction freezes ingest).
        """
        p = self.num_partitions
        deleted: List[Set[Edge]] = [set() for _ in range(p)]
        for edge, k in self._del_owner.items():
            deleted[k].add(edge)
        inserted: List[List[Edge]] = [[] for _ in range(p)]
        for edge, k in self._ins_owner.items():
            inserted[k].append(edge)
        base_partition = self._base.partition

        def fold_one(k: int) -> List[Edge]:
            edges = [e for e in base_partition.edges_of(k) if e not in deleted[k]]
            edges.extend(sorted(inserted[k]))
            return edges

        return EdgePartition(parallel_map(fold_one, range(p), workers))

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _add_adj(
        table: List[Dict[int, Set[int]]], k: int, a: int, b: int
    ) -> None:
        adj = table[k]
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    @staticmethod
    def _drop_adj(
        table: List[Dict[int, Set[int]]], k: int, a: int, b: int
    ) -> None:
        adj = table[k]
        for x, y in ((a, b), (b, a)):
            row = adj.get(x)
            if row is not None:
                row.discard(y)
                if not row:
                    del adj[x]

    def _touch(self, v: int) -> Dict[int, int]:
        """Pull ``v``'s base degrees/master into the overlay (once)."""
        deg = self._deg.get(v)
        if deg is None:
            base = self._base
            deg = {k: base.local_degree(v, k) for k in base.replicas_of(v)}
            self._deg[v] = deg
            self._master[v] = base.master_of(v) if deg else None
        return deg

    def _bump_degree(self, v: int, k: int, delta: int) -> None:
        deg = self._touch(v)
        old = deg.get(k, 0)
        new = old + delta
        if new < 0:  # pragma: no cover - appliers keep this impossible
            raise IngestError(f"negative degree for vertex {v} in partition {k}")
        if new:
            deg[k] = new
        else:
            deg.pop(k, None)
        if old == 0 and new > 0:
            self._total_replicas += 1
            self._vertex_delta[k] += 1
            if len(deg) == 1:
                self._covered += 1
        elif old > 0 and new == 0:
            self._total_replicas -= 1
            self._vertex_delta[k] -= 1
            if not deg:
                self._covered -= 1
        self._update_master(v, deg)

    def _update_master(self, v: int, deg: Dict[int, int]) -> None:
        # Same rule as ReplicationTable / the CSR sidecar: most local
        # edges, ties to the lowest partition id.
        new: Optional[int]
        if deg:
            new = max(deg, key=lambda k: (deg[k], -k))
        else:
            new = None
        old = self._master.get(v)
        if new == old:
            return
        if old is not None:
            self._master_delta[old] -= 1
        if new is not None:
            self._master_delta[new] += 1
        self._master[v] = new

    def _mutated(self) -> None:
        self.delta_version += 1
        self.pending_mutations += 1


# -- placement ---------------------------------------------------------------


def _under_capacity(sizes: List[int], capacity: Optional[int]) -> List[int]:
    if capacity is None:
        return list(range(len(sizes)))
    candidates = [k for k, size in enumerate(sizes) if size < capacity]
    if not candidates:
        raise CapacityError(
            f"all {len(sizes)} partitions at capacity {capacity}; compact first"
        )
    return candidates


def place_hdrf(
    store: DeltaOverlay,
    u: int,
    v: int,
    *,
    capacity: Optional[int] = None,
    lam: float = 1.1,
    epsilon: float = 1.0,
    offsets: Optional[Sequence[int]] = None,
) -> int:
    """HDRF score over under-capacity partitions; ties to the lowest id.

    Identical scoring to :class:`repro.partitioning.hdrf.HDRFPartitioner`
    with partial degrees (the degree *including* the arriving edge), but
    deterministic — online placement must replay identically from the
    WAL, so random tie-breaking is off the table.  ``offsets`` are the
    optional refined-profile balance priors
    (:func:`repro.partitioning.scoring.balance_offsets`); placement is
    unchanged when they are absent.
    """
    sizes = store.partition_sizes()
    candidates = _under_capacity(sizes, capacity)
    du = store.degree(u) + 1
    dv = store.degree(v) + 1
    ties = hdrf_ties(
        du,
        dv,
        set(store.replicas_of(u)),
        set(store.replicas_of(v)),
        sizes,
        candidates=candidates,
        lam=lam,
        epsilon=epsilon,
        offsets=offsets,
    )
    return ties[0]  # candidates ascend, so [0] is the lowest id on ties


def place_greedy(
    store: DeltaOverlay,
    u: int,
    v: int,
    *,
    capacity: Optional[int] = None,
) -> int:
    """PowerGraph's four greedy rules over under-capacity partitions.

    Replica sets are intersected with the candidate set first (a full
    partition cannot take the edge even if it hosts both endpoints);
    least-loaded ties break to the lowest id for determinism.
    """
    sizes = store.partition_sizes()
    candidates = _under_capacity(sizes, capacity)
    return greedy_choice(
        set(store.replicas_of(u)), set(store.replicas_of(v)), sizes, candidates
    )


# -- the ingestor ------------------------------------------------------------


class Ingestor:
    """Mutation front door: validate → WAL → overlay, plus compaction.

    One instance per served bundle.  :meth:`enable` is the normal entry
    point: it opens (and replays) the bundle's WAL, wraps the manager's
    live store in a :class:`DeltaOverlay` — and registers the wrap so
    every future reload/compaction epoch gets a fresh overlay too.
    """

    def __init__(
        self,
        manager: StoreManager,
        wal: WriteAheadLog,
        bundle_dir: PathLike,
        *,
        policy: str = "hdrf",
        capacity: Optional[int] = None,
        lam: float = 1.1,
        epsilon: float = 1.0,
        metrics=None,
        dedup_size: int = 4096,
        fold_workers: Optional[int] = None,
        refine_on_compact: bool = False,
        refine_slack: float = 1.0,
        refine_epsilon: float = 0.0,
        refine_max_passes: int = 8,
        refined_hints: bool = True,
    ) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"policy must be one of {PLACEMENT_POLICIES}, got {policy!r}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.manager = manager
        self.wal = wal
        self.bundle_dir = Path(bundle_dir)
        self.policy = policy
        self.capacity = capacity
        self.lam = lam
        self.epsilon = epsilon
        self.metrics = metrics
        self.dedup_size = dedup_size
        #: Thread-pool width for the compaction fold + bundle save
        #: (``None`` = one per core, ``1`` = sequential); the folded
        #: bundle is byte-identical for any value.
        self.fold_workers = fold_workers
        #: Run local-search RF refinement on every compaction fold,
        #: clawing back mutation-induced RF drift before the epoch swap.
        self.refine_on_compact = refine_on_compact
        self.refine_slack = refine_slack
        self.refine_epsilon = refine_epsilon
        self.refine_max_passes = refine_max_passes
        #: Consume a ``metadata["refined"]["partition_sizes"]`` profile
        #: (when the bundle carries one) as HDRF balance priors.
        self.refined_hints = refined_hints
        #: Per-partition additive size offsets derived from the refined
        #: profile (``None`` until a profile is seen; placement is
        #: bit-identical to the prior behaviour while ``None``).
        self.balance_offsets: Optional[List[int]] = None
        #: :class:`~repro.partitioning.refine.RefineStats` of the most
        #: recent refined compaction (``None`` until one runs).
        self.last_refine_stats: Optional[RefineStats] = None
        #: Wall-clock seconds of the most recent fold + save (the part of
        #: the compaction pause the thread pool shrinks).
        self.last_fold_seconds = 0.0
        #: Next WAL sequence number (monotonic across compactions).
        self.next_seq = 0
        self.inserts = 0
        self.deletes = 0
        self.compactions = 0
        self.replayed_mutations = 0
        self._frozen = False
        #: (client, cseq) -> cached result, LRU-bounded, for idempotent retries.
        self._dedup: "OrderedDict[Tuple[str, int], Dict[str, object]]" = (
            OrderedDict()
        )

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def enable(
        cls,
        manager: StoreManager,
        bundle_dir: PathLike,
        *,
        wal_path: Optional[PathLike] = None,
        fsync: str = "batch",
        batch_interval: float = 0.05,
        policy: str = "hdrf",
        capacity: Optional[int] = None,
        lam: float = 1.1,
        epsilon: float = 1.0,
        metrics=None,
        dedup_size: int = 4096,
        fold_workers: Optional[int] = None,
        refine_on_compact: bool = False,
        refine_slack: float = 1.0,
        refine_epsilon: float = 0.0,
        refine_max_passes: int = 8,
        refined_hints: bool = True,
    ) -> "Ingestor":
        """Turn a read-only manager into a mutable one.

        Must run before the server starts admitting requests (the live
        store is re-wrapped under the same epoch).  Replays any WAL left
        by a previous process, so restarting after a crash converges to
        the acknowledged state.
        """
        bundle_dir = Path(bundle_dir)
        wal = WriteAheadLog(
            wal_path or bundle_dir / WAL_NAME,
            fsync=fsync,
            batch_interval=batch_interval,
            metrics=metrics,
        )
        records = wal.open()
        manager.wrap_live(DeltaOverlay)
        ingestor = cls(
            manager,
            wal,
            bundle_dir,
            policy=policy,
            capacity=capacity,
            lam=lam,
            epsilon=epsilon,
            metrics=metrics,
            dedup_size=dedup_size,
            fold_workers=fold_workers,
            refine_on_compact=refine_on_compact,
            refine_slack=refine_slack,
            refine_epsilon=refine_epsilon,
            refine_max_passes=refine_max_passes,
            refined_hints=refined_hints,
        )
        ingestor._load_refined_hints()
        ingestor._replay(records)
        ingestor.publish_gauges()
        return ingestor

    def close(self) -> None:
        """Flush and close the WAL."""
        self.wal.close()

    @property
    def overlay(self) -> DeltaOverlay:
        """The live overlay (the manager's current store)."""
        store = self.manager.store
        if not isinstance(store, DeltaOverlay):  # pragma: no cover - wiring bug
            raise IngestError("live store is not wrapped in a DeltaOverlay")
        return store

    @property
    def frozen(self) -> bool:
        """Whether mutations are paused by an in-flight compaction."""
        return self._frozen

    # -- mutations ---------------------------------------------------------

    def insert_edge(
        self,
        u: int,
        v: int,
        *,
        client: Optional[str] = None,
        cseq: Optional[int] = None,
    ) -> Dict[str, object]:
        """Insert edge ``{u, v}``; returns ``{partition, seq, ...}``.

        Raises :class:`ConflictError` if the edge already exists,
        :class:`CapacityError` if no partition can take it,
        :class:`IngestFrozen` during a compaction fold, and
        ``ValueError`` for a self-loop.
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
        key = self._dedup_key(client, cseq)
        cached = self._cached(key)
        if cached is not None:
            return cached
        self._check_unfrozen()
        overlay = self.overlay
        a, b = normalize_edge(u, v)
        if overlay.edge_exists(a, b):
            raise ConflictError(f"edge ({a}, {b}) already exists")
        k = self._place(overlay, a, b)
        result = self._commit(
            {"op": "insert", "u": a, "v": b, "k": k}, key
        )
        overlay.apply_insert(a, b, k)
        self.inserts += 1
        self._count("edges_inserted")
        self.publish_gauges()
        return result

    def delete_edge(
        self,
        u: int,
        v: int,
        *,
        client: Optional[str] = None,
        cseq: Optional[int] = None,
    ) -> Dict[str, object]:
        """Delete edge ``{u, v}``; routed to ``owner_of_edge``.

        Raises ``KeyError`` (→ ``not_found`` on the wire) if the edge is
        not in the effective set, :class:`IngestFrozen` mid-compaction.
        """
        key = self._dedup_key(client, cseq)
        cached = self._cached(key)
        if cached is not None:
            return cached
        self._check_unfrozen()
        overlay = self.overlay
        a, b = normalize_edge(u, v)
        k = overlay.owner_of_edge(a, b)  # KeyError if absent
        result = self._commit(
            {"op": "delete", "u": a, "v": b, "k": k}, key
        )
        overlay.apply_delete(a, b)
        self.deletes += 1
        self._count("edges_deleted")
        self.publish_gauges()
        return result

    def ingest_stats(self) -> Dict[str, object]:
        """Operator view: pending delta, WAL size, RF drift, counters."""
        overlay = self.overlay
        rf = overlay.replication_factor()
        base_rf = overlay.base.replication_factor()
        return {
            "epoch": overlay.epoch,
            "policy": self.policy,
            "capacity": self.capacity,
            "frozen": self._frozen,
            "next_seq": self.next_seq,
            "pending_mutations": overlay.pending_mutations,
            "delta_version": overlay.delta_version,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "replayed_mutations": self.replayed_mutations,
            "compactions": self.compactions,
            "wal_bytes": self.wal.size,
            "wal_fsync_policy": self.wal.fsync_policy,
            "refined_hints": self.balance_offsets is not None,
            "num_edges": overlay.num_edges,
            "replication_factor": round(rf, 6),
            "base_replication_factor": round(base_rf, 6),
            "overlay_rf_drift": round(rf - base_rf, 6),
        }

    # -- compaction --------------------------------------------------------

    def compact_sync(self, *, verify: bool = True) -> Dict[str, object]:
        """Blocking compaction for in-process use (CLI, tests, bench)."""
        precheck = self._compaction_precheck()
        if precheck is not None:
            return precheck
        started = time.perf_counter()
        folded = self.overlay.pending_mutations
        self._frozen = True
        try:
            self._fold_and_save()
            self.wal.reset()
            info = self.manager.reload_sync(self.bundle_dir, verify=verify)
        except Exception:
            self._count("compactions_failed")
            raise
        finally:
            self._frozen = False
            self.publish_gauges()
        return self._finish_compaction(info, folded, started)

    async def compact(self, *, verify: bool = True) -> Dict[str, object]:
        """Compact without blocking the event loop.

        The fold + ``save_partition`` run in an executor thread while
        reads keep serving (mutations are frozen — they fail fast with
        :class:`IngestFrozen`, which clients treat as retryable).  The
        WAL resets *after* the folded bundle is durably on disk and
        *before* the epoch swap, so a crash at any point restarts into a
        consistent state: folded bundle + WAL records with sequence
        numbers below the folded watermark are skipped on replay.
        """
        precheck = self._compaction_precheck()
        if precheck is not None:
            return precheck
        started = time.perf_counter()
        folded = self.overlay.pending_mutations
        self._frozen = True
        try:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._fold_and_save)
            self.wal.reset()
            info = await self.manager.reload(self.bundle_dir, verify=verify)
        except Exception:
            self._count("compactions_failed")
            raise
        finally:
            self._frozen = False
            self.publish_gauges()
        return self._finish_compaction(info, folded, started)

    # -- internals ---------------------------------------------------------

    def _place(self, overlay: DeltaOverlay, u: int, v: int) -> int:
        if self.policy == "greedy":
            return place_greedy(overlay, u, v, capacity=self.capacity)
        return place_hdrf(
            overlay, u, v,
            capacity=self.capacity, lam=self.lam, epsilon=self.epsilon,
            offsets=self.balance_offsets,
        )

    def _load_refined_hints(self) -> None:
        """Adopt the bundle's refined size profile as balance priors.

        No-op (placement bit-identical to before) unless hints are on
        and the bundle's ``metadata["refined"]`` carries a
        ``partition_sizes`` profile matching the partition count.
        """
        if not self.refined_hints:
            return
        refined = self.overlay.metadata.get("refined")
        if not isinstance(refined, dict):
            return
        profile = refined.get("partition_sizes")
        if (
            isinstance(profile, list)
            and len(profile) == self.overlay.num_partitions
            and all(isinstance(s, int) and s >= 0 for s in profile)
        ):
            self.balance_offsets = balance_offsets(profile)

    def _commit(
        self,
        record: Dict[str, object],
        key: Optional[Tuple[str, int]],
    ) -> Dict[str, object]:
        """Stamp, WAL-append, and build the result for one mutation."""
        seq = self.next_seq
        record["seq"] = seq
        if key is not None:
            record["client"], record["cseq"] = key
        self.wal.append(record)
        self.next_seq = seq + 1
        result = {
            "op": record["op"],
            "u": record["u"],
            "v": record["v"],
            "partition": record["k"],
            "seq": seq,
        }
        self._remember(key, result)
        return result

    def _check_unfrozen(self) -> None:
        if self._frozen:
            raise IngestFrozen("compaction in progress; retry shortly")

    def _replay(self, records: List[Dict[str, object]]) -> None:
        overlay = self.overlay
        folded_seq = int(overlay.metadata.get("ingest_folded_seq", 0) or 0)
        self.next_seq = folded_seq
        applied = 0
        for record in records:
            try:
                seq = int(record["seq"])  # type: ignore[arg-type]
                if seq < folded_seq:
                    # A compaction saved the folded bundle but crashed
                    # before resetting the WAL; this record is already in.
                    continue
                op = record["op"]
                u = int(record["u"])  # type: ignore[arg-type]
                v = int(record["v"])  # type: ignore[arg-type]
                if op == "insert":
                    overlay.apply_insert(u, v, int(record["k"]))  # type: ignore[arg-type]
                elif op == "delete":
                    overlay.apply_delete(u, v)
                else:
                    raise IngestError(f"unknown op {op!r}")
            except (KeyError, ConflictError, IngestError, TypeError) as exc:
                raise IngestError(
                    f"WAL replay failed at record {record!r}: {exc}"
                ) from exc
            applied += 1
            self.next_seq = seq + 1
            client = record.get("client")
            cseq = record.get("cseq")
            if client is not None and cseq is not None:
                self._remember(
                    (str(client), int(cseq)),  # type: ignore[arg-type]
                    {
                        "op": op,
                        "u": min(u, v),
                        "v": max(u, v),
                        "partition": int(record["k"]),  # type: ignore[arg-type]
                        "seq": seq,
                    },
                )
        self.replayed_mutations = applied
        if applied:
            self._count("mutations_replayed", applied)

    @staticmethod
    def _dedup_key(
        client: Optional[str], cseq: Optional[int]
    ) -> Optional[Tuple[str, int]]:
        if client is None or cseq is None:
            return None
        return (str(client), int(cseq))

    def _cached(
        self, key: Optional[Tuple[str, int]]
    ) -> Optional[Dict[str, object]]:
        if key is None:
            return None
        cached = self._dedup.get(key)
        if cached is None:
            return None
        self._dedup.move_to_end(key)
        self._count("mutations_deduplicated")
        return dict(cached, deduplicated=True)

    def _remember(
        self, key: Optional[Tuple[str, int]], result: Dict[str, object]
    ) -> None:
        if key is None:
            return
        self._dedup[key] = result
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.dedup_size:
            self._dedup.popitem(last=False)

    def _compaction_precheck(self) -> Optional[Dict[str, object]]:
        if self._frozen:
            raise IngestFrozen("compaction already in progress")
        overlay = self.overlay
        if overlay.pending_mutations == 0 and self.wal.size == 0:
            return {
                "skipped": True,
                "reason": "no pending mutations",
                "epoch": overlay.epoch,
                "folded_mutations": 0,
            }
        return None

    def _fold_and_save(self) -> None:
        from repro.partitioning.serialization import save_partition

        fold_started = time.perf_counter()
        overlay = self.overlay
        partition = overlay.to_partition(workers=self.fold_workers)
        metadata = dict(overlay.metadata)
        # Watermark: WAL records below this are folded into the bundle.
        metadata["ingest_folded_seq"] = self.next_seq
        metadata["compacted_mutations"] = (
            int(metadata.get("compacted_mutations", 0) or 0)
            + overlay.pending_mutations
        )
        if self.refine_on_compact:
            # Local-search post-pass over the folded partition: claws
            # back mutation-induced RF drift before the epoch swap, so
            # every refined compaction publishes a strictly-no-worse
            # bundle (still zero dropped queries — same reload path).
            from repro.partitioning.refine import LocalSearchRefiner

            refiner = LocalSearchRefiner(
                slack=self.refine_slack,
                epsilon=self.refine_epsilon,
                max_passes=self.refine_max_passes,
            )
            partition, stats = refiner.refine(partition)
            self.last_refine_stats = stats
            entry = stats.manifest_entry()
            sizes = partition.partition_sizes()
            entry["partition_sizes"] = sizes
            metadata["refined"] = entry
            if "replication_factor" in metadata:
                metadata["replication_factor"] = round(stats.rf_after, 6)
            if self.refined_hints:
                # Future placements lean toward the freshly refined
                # layout instead of the stale pre-compaction profile.
                self.balance_offsets = balance_offsets(sizes)
        save_partition(
            partition, self.bundle_dir, metadata=metadata,
            workers=self.fold_workers,
        )
        self.last_fold_seconds = time.perf_counter() - fold_started

    def _finish_compaction(
        self, info: Dict[str, object], folded: int, started: float
    ) -> Dict[str, object]:
        self.compactions += 1
        elapsed = time.perf_counter() - started
        info = dict(info)
        info["folded_mutations"] = folded
        info["compaction_seconds"] = round(elapsed, 6)
        info["fold_seconds"] = round(self.last_fold_seconds, 6)
        info["fold_workers"] = self.fold_workers
        info["wal_bytes"] = self.wal.size
        if self.refine_on_compact and self.last_refine_stats is not None:
            stats = self.last_refine_stats
            info["refined"] = {
                "rf_before": round(stats.rf_before, 6),
                "rf_after": round(stats.rf_after, 6),
                "moves": stats.moves,
                "swaps": stats.swaps,
                "passes": stats.passes,
                "seconds": round(stats.seconds, 6),
            }
        self._count("compactions_ok")
        if self.metrics is not None:
            self.metrics.observe("compaction", elapsed)
        return info

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def publish_gauges(self) -> None:
        """Refresh the operator gauges (no-op without attached metrics)."""
        if self.metrics is None:
            return
        overlay = self.overlay
        self.metrics.set_gauge("pending_mutations", overlay.pending_mutations)
        self.metrics.set_gauge("wal_bytes", self.wal.size)
        self.metrics.set_gauge("overlay_rf_drift", overlay.rf_drift())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ingestor(policy={self.policy!r}, next_seq={self.next_seq}, "
            f"pending={self.overlay.pending_mutations}, frozen={self._frozen})"
        )
