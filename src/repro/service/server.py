"""Asyncio TCP server for partition queries: batching, backpressure, drain.

Architecture (one event loop, no threads)::

    conn reader --\\                       /--> batch --> handler
    conn reader ----> bounded queue --> dispatcher
    conn reader --/        |              \\--> futures resolved
         |                 | full -> overload error
    conn writer <---- per-conn response queue (responses in request order)

* **Backpressure** — the global request queue is bounded
  (``max_queue``).  When it is full the request is answered immediately
  with an ``overload`` error instead of buffering without limit; the
  per-connection response queue is bounded too, so a flooding client
  eventually blocks on TCP instead of growing server memory.
* **Batching** — the dispatcher pulls one request, then greedily drains
  everything already queued (yielding to the connection readers once so
  buffered frames join in) up to ``max_batch`` requests or
  ``batch_window`` seconds, and executes the batch in one handler call.
  The window is an upper bound, not a wait: a lone request dispatches
  immediately.  Duplicate lookups in a batch are computed once and the
  routing reads are answered through the store's vectorised batch
  methods; see ``ServiceHandler.execute_batch``.
* **Timeouts** — a request that has not been answered ``request_timeout``
  seconds after arrival gets a ``timeout`` error; its slot is abandoned
  (the dispatcher skips completed/cancelled entries).
* **Graceful shutdown** — ``stop()`` closes the listener, stops reading
  from established connections, lets the dispatcher finish everything
  already queued, writes those responses, then closes connections.
* **Hot re-partitioning** — a ``reload`` request is intercepted at
  admission and runs as its own task, bypassing the data-plane queue
  (whose old-epoch leases its drain barrier waits on): the replacement
  :class:`PartitionStore` is built in an executor thread while the
  dispatcher keeps serving the old epoch, then the
  :class:`~repro.service.store.StoreManager` flips it in atomically.
  Every *other* request is pinned to the live ``(store, epoch)`` at
  admission time (when its frame is read), so requests in flight across
  a flip keep reading the store they started on; the old store is only
  released once those leases drain.  Exactly one build runs at a time —
  a second ``reload`` gets a ``reload_in_progress`` error, and a corrupt
  or insane bundle gets ``reload_failed`` while the old epoch keeps
  serving.

Responses on one connection are written in request order (clients may
pipeline; the ``id`` field also supports out-of-order matching if that
guarantee is ever relaxed).
"""

from __future__ import annotations

import asyncio
import inspect
import logging
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.service import protocol
from repro.service.handler import ServiceHandler
from repro.service.ingest import IngestFrozen, Ingestor
from repro.service.metrics import ServiceMetrics
from repro.service.store import (
    PartitionStore,
    ReloadError,
    ReloadInProgress,
    StoreManager,
)

logger = logging.getLogger(__name__)

#: A handler is anything mapping a batch of requests to a list of
#: responses, sync or async — tests inject slow/async fakes.
BatchHandler = Callable[
    [List[Dict[str, Any]]],
    Union[List[Dict[str, Any]], Awaitable[List[Dict[str, Any]]]],
]

_DEFAULT_HOST = "127.0.0.1"


class _Pending:
    """One enqueued request: payload + future + arrival time + epoch lease.

    ``wire`` records the codec the request frame arrived in; the writer
    answers in the same codec, so one connection may interleave JSON and
    binary requests freely.
    """

    __slots__ = ("request", "future", "arrived", "lease", "wire")

    def __init__(
        self,
        request: Dict[str, Any],
        future: "asyncio.Future",
        arrived: float,
        lease: Optional[Tuple[PartitionStore, int]] = None,
        wire: str = protocol.WIRE_JSON,
    ) -> None:
        self.request = request
        self.future = future
        self.arrived = arrived
        self.lease = lease
        self.wire = wire


class PartitionServer:
    """Serve a :class:`PartitionStore` over length-prefixed JSON TCP."""

    def __init__(
        self,
        store: Optional[Union[PartitionStore, StoreManager]] = None,
        host: str = _DEFAULT_HOST,
        port: int = 0,
        *,
        max_queue: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        request_timeout: float = 5.0,
        metrics: Optional[ServiceMetrics] = None,
        batch_handler: Optional[BatchHandler] = None,
        handler: Optional[Any] = None,
        allow_reload: bool = True,
        ingestor: Optional[Ingestor] = None,
        path: Optional[str] = None,
        concurrent_batches: int = 1,
        accept_binary: bool = True,
    ) -> None:
        if store is None and batch_handler is None and handler is None:
            raise ValueError("need a store, a handler, or an explicit batch_handler")
        self.host = host
        self.port = port
        #: Whether binary-codec frames are accepted.  When off, a binary
        #: request is answered with a JSON ``bad_request`` (the connection
        #: stays up) — which is exactly the signal that makes a
        #: binary-preferring client downgrade to JSON.
        self.accept_binary = accept_binary
        #: UNIX domain socket path; when set the server listens there
        #: instead of on host/port (cluster workers use this).
        self.path = path
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self.allow_reload = allow_reload
        #: How many dispatcher batches may execute concurrently.  1 (the
        #: default) keeps strict admission-order execution — required
        #: when the handler mutates state (ingest).  The cluster
        #: front-end raises it so the event loop keeps forming batches
        #: while earlier scatters wait on worker round trips; safe there
        #: because every data-plane op is a read pinned to its
        #: admission-time epoch lease, and per-connection response order
        #: is preserved by the writer queue regardless of completion
        #: order.
        self.concurrent_batches = max(1, concurrent_batches)
        if metrics is None and handler is not None:
            metrics = handler.metrics  # share the injected handler's metrics
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: The epoch/lease authority, when serving a real store (None with
        #: a custom ``batch_handler``: no epochs, no pinning, no reload).
        self.manager: Optional[StoreManager] = None
        #: ServiceHandler-compatible duck type: needs ``metrics``,
        #: ``manager``, and ``execute_batch(requests, leases=)`` (which may
        #: return an awaitable — the cluster front-end handler does).
        self._handler: Optional[Any] = None
        if batch_handler is None:
            if handler is None:
                handler = ServiceHandler(store, self.metrics)
            self._handler = handler
            self.manager = handler.manager
            batch_handler = handler.execute_batch
        self._batch_handler = batch_handler
        #: Mutation subsystem (``serve --wal``); None = read-only service.
        self.ingestor = ingestor
        if ingestor is not None and self._handler is not None:
            self._handler.attach_ingestor(ingestor)

        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_slots: Optional[asyncio.Semaphore] = None
        self._batch_tasks: Set["asyncio.Task"] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._reader_tasks: Set["asyncio.Task"] = set()
        self._admin_tasks: Set["asyncio.Task"] = set()
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port resolved if 0 was asked).

        For a UNIX-socket server this is ``(path, 0)`` — the first element
        stays a string either way so callers can log it uniformly.
        """
        if self._server is None:
            raise RuntimeError("server is not started")
        if self.path is not None:
            return self.path, 0
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._closing = False
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        if self.concurrent_batches > 1:
            self._batch_slots = asyncio.Semaphore(self.concurrent_batches)
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )
        if self.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path
            )
            logger.info("serving partition queries on unix:%s", self.path)
            return self.address
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        host, port = self.address
        logger.info("serving partition queries on %s:%d", host, port)
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: drain everything already accepted, then close.

        1. stop accepting connections and stop reading new requests;
        2. let the dispatcher finish every request already in the queue;
        3. write the pending responses, then close the connections.
        """
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        # Stop the per-connection readers: no new requests enter the queue.
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        # Drain the queue, then retire the dispatcher.
        assert self._queue is not None
        await self._queue.join()
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        # Overlapped batches have all called task_done (join returned),
        # but their tasks may still be finishing — reap them.
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        # Let any in-flight reload finish so its response gets written.
        if self._admin_tasks:
            await asyncio.gather(*list(self._admin_tasks), return_exceptions=True)
        # Writers exit once their response queues (fed before the readers
        # stopped) are flushed.
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._server = None
        self._dispatcher = None
        self._queue = None

    async def __aenter__(self) -> "PartitionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- dispatcher --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        # Greedy adaptive batching.  After the first request lands, drain
        # whatever is already queued, then yield once to the event loop so
        # connection readers can parse frames that are sitting in their
        # socket buffers, and stop as soon as a yield produces nothing
        # new.  ``batch_window`` is only an upper bound on this gathering,
        # never a mandatory wait — under pipelined load batches still form
        # (readers enqueue whole TCP chunks between dispatches), while an
        # isolated request is answered in microseconds instead of idling
        # out the window.
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first: _Pending = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                try:
                    while len(batch) < self.max_batch:
                        batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    pass
                if len(batch) >= self.max_batch or loop.time() >= deadline:
                    break
                await asyncio.sleep(0)
                if self._queue.empty():
                    break
            if self._batch_slots is not None:
                # Overlapped execution: hand the batch to its own task so
                # the loop goes straight back to forming the next one
                # while this batch waits on (e.g.) worker round trips.
                await self._batch_slots.acquire()
                task = asyncio.create_task(self._run_batch_slot(batch))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)
            else:
                await self._run_batch(batch)

    async def _run_batch_slot(self, batch: List[_Pending]) -> None:
        assert self._batch_slots is not None
        try:
            await self._run_batch(batch)
        finally:
            self._batch_slots.release()

    async def _run_batch(self, batch: List[_Pending]) -> None:
        # A request whose future is already done timed out while queued —
        # skip the work, its error was already written.
        queries = [p for p in batch if not p.future.done()]
        try:
            if queries:
                if self._handler is not None:
                    responses = self._handler.execute_batch(
                        [p.request for p in queries],
                        leases=[p.lease for p in queries],
                    )
                else:
                    responses = self._batch_handler([p.request for p in queries])
                if inspect.isawaitable(responses):
                    responses = await responses
                if len(responses) != len(queries):  # defensive: a broken handler
                    raise RuntimeError(
                        f"handler returned {len(responses)} responses "
                        f"for {len(queries)} requests"
                    )
                for pending, response in zip(queries, responses):
                    if not pending.future.done():
                        pending.future.set_result(response)
        except Exception as exc:  # noqa: BLE001 — keep serving after a bad batch
            logger.exception("batch handler failed")
            for pending in queries:
                if not pending.future.done():
                    pending.future.set_result(
                        protocol.error_response(
                            pending.request.get("id"),
                            protocol.INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                            epoch=self._live_epoch(),
                        )
                    )
        finally:
            assert self._queue is not None
            for pending in batch:
                self._release_lease(pending)
                self._queue.task_done()

    # -- hot reload --------------------------------------------------------

    def _live_epoch(self) -> Optional[int]:
        return self.manager.epoch if self.manager is not None else None

    def _release_lease(self, pending: _Pending) -> None:
        if pending.lease is not None and self.manager is not None:
            self.manager.release(pending.lease[1])
            pending.lease = None

    def _spawn_reload(self, pending: _Pending) -> None:
        task = asyncio.create_task(
            self._reload_request(pending), name="repro-serve-reload"
        )
        self._admin_tasks.add(task)
        task.add_done_callback(self._admin_tasks.discard)

    def _spawn_compact(self, pending: _Pending) -> None:
        task = asyncio.create_task(
            self._compact_request(pending), name="repro-serve-compact"
        )
        self._admin_tasks.add(task)
        task.add_done_callback(self._admin_tasks.discard)

    async def _compact_request(self, pending: _Pending) -> None:
        """Admission + execution of one ``compact`` admin request.

        Like ``reload``, compaction bypasses the data-plane queue: its
        epoch swap waits for old-epoch leases to drain, so it must never
        sit *behind* the requests holding those leases.  The fold and
        ``save_partition`` run in an executor thread; only mutations are
        frozen meanwhile (they fail fast with the retryable
        ``ingest_frozen``), reads keep serving throughout.
        """
        assert self.manager is not None and self.ingestor is not None
        request_id = pending.request.get("id")
        args = pending.request.get("args") or {}
        if not isinstance(args, dict):
            args = {}
        try:
            info = await self.ingestor.compact(
                verify=bool(args.get("verify", True))
            )
        except IngestFrozen as exc:
            response = protocol.error_response(
                request_id,
                protocol.INGEST_FROZEN,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ReloadInProgress as exc:
            response = protocol.error_response(
                request_id,
                protocol.RELOAD_IN_PROGRESS,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ReloadError as exc:
            response = protocol.error_response(
                request_id,
                protocol.RELOAD_FAILED,
                str(exc),
                epoch=self.manager.epoch,
            )
        except Exception as exc:  # noqa: BLE001 — fault barrier
            logger.exception("compaction failed unexpectedly")
            response = protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
                epoch=self.manager.epoch,
            )
        else:
            self.metrics.inc("requests_ok")
            self.metrics.inc("op_compact")
            if not info.get("skipped"):
                logger.info(
                    "compaction: folded %s mutations, epoch %s -> %s",
                    info.get("folded_mutations"),
                    info.get("previous_epoch"),
                    info.get("epoch"),
                )
            response = protocol.ok_response(
                request_id, info, epoch=info.get("epoch", self.manager.epoch)
            )
        if not pending.future.done():
            pending.future.set_result(response)

    async def _reload_request(self, pending: _Pending) -> None:
        """Admission + execution of one ``reload`` admin request."""
        assert self.manager is not None
        request_id = pending.request.get("id")
        args = pending.request.get("args") or {}
        directory = args.get("directory") if isinstance(args, dict) else None
        pending_mutations = (
            self.ingestor.overlay.pending_mutations
            if self.ingestor is not None
            else 0
        )
        if not self.allow_reload:
            self.metrics.inc("requests_bad")
            response = protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                "hot reload is disabled on this server",
                epoch=self.manager.epoch,
            )
        elif pending_mutations or (
            self.ingestor is not None and self.ingestor.wal.size
        ):
            # A plain reload would orphan acknowledged mutations (and
            # poison the next WAL replay); compact is the sanctioned path.
            response = protocol.error_response(
                request_id,
                protocol.RELOAD_FAILED,
                f"{pending_mutations} pending mutations in the overlay/WAL; "
                "run compact instead of reload",
                epoch=self.manager.epoch,
            )
        elif not isinstance(directory, str) or not directory:
            self.metrics.inc("requests_bad")
            response = protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                f"argument 'directory' must be a non-empty string, got {directory!r}",
                epoch=self.manager.epoch,
            )
        else:
            try:
                info = await self.manager.reload(
                    directory, verify=bool(args.get("verify", True))
                )
            except ReloadInProgress as exc:
                response = protocol.error_response(
                    request_id,
                    protocol.RELOAD_IN_PROGRESS,
                    str(exc),
                    epoch=self.manager.epoch,
                )
            except ReloadError as exc:
                response = protocol.error_response(
                    request_id,
                    protocol.RELOAD_FAILED,
                    str(exc),
                    epoch=self.manager.epoch,
                )
            except Exception as exc:  # noqa: BLE001 — fault barrier
                logger.exception("reload failed unexpectedly")
                response = protocol.error_response(
                    request_id,
                    protocol.INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    epoch=self.manager.epoch,
                )
            else:
                self.metrics.inc("requests_ok")
                self.metrics.inc("op_reload")
                logger.info(
                    "hot reload: epoch %s -> %s (drained %s in-flight)",
                    info["previous_epoch"],
                    info["epoch"],
                    info["drained"],
                )
                response = protocol.ok_response(
                    request_id, info, epoch=info["epoch"]
                )
        if not pending.future.done():
            pending.future.set_result(response)

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("connections")
        # Responses flow through a bounded per-connection queue so a client
        # that stops reading eventually blocks our reader (TCP handles it).
        responses: asyncio.Queue = asyncio.Queue(maxsize=max(2, self.max_queue))
        reader_task = asyncio.create_task(self._read_requests(reader, responses))
        self._reader_tasks.add(reader_task)
        reader_task.add_done_callback(self._reader_tasks.discard)
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._write_responses(writer, responses)
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_requests(
        self, reader: asyncio.StreamReader, responses: asyncio.Queue
    ) -> None:
        """Read frames, enqueue work, push response futures in order."""
        loop = asyncio.get_running_loop()
        frames = protocol.BufferedFrameReader(reader)
        wire = protocol.WIRE_JSON
        try:
            while True:
                try:
                    request = await frames.read_frame()
                except protocol.ProtocolError as exc:
                    self.metrics.inc("protocol_errors")
                    await responses.put(
                        _done(
                            protocol.error_response(
                                None,
                                protocol.BAD_REQUEST,
                                str(exc),
                                epoch=self._live_epoch(),
                            ),
                            loop,
                            wire,
                        )
                    )
                    break  # framing is lost; drop the connection
                if request is None:
                    break  # clean EOF
                wire = frames.last_wire
                self.metrics.inc("requests_received")
                if wire == protocol.WIRE_BINARY and not self.accept_binary:
                    # Refuse in JSON but keep the connection — the frame
                    # itself decoded fine, only the codec is unwelcome.
                    # Binary-preferring clients downgrade on this error.
                    self.metrics.inc("requests_bad")
                    await responses.put(
                        _done(
                            protocol.error_response(
                                request.get("id"),
                                protocol.BAD_REQUEST,
                                "binary wire codec not accepted here",
                                epoch=self._live_epoch(),
                            ),
                            loop,
                            protocol.WIRE_JSON,
                        )
                    )
                    continue
                if self._closing:
                    self.metrics.inc("requests_rejected_shutdown")
                    await responses.put(
                        _done(
                            protocol.error_response(
                                request.get("id"),
                                protocol.SHUTTING_DOWN,
                                "server is draining",
                                epoch=self._live_epoch(),
                            ),
                            loop,
                            wire,
                        )
                    )
                    continue
                if self.manager is not None and request.get("op") == "reload":
                    # Admin plane: a reload runs as its own task and
                    # bypasses the request queue entirely — it must not
                    # wait behind data-plane requests whose old-epoch
                    # leases its own drain barrier is about to wait on.
                    pending = _Pending(
                        request, loop.create_future(), loop.time(), wire=wire
                    )
                    self._spawn_reload(pending)
                    await responses.put(pending)
                    continue
                if (
                    self.manager is not None
                    and self.ingestor is not None
                    and request.get("op") == "compact"
                ):
                    # Same admin plane for compaction: its epoch swap also
                    # drains data-plane leases.  (Without an ingestor the
                    # op falls through to the handler's bad_request.)
                    pending = _Pending(
                        request, loop.create_future(), loop.time(), wire=wire
                    )
                    self._spawn_compact(pending)
                    await responses.put(pending)
                    continue
                # Pin the request to the live epoch *now*: if a hot swap
                # lands while it waits in the queue, it still reads the
                # store it was admitted under.
                lease = None
                if self.manager is not None:
                    lease = self.manager.acquire()
                pending = _Pending(
                    request, loop.create_future(), loop.time(), lease, wire
                )
                assert self._queue is not None
                try:
                    self._queue.put_nowait(pending)
                except asyncio.QueueFull:
                    self._release_lease(pending)
                    self.metrics.inc("requests_overload")
                    await responses.put(
                        _done(
                            protocol.error_response(
                                request.get("id"),
                                protocol.OVERLOAD,
                                f"request queue full ({self.max_queue})",
                                epoch=self._live_epoch(),
                            ),
                            loop,
                            wire,
                        )
                    )
                    continue
                # Fast path first: put() is a coroutine even when the queue
                # has room, and this runs once per request.  The awaiting
                # fallback keeps the back-pressure chain intact (writer
                # stalled on a slow client -> queue fills -> reader blocks
                # here -> TCP pushes back on the sender).
                try:
                    responses.put_nowait(pending)
                except asyncio.QueueFull:
                    await responses.put(pending)
        finally:
            # Tell the writer nothing further is coming.  Runs after a
            # cancellation too, so never block on a full queue: the writer
            # is draining it concurrently and space will appear.
            while True:
                try:
                    responses.put_nowait(None)
                    break
                except asyncio.QueueFull:
                    await asyncio.sleep(0.005)

    async def _write_responses(
        self, writer: asyncio.StreamWriter, responses: asyncio.Queue
    ) -> None:
        """Pop futures in request order, enforce timeouts, write frames.

        Greedy like the dispatcher: each wakeup drains every queued item
        (awaiting unresolved futures in order), encodes all their frames,
        and flushes them with a *single* ``write()`` + ``drain()``.  When
        a dispatch batch resolves many futures at once this collapses N
        per-response write/drain round-trips into one transport call —
        and the client's reader sees one TCP chunk instead of N.
        """
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            item = await responses.get()
            chunks = []
            while True:
                if item is None:
                    closing = True
                    break
                if item.future.done() and not item.future.cancelled():
                    # Fast path: the dispatcher already resolved it —
                    # no wait_for timer handle needed.
                    response = item.future.result()
                    op = item.request.get("op")
                    if isinstance(op, str):
                        self.metrics.observe(op, loop.time() - item.arrived)
                else:
                    # Deadline as a bare call_later + await, not
                    # asyncio.wait_for: the writer usually dequeues a
                    # pending *before* the dispatcher answers it, so
                    # this branch runs once per request and wait_for's
                    # waiter/coroutine overhead is measurable.  The
                    # timer stamps a sentinel result; every dispatch
                    # path guards ``future.done()``, so a late real
                    # answer is simply dropped.
                    budget = self.request_timeout - (loop.time() - item.arrived)
                    handle = loop.call_later(
                        max(0.0, budget), _expire, item.future
                    )
                    try:
                        response = await item.future
                    finally:
                        handle.cancel()
                    if response is _TIMED_OUT:
                        self.metrics.inc("requests_timeout")
                        response = protocol.error_response(
                            item.request.get("id"),
                            protocol.TIMEOUT,
                            f"no result within {self.request_timeout:g}s",
                            epoch=item.lease[1]
                            if item.lease
                            else self._live_epoch(),
                        )
                    else:
                        op = item.request.get("op")
                        if isinstance(op, str):
                            self.metrics.observe(op, loop.time() - item.arrived)
                try:
                    chunks.append(protocol.encode_frame(response, item.wire))
                except protocol.ProtocolError as exc:
                    # An unencodable/over-limit response must not kill the
                    # writer (and with it every pipelined response behind
                    # it) — substitute an internal error in its place.
                    self.metrics.inc("responses_unencodable")
                    chunks.append(
                        protocol.encode_frame(
                            protocol.error_response(
                                response.get("id"),
                                protocol.INTERNAL,
                                f"response exceeded frame limit: {exc}",
                                epoch=self._live_epoch(),
                            ),
                            item.wire,
                        )
                    )
                try:
                    item = responses.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if chunks:
                try:
                    writer.write(b"".join(chunks))
                    await writer.drain()
                except (ConnectionError, OSError):
                    self.metrics.inc("responses_dropped")
                    break


#: Sentinel result `_expire` stamps on futures whose deadline passed.
_TIMED_OUT: Any = object()


def _expire(future: "asyncio.Future") -> None:
    """Timer callback: resolve an overdue request future to the sentinel."""
    if not future.done():
        future.set_result(_TIMED_OUT)


def _done(
    response: Dict[str, Any],
    loop: "asyncio.AbstractEventLoop",
    wire: str = protocol.WIRE_JSON,
) -> _Pending:
    """A pre-answered pending (error fast-paths), tagged with its codec."""
    future = loop.create_future()
    future.set_result(response)
    return _Pending({}, future, loop.time(), wire=wire)
