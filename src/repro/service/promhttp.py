"""Prometheus text-format exposition for :class:`ServiceMetrics`.

Two pieces, both dependency-free:

* :func:`render_prometheus` — turn a :class:`~repro.service.metrics.
  ServiceMetrics` into the Prometheus text exposition format (version
  0.0.4).  Counters become ``<ns>_<name>_total``, gauges become
  ``<ns>_<name>``, and the per-operation latency histograms become one
  cumulative ``<ns>_request_latency_seconds`` histogram family with an
  ``op`` label — the native shape for ``histogram_quantile()``.

  The cluster supervisor publishes per-worker health as flat gauges
  (``worker_up_s0r1``, ``worker_epoch_s0r1``); the renderer folds those
  into properly labelled series (``<ns>_worker_up{shard="0",
  replica="1"}``) so dashboards can aggregate across the fleet.

* :class:`MetricsServer` — a tiny asyncio HTTP/1.0 endpoint serving
  ``GET /metrics`` (and a ``GET /healthz`` liveness probe).  It speaks
  just enough HTTP for a Prometheus scraper or ``curl``: one request per
  connection, ``Connection: close``.  Full HTTP frameworks are exactly
  the dependency this repo avoids.
"""

from __future__ import annotations

import asyncio
import logging
import re
from typing import List, Optional, Tuple

from repro.service.metrics import _BUCKET_BOUNDS, ServiceMetrics

logger = logging.getLogger(__name__)

#: Flat per-worker gauges published by the cluster supervisor.
_WORKER_GAUGE = re.compile(r"^worker_(up|epoch)_s(\d+)r(\d+)$")

#: Characters legal in a Prometheus metric name.
_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")


def _fmt(value: float) -> str:
    """Render a sample value: integers bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _name(namespace: str, raw: str) -> str:
    return f"{namespace}_{_NAME_SANITISE.sub('_', raw)}"


def render_prometheus(
    metrics: ServiceMetrics, namespace: str = "repro"
) -> str:
    """Render ``metrics`` in the Prometheus text exposition format."""
    lines: List[str] = []

    counters = sorted(metrics.counters.items())
    for raw, value in counters:
        name = _name(namespace, raw) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(float(value))}")

    worker_series: List[Tuple[str, str, str, float]] = []
    for raw, value in sorted(metrics.gauges.items()):
        worker = _WORKER_GAUGE.match(raw)
        if worker:
            worker_series.append(
                (worker.group(1), worker.group(2), worker.group(3), value)
            )
            continue
        name = _name(namespace, raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for kind in ("up", "epoch"):
        series = [s for s in worker_series if s[0] == kind]
        if not series:
            continue
        name = f"{namespace}_worker_{kind}"
        lines.append(f"# TYPE {name} gauge")
        for _, shard, replica, value in series:
            lines.append(
                f'{name}{{shard="{shard}",replica="{replica}"}} {_fmt(value)}'
            )

    if metrics.latency:
        name = f"{namespace}_request_latency_seconds"
        lines.append(f"# TYPE {name} histogram")
        for op, hist in sorted(metrics.latency.items()):
            cumulative = 0
            for bound, count in zip(_BUCKET_BOUNDS, hist.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{op="{op}",le="{_fmt(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{name}_bucket{{op="{op}",le="+Inf"}} {hist.count}'
            )
            lines.append(f'{name}_sum{{op="{op}"}} {repr(hist.total)}')
            lines.append(f'{name}_count{{op="{op}"}} {hist.count}')

    return "\n".join(lines) + "\n"


_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Minimal asyncio HTTP endpoint: ``GET /metrics`` + ``GET /healthz``."""

    def __init__(
        self,
        metrics: ServiceMetrics,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        namespace: str = "repro",
    ) -> None:
        self.metrics = metrics
        self.host = host
        self.port = port
        self.namespace = namespace
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("metrics server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        host, port = self.address
        logger.info("metrics endpoint on http://%s:%d/metrics", host, port)
        return host, port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "MetricsServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            target = parts[1] if len(parts) > 1 else ""
            # Drain (and ignore) the header block.
            while True:
                line = await asyncio.wait_for(reader.readline(), 10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if method not in ("GET", "HEAD"):
                status, body = "405 Method Not Allowed", "method not allowed\n"
                content_type = "text/plain; charset=utf-8"
            elif target.split("?", 1)[0] == "/metrics":
                status = "200 OK"
                body = render_prometheus(self.metrics, self.namespace)
                content_type = _CONTENT_TYPE
            elif target.split("?", 1)[0] == "/healthz":
                status, body = "200 OK", "ok\n"
                content_type = "text/plain; charset=utf-8"
            else:
                status, body = "404 Not Found", "not found\n"
                content_type = "text/plain; charset=utf-8"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            if method != "HEAD":
                writer.write(payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


__all__ = ["MetricsServer", "render_prometheus"]
