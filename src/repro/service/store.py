"""Read-optimised view of a persisted partition: the serving-side store.

A :class:`PartitionStore` is built once (from an
:class:`~repro.partitioning.assignment.EdgePartition` in memory, or by
opening a :func:`~repro.partitioning.serialization.save_partition`
directory) and then answers routing queries in O(degree) or O(1):

* ``master_of`` / ``replicas_of`` / ``mirrors_of`` — the PowerGraph
  placement from :class:`~repro.runtime.replication.ReplicationTable`;
* ``neighbors`` — fan-out to every partition spanning the vertex and
  merge the per-partition adjacency lists;
* ``owner_of_edge`` — which partition holds an edge;
* ``partition_stats`` / ``stats`` — per-partition and global summaries.

The store is immutable after construction and safe to share across the
asyncio server's tasks (all reads, no locks needed).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.graph.graph import Edge, normalize_edge
from repro.partitioning.assignment import EdgePartition
from repro.runtime.replication import ReplicationTable

PathLike = Union[str, Path]


class PartitionStore:
    """Precomputed routing tables over one edge partition."""

    def __init__(
        self,
        partition: EdgePartition,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self._partition = partition
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._table = ReplicationTable(partition)
        # Per-partition adjacency: _adj[k][v] = neighbours of v inside P_k.
        self._adj: List[Dict[int, Set[int]]] = []
        for k in range(partition.num_partitions):
            adj: Dict[int, Set[int]] = {}
            for u, v in partition.edges_of(k):
                adj.setdefault(u, set()).add(v)
                adj.setdefault(v, set()).add(u)
            self._adj.append(adj)
        self._edge_owner: Dict[Edge, int] = partition.edge_to_partition()

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, directory: PathLike, verify: bool = True) -> "PartitionStore":
        """Open a ``save_partition`` directory (manifest-verified by default)."""
        from repro.partitioning.serialization import (
            load_partition,
            partition_metadata,
        )

        partition = load_partition(directory, verify=verify)
        return cls(partition, metadata=partition_metadata(directory))

    # -- basic shape -------------------------------------------------------

    @property
    def partition(self) -> EdgePartition:
        """The underlying partition (treat as read-only)."""
        return self._partition

    @property
    def num_partitions(self) -> int:
        return self._partition.num_partitions

    @property
    def num_edges(self) -> int:
        return self._partition.num_edges

    @property
    def num_vertices(self) -> int:
        """Vertices covered by at least one edge."""
        return len(self._table.replicas)

    def has_vertex(self, v: int) -> bool:
        """Whether any partition hosts a replica of ``v``."""
        return v in self._table.replicas

    # -- routing -----------------------------------------------------------

    def master_of(self, v: int) -> int:
        """Master partition of ``v``; raises ``KeyError`` if uncovered."""
        return self._table.master[v]

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        """All partitions hosting a replica of ``v`` (sorted)."""
        return self._table.replicas_of(v)

    def mirrors_of(self, v: int) -> Tuple[int, ...]:
        """Non-master replicas of ``v`` (sorted)."""
        master = self.master_of(v)
        return tuple(k for k in self._table.replicas_of(v) if k != master)

    def owner_of_edge(self, u: int, v: int) -> int:
        """Partition holding edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._edge_owner[normalize_edge(u, v)]

    def neighbors(self, v: int) -> Set[int]:
        """Merged neighbour set of ``v`` across all spanning partitions.

        This is the routed equivalent of ``Graph.neighbors``: the caller
        fans out to every replica and unions the partial adjacency lists.
        Raises ``KeyError`` for an uncovered vertex.
        """
        replicas = self._table.replicas.get(v)
        if replicas is None:
            raise KeyError(v)
        merged: Set[int] = set()
        for k in replicas:
            merged |= self._adj[k].get(v, set())
        return merged

    def local_neighbors(self, v: int, k: int) -> Set[int]:
        """Neighbours of ``v`` within partition ``k`` only."""
        return set(self._adj[k].get(v, set()))

    # -- summaries ---------------------------------------------------------

    def partition_stats(self, k: int) -> Dict[str, int]:
        """Edge/vertex/master counts for partition ``k``."""
        if not 0 <= k < self.num_partitions:
            raise KeyError(k)
        vertices = self._adj[k]
        masters = sum(1 for v in vertices if self._table.master[v] == k)
        return {
            "partition": k,
            "edges": len(self._partition.edges_of(k)),
            "vertices": len(vertices),
            "masters": masters,
            "mirrors": len(vertices) - masters,
        }

    def replication_factor(self) -> float:
        """Mean replicas per covered vertex (1.0 for the empty store)."""
        covered = len(self._table.replicas)
        if covered == 0:
            return 1.0
        total = sum(len(r) for r in self._table.replicas.values())
        return total / covered

    def stats(self) -> Dict[str, object]:
        """Global summary used by the ``stats`` query."""
        return {
            "num_partitions": self.num_partitions,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "replication_factor": round(self.replication_factor(), 6),
            "partition_sizes": self._partition.partition_sizes(),
            "metadata": self.metadata,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionStore(p={self.num_partitions}, "
            f"edges={self.num_edges}, vertices={self.num_vertices})"
        )
