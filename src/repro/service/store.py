"""Read-optimised view of a persisted partition: the serving-side store.

A :class:`PartitionStore` is built once (from an
:class:`~repro.partitioning.assignment.EdgePartition` in memory, or by
opening a :func:`~repro.partitioning.serialization.save_partition`
directory) and then answers routing queries in O(degree) or O(1):

* ``master_of`` / ``replicas_of`` / ``mirrors_of`` — the PowerGraph
  placement from :class:`~repro.runtime.replication.ReplicationTable`;
* ``neighbors`` — fan-out to every partition spanning the vertex and
  merge the per-partition adjacency lists;
* ``owner_of_edge`` — which partition holds an edge;
* ``partition_stats`` / ``stats`` — per-partition and global summaries.

The store is immutable after construction and safe to share across the
asyncio server's tasks (all reads, no locks needed).

Two interchangeable backends answer the same queries bit-identically:

* ``dict`` — :class:`PartitionStore` itself: per-partition dict-of-sets
  adjacency plus a :class:`~repro.runtime.replication.ReplicationTable`,
  rebuilt in Python from the edge lists on every open;
* ``csr``  — :class:`CSRPartitionStore`: the flat-array form written by
  ``save_partition`` as a binary sidecar
  (:mod:`repro.partitioning.csr_bundle`), memory-mapped at open time, so
  opening is O(1) Python objects instead of O(edges) — the difference is
  what ``python -m repro.bench serve`` tracks as ``store_open_seconds``.

:meth:`PartitionStore.open` picks the backend: ``"auto"`` (default) uses
the sidecar when the bundle has one, ``"csr"`` requires it, ``"dict"``
forces the legacy path.

Hot re-partitioning is layered on top by :class:`StoreManager`: it owns
the *live* store, stamps every store with a monotonically increasing
**epoch** id, hands out leases (``acquire``/``release`` refcounts) so
requests stay pinned to the store they started on, and swaps in a new
bundle atomically — the old epoch is retired, drains to zero leases, and
only then is its store released.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.graph.graph import Edge, normalize_edge
from repro.partitioning.assignment import EdgePartition
from repro.runtime.replication import ReplicationTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.partitioning.csr_bundle import PartitionCSR
    from repro.service.metrics import ServiceMetrics

PathLike = Union[str, Path]

#: Accepted values for the ``backend=`` option of :meth:`PartitionStore.open`.
BACKENDS = ("auto", "csr", "dict")

#: Batch-answer types: ``(master, replicas)`` and ``(neighbours, replicas)``
#: per vertex, ``None`` where the vertex (or edge) is not in the store.
Route = Optional[Tuple[int, Tuple[int, ...]]]
NeighborRow = Optional[Tuple[List[int], Tuple[int, ...]]]

#: Bound on the memoised ``vertex id -> row`` maps of the CSR backend; the
#: maps are cleared (not LRU-evicted) at the cap, which is cheap and good
#: enough for the power-law workloads the server sees.
_ROW_CACHE_MAX = 1 << 16


def _ragged_take(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all i.

    The flat fancy-index form of a ragged gather: ``repeat``/``cumsum``
    build one index array so a whole batch of variable-length rows is
    pulled out of an (mmap'd) array in a single vectorised pass instead
    of ``len(starts)`` Python-level slices.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.asarray(values)[:0]
    starts = np.asarray(starts, dtype=np.int64)
    cum = np.cumsum(counts)
    flat = np.repeat(starts - (cum - counts), counts) + np.arange(total)
    return np.asarray(values)[flat]


class PartitionStore:
    """Precomputed routing tables over one edge partition."""

    #: Which adjacency layout answers queries ("dict" or "csr").
    backend = "dict"

    def __init__(
        self,
        partition: EdgePartition,
        metadata: Optional[Dict[str, object]] = None,
        epoch: int = 0,
    ) -> None:
        self._partition = partition
        self.metadata: Dict[str, object] = dict(metadata or {})
        #: Deployment generation; 0 until a :class:`StoreManager` adopts
        #: the store and stamps it with its serving epoch.
        self.epoch = epoch
        self._table = ReplicationTable(partition)
        # Per-partition adjacency: _adj[k][v] = neighbours of v inside P_k.
        self._adj: List[Dict[int, Set[int]]] = []
        for k in range(partition.num_partitions):
            adj: Dict[int, Set[int]] = {}
            for u, v in partition.edges_of(k):
                adj.setdefault(u, set()).add(v)
                adj.setdefault(v, set()).add(u)
            self._adj.append(adj)
        self._edge_owner: Dict[Edge, int] = partition.edge_to_partition()

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: PathLike,
        verify: bool = True,
        backend: str = "auto",
    ) -> "PartitionStore":
        """Open a ``save_partition`` directory (manifest-verified by default).

        ``backend`` selects the adjacency layout: ``"auto"`` memory-maps
        the bundle's CSR sidecar when present (falling back to the dict
        path for old bundles), ``"csr"`` requires the sidecar (raising
        ``FileNotFoundError`` without one), and ``"dict"`` always rebuilds
        the legacy dict-of-sets layout from the edge-list text files.  A
        corrupt sidecar raises ``ValueError`` under ``verify=True`` rather
        than silently falling back.
        """
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        from repro.partitioning.serialization import (
            load_partition,
            load_sidecar,
            partition_metadata,
        )

        if backend in ("auto", "csr"):
            try:
                csr = load_sidecar(directory, verify=verify)
            except FileNotFoundError:
                if backend == "csr":
                    raise
            else:
                return CSRPartitionStore(
                    csr, metadata=partition_metadata(directory)
                )
        partition = load_partition(directory, verify=verify)
        return PartitionStore(partition, metadata=partition_metadata(directory))

    # -- basic shape -------------------------------------------------------

    @property
    def partition(self) -> EdgePartition:
        """The underlying partition (treat as read-only)."""
        return self._partition

    @property
    def num_partitions(self) -> int:
        return self._partition.num_partitions

    @property
    def num_edges(self) -> int:
        return self._partition.num_edges

    @property
    def num_vertices(self) -> int:
        """Vertices covered by at least one edge."""
        return len(self._table.replicas)

    def has_vertex(self, v: int) -> bool:
        """Whether any partition hosts a replica of ``v``."""
        return v in self._table.replicas

    # -- routing -----------------------------------------------------------

    def master_of(self, v: int) -> int:
        """Master partition of ``v``; raises ``KeyError`` if uncovered."""
        return self._table.master[v]

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        """All partitions hosting a replica of ``v`` (sorted)."""
        return self._table.replicas_of(v)

    def mirrors_of(self, v: int) -> Tuple[int, ...]:
        """Non-master replicas of ``v`` (sorted)."""
        master = self.master_of(v)
        return tuple(k for k in self.replicas_of(v) if k != master)

    def owner_of_edge(self, u: int, v: int) -> int:
        """Partition holding edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._edge_owner[normalize_edge(u, v)]

    def neighbors(self, v: int) -> Set[int]:
        """Merged neighbour set of ``v`` across all spanning partitions.

        This is the routed equivalent of ``Graph.neighbors``: the caller
        fans out to every replica and unions the partial adjacency lists.
        Raises ``KeyError`` for an uncovered vertex.
        """
        replicas = self._table.replicas.get(v)
        if replicas is None:
            raise KeyError(v)
        merged: Set[int] = set()
        for k in replicas:
            merged |= self._adj[k].get(v, set())
        return merged

    def local_neighbors(self, v: int, k: int) -> Set[int]:
        """Neighbours of ``v`` within partition ``k`` only."""
        return set(self._adj[k].get(v, set()))

    def local_degree(self, v: int, k: int) -> int:
        """Number of partition-``k`` edges incident to ``v`` (0 if absent).

        The graph is simple, so this equals ``len(local_neighbors(v, k))``
        but without materialising the set — the ingest overlay calls it
        once per mutation endpoint.
        """
        return len(self._adj[k].get(v, ()))

    # -- batch routing -----------------------------------------------------
    #
    # One call answers a whole coalesced request batch.  The dict backend
    # keeps these as plain scalar loops: they are the executable
    # specification the vectorised CSR/overlay overrides are pinned
    # against by the parity tests.  A miss yields ``None`` instead of
    # raising so one uncovered vertex cannot poison the rest of a batch.

    def route_many(self, vertices: Sequence[int]) -> List[Route]:
        """``(master, replicas)`` per vertex; ``None`` where uncovered."""
        out: List[Route] = []
        for v in vertices:
            try:
                master = self.master_of(v)
            except KeyError:
                out.append(None)
                continue
            out.append((master, self.replicas_of(v)))
        return out

    def neighbors_many(self, vertices: Sequence[int]) -> List[NeighborRow]:
        """``(sorted neighbours, replicas)`` per vertex; ``None`` on a miss."""
        out: List[NeighborRow] = []
        for v in vertices:
            try:
                merged = sorted(self.neighbors(v))
            except KeyError:
                out.append(None)
                continue
            out.append((merged, self.replicas_of(v)))
        return out

    def owners_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Owning partition per ``(u, v)`` pair; ``None`` where absent."""
        out: List[Optional[int]] = []
        for u, v in pairs:
            try:
                out.append(self.owner_of_edge(u, v))
            except KeyError:
                out.append(None)
        return out

    # -- group-restricted batch routing ------------------------------------
    #
    # The shard-worker read path: a cluster worker owns the contiguous
    # partition group ``[lo, hi)`` and answers only from those adjacency
    # lists; the front-end concatenates the disjoint partial lists it
    # gathers from the shards spanning a vertex.  ``None`` per item means
    # "this group holds nothing for that vertex/edge" — distinct from an
    # empty list, which cannot occur (a replica implies incident edges).

    def group_neighbors_many(
        self, vertices: Sequence[int], lo: int, hi: int
    ) -> List[Optional[List[int]]]:
        """Per vertex: sorted neighbours via partitions in ``[lo, hi)`` only."""
        out: List[Optional[List[int]]] = []
        for v in vertices:
            group = [k for k in self.replicas_of(v) if lo <= k < hi]
            if not group:
                out.append(None)
                continue
            merged: Set[int] = set()
            for k in group:
                merged |= self.local_neighbors(v, k)
            out.append(sorted(merged))
        return out

    def group_owners_many(
        self, pairs: Sequence[Tuple[int, int]], lo: int, hi: int
    ) -> List[Optional[int]]:
        """Owning partition per pair when it lies in ``[lo, hi)``, else None."""
        return [
            owner if owner is not None and lo <= owner < hi else None
            for owner in self.owners_many(pairs)
        ]

    # -- summaries ---------------------------------------------------------

    def partition_stats(self, k: int) -> Dict[str, int]:
        """Edge/vertex/master counts for partition ``k``."""
        if not 0 <= k < self.num_partitions:
            raise KeyError(k)
        vertices = self._adj[k]
        masters = sum(1 for v in vertices if self._table.master[v] == k)
        return {
            "partition": k,
            "edges": len(self._partition.edges_of(k)),
            "vertices": len(vertices),
            "masters": masters,
            "mirrors": len(vertices) - masters,
        }

    def total_replicas(self) -> int:
        """Total replica count over all covered vertices (the RF numerator)."""
        return sum(len(r) for r in self._table.replicas.values())

    def replication_factor(self) -> float:
        """Mean replicas per covered vertex (1.0 for the empty store)."""
        covered = len(self._table.replicas)
        if covered == 0:
            return 1.0
        return self.total_replicas() / covered

    def partition_sizes(self) -> List[int]:
        """``|E(P_k)|`` for each partition."""
        return self._partition.partition_sizes()

    def stats(self) -> Dict[str, object]:
        """Global summary used by the ``stats`` query."""
        return {
            "epoch": self.epoch,
            "backend": self.backend,
            "num_partitions": self.num_partitions,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "replication_factor": round(self.replication_factor(), 6),
            "partition_sizes": self.partition_sizes(),
            "metadata": self.metadata,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(epoch={self.epoch}, p={self.num_partitions}, "
            f"edges={self.num_edges}, vertices={self.num_vertices})"
        )


class CSRPartitionStore(PartitionStore):
    """Routing tables backed by memory-mapped CSR arrays (zero-copy open).

    Answers every :class:`PartitionStore` query from the flat arrays of a
    :class:`~repro.partitioning.csr_bundle.PartitionCSR` — vertex lookups
    are binary searches over the sorted id arrays, adjacency rows are
    array slices, and edge ownership is a binary search inside the owning
    row.  Construction does no per-edge Python work at all, which is the
    point: opening a bundle (or hot-reloading one under load) touches
    O(partitions) Python objects instead of O(edges).
    """

    backend = "csr"

    def __init__(
        self,
        csr: "PartitionCSR",
        metadata: Optional[Dict[str, object]] = None,
        epoch: int = 0,
    ) -> None:
        # Deliberately does not chain to PartitionStore.__init__: there is
        # no EdgePartition to iterate, only arrays to adopt.
        self._csr = csr
        self.metadata = dict(metadata or {})
        self.epoch = epoch
        self._materialized: Optional[EdgePartition] = None
        # Memoised binary-search results.  The store is immutable, so a
        # cached row can never go stale; repeated vertices — hot vertices
        # across requests, duplicates within one batch — skip the
        # searchsorted + int() round-trip entirely.
        self._row_cache: Dict[int, Optional[int]] = {}
        self._local_row_cache: Dict[Tuple[int, int], Optional[int]] = {}

    @classmethod
    def from_partition(
        cls,
        partition: EdgePartition,
        metadata: Optional[Dict[str, object]] = None,
        epoch: int = 0,
    ) -> "CSRPartitionStore":
        """Freeze an in-memory :class:`EdgePartition` into the CSR form."""
        from repro.partitioning.csr_bundle import build_partition_csr

        return cls(build_partition_csr(partition), metadata=metadata, epoch=epoch)

    # -- internal lookups --------------------------------------------------

    def _row(self, v: int) -> Optional[int]:
        """Row of ``v`` in the global vertex table, or None if uncovered."""
        cache = self._row_cache
        try:
            return cache[v]
        except KeyError:
            pass
        ids = self._csr.vertex_ids
        i = int(np.searchsorted(ids, v))
        row = i if i < len(ids) and int(ids[i]) == v else None
        if len(cache) >= _ROW_CACHE_MAX:
            cache.clear()
        cache[v] = row
        return row

    def _local_row(self, v: int, k: int) -> Optional[int]:
        """Row of ``v`` inside partition ``k``'s CSR, or None."""
        cache = self._local_row_cache
        key = (k, v)
        try:
            return cache[key]
        except KeyError:
            pass
        ids = self._csr.parts[k][0]
        i = int(np.searchsorted(ids, v))
        row = i if i < len(ids) and int(ids[i]) == v else None
        if len(cache) >= _ROW_CACHE_MAX:
            cache.clear()
        cache[key] = row
        return row

    def _replicas_at(self, row: int) -> Tuple[int, ...]:
        """Replica set for an already-resolved global row."""
        csr = self._csr
        lo, hi = int(csr.rep_indptr[row]), int(csr.rep_indptr[row + 1])
        return tuple(int(k) for k in csr.rep_parts[lo:hi])

    def _rows_many(self, vs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, found)`` for a batch of vertex ids — one searchsorted."""
        ids = self._csr.vertex_ids
        n = len(ids)
        if n == 0 or vs.size == 0:
            zeros = np.zeros(vs.size, dtype=np.int64)
            return zeros, np.zeros(vs.size, dtype=bool)
        rows = np.minimum(np.searchsorted(ids, vs), n - 1)
        return rows, np.asarray(ids)[rows] == vs

    # -- basic shape -------------------------------------------------------

    @property
    def partition(self) -> EdgePartition:
        """The partition, materialised lazily (expensive; compat only)."""
        if self._materialized is None:
            from repro.partitioning.csr_bundle import csr_to_partition

            self._materialized = csr_to_partition(self._csr)
        return self._materialized

    @property
    def num_partitions(self) -> int:
        return self._csr.num_partitions

    @property
    def num_edges(self) -> int:
        return self._csr.num_edges

    @property
    def num_vertices(self) -> int:
        """Vertices covered by at least one edge."""
        return len(self._csr.vertex_ids)

    def has_vertex(self, v: int) -> bool:
        """Whether any partition hosts a replica of ``v``."""
        return self._row(v) is not None

    # -- routing -----------------------------------------------------------

    def master_of(self, v: int) -> int:
        """Master partition of ``v``; raises ``KeyError`` if uncovered."""
        row = self._row(v)
        if row is None:
            raise KeyError(v)
        return int(self._csr.master[row])

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        """All partitions hosting a replica of ``v`` (sorted)."""
        row = self._row(v)
        if row is None:
            return ()
        return self._replicas_at(row)

    def mirrors_of(self, v: int) -> Tuple[int, ...]:
        """Non-master replicas of ``v`` (sorted) — one row lookup."""
        row = self._row(v)
        if row is None:
            raise KeyError(v)
        master = int(self._csr.master[row])
        return tuple(k for k in self._replicas_at(row) if k != master)

    def owner_of_edge(self, u: int, v: int) -> int:
        """Partition holding edge ``{u, v}``; raises ``KeyError`` if absent."""
        edge = normalize_edge(u, v)
        a, b = edge
        for k in self.replicas_of(a):
            ids, indptr, indices = self._csr.parts[k]
            row = self._local_row(a, k)
            if row is None:  # pragma: no cover - replicas imply presence
                continue
            other = int(np.searchsorted(ids, b))
            if other >= len(ids) or int(ids[other]) != b:
                continue
            lo, hi = int(indptr[row]), int(indptr[row + 1])
            neighbours = indices[lo:hi]  # sorted row
            j = int(np.searchsorted(neighbours, other))
            if j < len(neighbours) and int(neighbours[j]) == other:
                return k
        raise KeyError(edge)

    def neighbors(self, v: int) -> Set[int]:
        """Merged neighbour set of ``v`` across all spanning partitions."""
        row = self._row(v)
        if row is None:
            raise KeyError(v)
        merged: Set[int] = set()
        for k in self._replicas_at(row):
            merged |= self.local_neighbors(v, k)
        return merged

    def local_neighbors(self, v: int, k: int) -> Set[int]:
        """Neighbours of ``v`` within partition ``k`` only."""
        ids, indptr, indices = self._csr.parts[k]
        row = self._local_row(v, k)
        if row is None:
            return set()
        lo, hi = int(indptr[row]), int(indptr[row + 1])
        return {int(x) for x in ids[indices[lo:hi]]}

    def local_degree(self, v: int, k: int) -> int:
        """Number of partition-``k`` edges incident to ``v`` (0 if absent)."""
        _, indptr, _ = self._csr.parts[k]
        row = self._local_row(v, k)
        if row is None:
            return 0
        return int(indptr[row + 1]) - int(indptr[row])

    # -- batch routing -----------------------------------------------------
    #
    # The vectorised counterparts of the scalar spec above: each method
    # resolves the whole batch with one ``np.searchsorted`` over the
    # global vertex table plus one ragged gather per touched partition,
    # instead of per-request binary searches and ``int()`` conversions.

    def route_many(self, vertices: Sequence[int]) -> List[Route]:
        """``(master, replicas)`` per vertex; ``None`` where uncovered."""
        vs = np.asarray(list(vertices), dtype=np.int64)
        out: List[Route] = [None] * vs.size
        rows, found = self._rows_many(vs)
        if not found.any():
            return out
        csr = self._csr
        frows = rows[found]
        masters = np.asarray(csr.master)[frows].tolist()
        starts = np.asarray(csr.rep_indptr)[frows]
        counts = np.asarray(csr.rep_indptr)[frows + 1] - starts
        flat = _ragged_take(csr.rep_parts, starts, counts).tolist()
        counts_list = counts.tolist()
        pos = 0
        for j, i in enumerate(np.flatnonzero(found).tolist()):
            c = counts_list[j]
            out[i] = (masters[j], tuple(flat[pos : pos + c]))
            pos += c
        return out

    def neighbors_many(self, vertices: Sequence[int]) -> List[NeighborRow]:
        """``(sorted neighbours, replicas)`` per vertex; ``None`` on a miss."""
        vs = [int(v) for v in vertices]
        route = self.route_many(vs)
        out: List[NeighborRow] = [None] * len(vs)
        partial: List[List[int]] = [[] for _ in vs]
        by_part: Dict[int, List[int]] = {}
        for i, r in enumerate(route):
            if r is None:
                continue
            for k in r[1]:
                by_part.setdefault(k, []).append(i)
        for k, positions in by_part.items():
            ids_k, indptr_k, indices_k = self._csr.parts[k]
            local_vs = np.asarray([vs[i] for i in positions], dtype=np.int64)
            # Every vertex routed here has a replica in k by construction.
            lrows = np.searchsorted(ids_k, local_vs)
            starts = np.asarray(indptr_k)[lrows]
            counts = np.asarray(indptr_k)[lrows + 1] - starts
            flat_rows = _ragged_take(indices_k, starts, counts)
            flat_ids = (
                np.asarray(ids_k)[flat_rows].tolist() if flat_rows.size else []
            )
            pos = 0
            for i, c in zip(positions, counts.tolist()):
                partial[i].extend(flat_ids[pos : pos + c])
                pos += c
        for i, r in enumerate(route):
            if r is None:
                continue
            merged = partial[i]
            # Each edge lives in exactly one partition and the graph is
            # simple, so the per-partition lists are disjoint: sorting
            # the concatenation *is* the merged neighbour list.
            merged.sort()
            out[i] = (merged, r[1])
        return out

    def owners_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Owning partition per ``(u, v)`` pair; ``None`` where absent."""
        norm = [normalize_edge(u, v) for u, v in pairs]
        out: List[Optional[int]] = [None] * len(norm)
        if not norm:
            return out
        a_route = self.route_many([a for a, _ in norm])
        b_route = self.route_many([b for _, b in norm])
        candidates: Dict[int, List[int]] = {}
        for i, (ra, rb) in enumerate(zip(a_route, b_route)):
            if ra is None or rb is None:
                continue
            # The owner hosts both endpoints: only partitions in the
            # replica intersection can hold the edge (usually just one).
            for k in sorted(set(ra[1]).intersection(rb[1])):
                candidates.setdefault(k, []).append(i)
        for k, positions in candidates.items():
            ids_k, indptr_k, indices_k = self._csr.parts[k]
            a_arr = np.asarray([norm[i][0] for i in positions], dtype=np.int64)
            b_arr = np.asarray([norm[i][1] for i in positions], dtype=np.int64)
            arows = np.searchsorted(ids_k, a_arr)
            brows = np.searchsorted(ids_k, b_arr).tolist()
            starts = np.asarray(indptr_k)[arows].tolist()
            ends = np.asarray(indptr_k)[arows + 1].tolist()
            for i, lo, hi, br in zip(positions, starts, ends, brows):
                if out[i] is not None:
                    continue  # already found: each edge has one owner
                row = indices_k[lo:hi]  # sorted row
                j = int(np.searchsorted(row, br))
                if j < hi - lo and int(row[j]) == br:
                    out[i] = k
        return out

    def group_neighbors_many(
        self, vertices: Sequence[int], lo: int, hi: int
    ) -> List[Optional[List[int]]]:
        """Per vertex: sorted neighbours via partitions in ``[lo, hi)`` only.

        Same ragged-gather shape as :meth:`neighbors_many`, with the
        fan-out clipped to the worker's partition group — still one
        ``searchsorted`` + gather per *touched* partition for the whole
        batch.
        """
        vs = [int(v) for v in vertices]
        route = self.route_many(vs)
        out: List[Optional[List[int]]] = [None] * len(vs)
        partial: List[List[int]] = [[] for _ in vs]
        hit = [False] * len(vs)
        by_part: Dict[int, List[int]] = {}
        for i, r in enumerate(route):
            if r is None:
                continue
            for k in r[1]:
                if lo <= k < hi:
                    hit[i] = True
                    by_part.setdefault(k, []).append(i)
        for k, positions in by_part.items():
            ids_k, indptr_k, indices_k = self._csr.parts[k]
            local_vs = np.asarray([vs[i] for i in positions], dtype=np.int64)
            lrows = np.searchsorted(ids_k, local_vs)
            starts = np.asarray(indptr_k)[lrows]
            counts = np.asarray(indptr_k)[lrows + 1] - starts
            flat_rows = _ragged_take(indices_k, starts, counts)
            flat_ids = (
                np.asarray(ids_k)[flat_rows].tolist() if flat_rows.size else []
            )
            pos = 0
            for i, c in zip(positions, counts.tolist()):
                partial[i].extend(flat_ids[pos : pos + c])
                pos += c
        for i, got in enumerate(hit):
            if got:
                # Disjoint per-partition lists: sort of the concatenation
                # is the merged group-local neighbour list.
                partial[i].sort()
                out[i] = partial[i]
        return out

    # -- summaries ---------------------------------------------------------

    def partition_stats(self, k: int) -> Dict[str, int]:
        """Edge/vertex/master counts for partition ``k``."""
        if not 0 <= k < self.num_partitions:
            raise KeyError(k)
        csr = self._csr
        ids, _, indices = csr.parts[k]
        vertices = len(ids)
        if vertices:
            rows = np.searchsorted(csr.vertex_ids, ids)
            masters = int(np.count_nonzero(csr.master[rows] == k))
        else:
            masters = 0
        return {
            "partition": k,
            "edges": len(indices) // 2,
            "vertices": vertices,
            "masters": masters,
            "mirrors": vertices - masters,
        }

    def partition_sizes(self) -> List[int]:
        """``|E(P_k)|`` for each partition."""
        return [len(indices) // 2 for _, _, indices in self._csr.parts]

    def total_replicas(self) -> int:
        """Total replica count over all covered vertices (the RF numerator)."""
        return len(self._csr.rep_parts)

    def replication_factor(self) -> float:
        """Mean replicas per covered vertex (1.0 for the empty store)."""
        covered = len(self._csr.vertex_ids)
        if covered == 0:
            return 1.0
        return self.total_replicas() / covered


# -- hot re-partitioning ----------------------------------------------------


class ReloadError(RuntimeError):
    """A hot reload could not be applied; the live epoch is unchanged."""


class ReloadInProgress(ReloadError):
    """A reload was requested while another build is still running."""


class BundleValidationError(ReloadError):
    """The candidate store failed sanity checks against the live epoch."""


class StoreManager:
    """Owns the live :class:`PartitionStore` and swaps replacements in.

    The manager is the concurrency boundary for hot re-partitioning:

    * ``acquire()`` hands out ``(store, epoch)`` leases; a request pinned
      to an epoch keeps reading the store it started on even if a swap
      lands mid-flight.  ``release(epoch)`` returns the lease.
    * ``reload()`` builds a new store from a ``save_partition`` bundle
      **off the event loop** (executor thread), validates it against the
      live epoch, flips it in atomically, then waits for the retired
      epoch to drain (lease count → 0) before the old store is dropped.
    * Exactly one build runs at a time; a second ``reload`` is rejected
      with :class:`ReloadInProgress` (the reject-during-build policy).

    Lease bookkeeping is plain integers: like the rest of the service it
    is single-event-loop code (``reload_sync`` exists for in-process,
    single-threaded use such as the bench driver and tests).
    """

    def __init__(
        self,
        store: PartitionStore,
        *,
        metrics: Optional["ServiceMetrics"] = None,
        allow_partition_count_change: bool = False,
        drain_timeout: float = 30.0,
        backend: str = "auto",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.metrics = metrics
        self.allow_partition_count_change = allow_partition_count_change
        self.drain_timeout = drain_timeout
        #: Backend every reload opens replacement bundles with.
        self.backend = backend
        #: Optional decorator applied to every store the manager builds
        #: (the live one via :meth:`wrap_live`, replacements in
        #: :meth:`_build`).  The ingest layer uses it to re-wrap each new
        #: epoch in a fresh :class:`~repro.service.ingest.DeltaOverlay`.
        self.wrap: Optional[Callable[[PartitionStore], PartitionStore]] = None
        if store.epoch == 0:
            store.epoch = 1
        self._store = store
        self._leases: Dict[int, int] = {}
        #: Retired epochs still holding leases: epoch -> (store, event|None).
        self._retired: Dict[
            int, Tuple[PartitionStore, Optional[asyncio.Event]]
        ] = {}
        self._reloading = False
        self._set_gauge("epoch", store.epoch)

    # -- live view ---------------------------------------------------------

    @property
    def store(self) -> PartitionStore:
        """The store serving the live epoch."""
        return self._store

    @property
    def epoch(self) -> int:
        """The live epoch id (increments by one per successful swap)."""
        return self._store.epoch

    @property
    def reloading(self) -> bool:
        """Whether a build is currently in flight."""
        return self._reloading

    # -- leases ------------------------------------------------------------

    def acquire(self) -> Tuple[PartitionStore, int]:
        """Pin the live store: returns ``(store, epoch)``, refcount +1."""
        store = self._store
        epoch = store.epoch
        self._leases[epoch] = self._leases.get(epoch, 0) + 1
        return store, epoch

    def release(self, epoch: int) -> None:
        """Return a lease taken with :meth:`acquire`."""
        count = self._leases.get(epoch, 0) - 1
        if count < 0:  # pragma: no cover - a double release is a bug
            raise RuntimeError(f"lease underflow for epoch {epoch}")
        if count:
            self._leases[epoch] = count
            return
        self._leases.pop(epoch, None)
        retired = self._retired.pop(epoch, None)
        if retired is not None:
            _store, event = retired
            if self.metrics is not None:
                self.metrics.inc("epochs_retired")
            if event is not None:
                event.set()

    def active_leases(self, epoch: Optional[int] = None) -> int:
        """Outstanding leases for ``epoch`` (or across all epochs)."""
        if epoch is not None:
            return self._leases.get(epoch, 0)
        return sum(self._leases.values())

    def retired_epochs(self) -> Tuple[int, ...]:
        """Epochs that were swapped out but still hold leases."""
        return tuple(sorted(self._retired))

    # -- validation --------------------------------------------------------

    def validate(self, candidate: PartitionStore) -> None:
        """Sanity-check a candidate store against the live epoch.

        Raises :class:`BundleValidationError` on an empty store, a
        partition-count change (unless allowed), or a nonsensical
        replication factor — the cheap invariants that catch a wrong or
        torn bundle before it starts serving.
        """
        if candidate.num_partitions < 1:
            raise BundleValidationError("candidate has no partitions")
        if candidate.num_edges < 1:
            raise BundleValidationError("candidate holds no edges")
        live = self._store
        if (
            not self.allow_partition_count_change
            and candidate.num_partitions != live.num_partitions
        ):
            raise BundleValidationError(
                f"partition count changed {live.num_partitions} -> "
                f"{candidate.num_partitions}; pass "
                "allow_partition_count_change=True to permit"
            )
        rf = candidate.replication_factor()
        if not rf >= 1.0:  # also catches NaN
            raise BundleValidationError(f"replication factor {rf!r} is invalid")

    # -- swapping ----------------------------------------------------------

    def install(self, candidate: PartitionStore) -> Dict[str, object]:
        """Validate and atomically flip ``candidate`` in as the new epoch.

        Synchronous and atomic from the event loop's point of view: the
        epoch stamp, the swap, and the retire of the old epoch happen
        with no awaits in between.  Returns a summary dict; the retired
        store is dropped as soon as its lease count reaches zero.
        """
        self.validate(candidate)
        old = self._store
        candidate.epoch = old.epoch + 1
        self._store = candidate
        pinned = self._leases.get(old.epoch, 0)
        if pinned:
            try:
                asyncio.get_running_loop()
                event: Optional[asyncio.Event] = asyncio.Event()
            except RuntimeError:  # sync caller: freed on last release, no wait
                event = None
            self._retired[old.epoch] = (old, event)
        if self.metrics is not None:
            self.metrics.inc("reloads_ok")
            self._set_gauge("epoch", candidate.epoch)
        return {
            "epoch": candidate.epoch,
            "previous_epoch": old.epoch,
            "pinned_to_previous": pinned,
            "backend": candidate.backend,
            "num_partitions": candidate.num_partitions,
            "num_edges": candidate.num_edges,
            "replication_factor": round(candidate.replication_factor(), 6),
        }

    def _build(self, directory: PathLike, verify: bool) -> PartitionStore:
        store = PartitionStore.open(directory, verify=verify, backend=self.backend)
        if self.wrap is not None:
            store = self.wrap(store)
        return store

    def wrap_live(
        self, wrapper: Callable[[PartitionStore], PartitionStore]
    ) -> PartitionStore:
        """Decorate the live store in place and every future build.

        Must run before the manager starts handing out leases (server
        start-up): the live store is replaced under the same epoch, so a
        request pinned to the bare store would otherwise keep seeing it.
        Returns the wrapped live store.
        """
        if self.active_leases():
            raise RuntimeError("cannot wrap the live store while leases are out")
        self.wrap = wrapper
        epoch = self._store.epoch
        wrapped = wrapper(self._store)
        wrapped.epoch = epoch
        self._store = wrapped
        return wrapped

    async def reload(
        self, directory: PathLike, *, verify: bool = True
    ) -> Dict[str, object]:
        """Hot-swap the bundle at ``directory`` in; returns a summary.

        The store is built in an executor thread so the event loop keeps
        serving the old epoch during the build.  After the atomic flip
        the call waits (up to ``drain_timeout``) for every request pinned
        to the old epoch to finish: ``drained`` in the result is the
        number of in-flight requests that were still reading the old
        store when the flip landed.
        """
        if self._reloading:
            self._count_failure("reloads_rejected")
            raise ReloadInProgress("another reload is already building")
        self._reloading = True
        started = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            try:
                candidate = await loop.run_in_executor(
                    None, self._build, directory, verify
                )
            except Exception as exc:  # noqa: BLE001 — any corrupt bundle
                self._count_failure("reloads_failed")
                raise ReloadError(f"cannot open bundle {directory}: {exc}") from exc
            try:
                info = self.install(candidate)
            except BundleValidationError:
                self._count_failure("reloads_failed")
                raise
            build_seconds = time.perf_counter() - started
            drained = int(info["pinned_to_previous"])
            retired = self._retired.get(info["previous_epoch"])
            if retired is not None and retired[1] is not None:
                try:
                    await asyncio.wait_for(
                        retired[1].wait(), self.drain_timeout
                    )
                except asyncio.TimeoutError:
                    info["drain_timed_out"] = True
            info["drained"] = drained
            info["build_seconds"] = round(build_seconds, 6)
            if self.metrics is not None:
                self.metrics.observe("reload_build", build_seconds)
                self.metrics.observe(
                    "reload_swap", time.perf_counter() - started
                )
                self.metrics.inc("queries_drained", drained)
            return info
        finally:
            self._reloading = False

    def reload_sync(
        self, directory: PathLike, *, verify: bool = True
    ) -> Dict[str, object]:
        """Blocking counterpart of :meth:`reload` for in-process use.

        Builds in the calling thread; with single-threaded callers there
        are no leases pinned across the call, so no drain wait is needed
        (a still-pinned old epoch is simply retired and freed on its last
        ``release``).
        """
        if self._reloading:
            self._count_failure("reloads_rejected")
            raise ReloadInProgress("another reload is already building")
        self._reloading = True
        started = time.perf_counter()
        try:
            try:
                candidate = self._build(directory, verify)
            except Exception as exc:  # noqa: BLE001 — any corrupt bundle
                self._count_failure("reloads_failed")
                raise ReloadError(f"cannot open bundle {directory}: {exc}") from exc
            try:
                info = self.install(candidate)
            except BundleValidationError:
                self._count_failure("reloads_failed")
                raise
            build_seconds = time.perf_counter() - started
            info["drained"] = int(info["pinned_to_previous"])
            info["build_seconds"] = round(build_seconds, 6)
            if self.metrics is not None:
                self.metrics.observe("reload_build", build_seconds)
                self.metrics.inc("queries_drained", info["drained"])
            return info
        finally:
            self._reloading = False

    # -- metrics glue ------------------------------------------------------

    def _set_gauge(self, name: str, value: float) -> None:
        if self.metrics is not None and hasattr(self.metrics, "set_gauge"):
            self.metrics.set_gauge(name, value)

    def _count_failure(self, counter: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(counter)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StoreManager(epoch={self.epoch}, leases={self.active_leases()}, "
            f"retired={list(self.retired_epochs())})"
        )
