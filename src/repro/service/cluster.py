"""Multi-process sharded serving: workers, replicas, failover, epoch swap.

The single-process :class:`~repro.service.server.PartitionServer` hosts
every partition behind one GIL.  This module shards the store across
worker *processes* and keeps the wire protocol unchanged::

                        client (TCP, unchanged protocol)
                          |
              +-----------v-----------+
              |  front-end            |   PartitionServer + ClusterHandler
              |  (routing store mmap) |   routes from its own adjacency.csr
              +--+--------+--------+--+
                 | unix    | unix   | unix     one shard_query frame per
              +--v--+   +--v--+  +--v--+       worker per dispatcher flush
              | s0  |   | s1  |  | s2  |       (vectorised group sweep)
              | r0 r1|  | r0 r1| | r0 r1|      replicas per shard
              +-----+   +-----+  +-----+

* **Workers** — the supervisor spawns ``workers × replicas`` processes
  (``multiprocessing`` *spawn* context: no forked event-loop or thread
  state leaks into the children).  Each worker memory-maps its own view
  of the bundle's ``adjacency.csr`` sidecar and serves the contiguous
  partition group ``[floor(s·p/W), floor((s+1)·p/W))`` over a UNIX
  socket, through a stock :class:`PartitionServer` — same framing, same
  batching, same lease discipline as the TCP front door.
* **Scatter-gather** — the front-end answers ``ping``/``master``/
  ``stats`` locally from its routing arrays, and turns each dispatcher
  flush of ``neighbors``/``edge``/``partition_stats`` reads into at most
  one ``shard_query`` frame per worker: the worker answers its whole
  sub-batch with one vectorised group-restricted sweep
  (:meth:`~repro.service.store.PartitionStore.group_neighbors_many`).
  Per-partition adjacency lists are disjoint, so merging shard partials
  is a concatenate + sort — answers are bit-identical to single-process
  serving.
* **Pre-encoded splicing** — internal worker links speak the binary
  wire codec by default (``wire="binary"``), and ``shard_query`` then
  asks for *pre-encoded* neighbour partials: the worker encodes each
  partial once (:func:`~repro.service.protocol.encode_int_run`) and the
  front-end splices a single-shard partial verbatim into the outgoing
  response frame as a :class:`~repro.service.protocol.PreEncoded` value
  — no decode/re-encode round-trip on the hot path.  Only vertices
  whose replicas span multiple shards (or mixed-codec fallbacks) pay
  the decode-merge-sort, and cross-shard reductions like ``stats``
  always do.  The canonical binary encoding makes spliced bytes
  indistinguishable from freshly encoded ones, so answers stay
  bit-identical either way.
* **Replicas & failover** — every shard has ``replicas`` identical
  workers (the PR 2 deterministic master tie-break makes any process
  over the same bundle a valid read replica).  A shard call walks the
  replica ring, marks a worker down on a transport error, and retries
  the ring (with backoff) until ``failover_timeout``; only then does the
  *request* fail, with the retryable ``unavailable`` code — a read is
  never answered wrongly, only late or not at all.
* **Supervision** — a health loop pings every worker
  (``worker_up_s{s}r{r}`` / ``worker_epoch_s{s}r{r}`` gauges) and
  respawns dead processes against the *current* bundle and epoch.
* **Coordinated swap** — ``reload`` is intercepted by the front-end's
  :class:`ClusterStoreManager` and runs as a two-phase commit: *prepare*
  (open + validate, hold staged) on every live worker, then *commit*
  (install, one epoch for the whole cluster) — any prepare failure
  aborts all stages and the old epoch keeps serving.  The front-end's
  own lease machinery pins in-flight requests to the epoch they were
  admitted under, and workers retain each previous epoch's store until
  the front-end's old-epoch leases drain (``release_epoch``) — zero
  dropped queries, zero mixed-generation answers.

Cluster mode is read-only: the WAL/overlay ingest path stays a
single-process feature (mutations answer ``bad_request`` exactly like a
server without ``--wal``).
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from bisect import bisect_right
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import normalize_edge
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.handler import (
    OPERATIONS,
    ServiceHandler,
    _BadArgs,
    _int_arg,
    _str_arg,
    count_shared_response,
)
from repro.service.metrics import ServiceMetrics
from repro.service.server import PartitionServer
from repro.service.store import (
    BundleValidationError,
    PartitionStore,
    ReloadError,
    ReloadInProgress,
    StoreManager,
)

logger = logging.getLogger(__name__)

#: Cluster-internal operations the shard workers answer on top of the
#: public protocol (never exposed on the front door).
SHARD_OPS = (
    "shard_query",
    "prepare",
    "commit",
    "abort",
    "release_epoch",
    "worker_info",
)

#: Public ops the front-end scatters to workers; everything else in
#: OPERATIONS is answered locally or rejected.
_SCATTER_OPS = frozenset({"neighbors", "edge", "partition_stats"})

#: How many retired epoch stores a worker keeps at most.  Normally one
#: (released as soon as the front-end's old-epoch leases drain); the cap
#: only matters when a drain times out repeatedly.
_MAX_RETAINED = 4

_INGEST_DISABLED = "ingest is not enabled on this server (serve --wal)"


def shard_bounds(num_partitions: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous partition groups: shard ``i`` owns ``[i·p/W, (i+1)·p/W)``.

    The floor split is the standard balanced contiguous assignment: every
    group differs in size by at most one partition and the union covers
    ``range(num_partitions)`` exactly.
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return [
        (i * num_partitions // workers, (i + 1) * num_partitions // workers)
        for i in range(workers)
    ]


class ClusterError(RuntimeError):
    """A cluster-level operation failed (startup, supervision, swap)."""


class ShardUnavailable(ClusterError):
    """Every replica of a shard failed within the failover window."""

    def __init__(self, shard: int, cause: Optional[BaseException]) -> None:
        super().__init__(f"shard {shard} unavailable: {cause}")
        self.shard = shard
        self.cause = cause


class _StaleEpoch(Exception):
    """A shard sub-query named an epoch this worker does not retain."""


# -- worker side ------------------------------------------------------------


class ShardWorkerHandler(ServiceHandler):
    """A :class:`ServiceHandler` plus the cluster-internal shard ops.

    Runs inside a worker process.  Public ops keep working unchanged
    (useful for debugging a worker directly over its socket); the shard
    ops answer group-restricted batch reads and drive the two-phase
    epoch swap:

    * ``shard_query`` — one vectorised sweep over this worker's
      partition group for a whole front-end flush (``neighbors`` partial
      lists, ``owners`` for edges, ``stats`` for partitions), pinned to
      an explicit epoch;
    * ``prepare`` — open + validate a candidate bundle, hold it staged;
    * ``commit`` — install the staged store under the cluster-wide epoch
      number, retaining the previous store until ``release_epoch``;
    * ``abort`` — drop the staged store;
    * ``worker_info`` — identity/health (shard, replica, group, epoch).
    """

    def __init__(
        self,
        store: PartitionStore,
        metrics: Optional[ServiceMetrics] = None,
        *,
        group: Tuple[int, int],
        shard: int,
        replica: int,
        backend: str = "auto",
    ) -> None:
        super().__init__(store, metrics)
        self.group = group
        self.shard = shard
        self.replica = replica
        self.backend = backend
        self._staged: Optional[PartitionStore] = None
        #: Previous-epoch stores still queryable: epoch -> store.  Kept
        #: until the front-end's old-epoch leases drain (release_epoch).
        self._retained: "OrderedDict[int, PartitionStore]" = OrderedDict()

    def execute(
        self,
        request: Dict[str, Any],
        lease: Optional[Tuple[PartitionStore, int]] = None,
    ) -> Dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str) or op not in SHARD_OPS:
            return super().execute(request, lease)
        request_id = request.get("id")
        args = request.get("args") or {}
        owned = lease is None
        store, epoch = lease if lease is not None else self.manager.acquire()
        try:
            if not isinstance(args, dict):
                raise _BadArgs("args must be an object")
            result = self._dispatch_shard(op, args, store, epoch)
        except _BadArgs as exc:
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id, protocol.BAD_REQUEST, str(exc), epoch=epoch
            )
        except _StaleEpoch as exc:
            self.metrics.inc("requests_stale_epoch")
            return protocol.error_response(
                request_id,
                protocol.STALE_EPOCH,
                str(exc),
                epoch=self.manager.epoch,
            )
        except KeyError as exc:
            self.metrics.inc("requests_not_found")
            return protocol.error_response(
                request_id,
                protocol.NOT_FOUND,
                f"not in store: {exc.args[0]!r}",
                epoch=epoch,
            )
        except ReloadError as exc:  # includes BundleValidationError
            self.metrics.inc("reloads_failed")
            return protocol.error_response(
                request_id,
                protocol.RELOAD_FAILED,
                str(exc),
                epoch=self.manager.epoch,
            )
        except Exception as exc:  # noqa: BLE001 — fault barrier at the edge
            self.metrics.inc("requests_internal_error")
            return protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
                epoch=epoch,
            )
        finally:
            if owned:
                self.manager.release(epoch)
        self.metrics.inc("requests_ok")
        self.metrics.inc(f"op_{op}")
        # A commit answers with the epoch it installed, like reload does.
        out_epoch = self.manager.epoch if op == "commit" else epoch
        return protocol.ok_response(request_id, result, epoch=out_epoch)

    # -- shard op dispatch -------------------------------------------------

    def _dispatch_shard(
        self,
        op: str,
        args: Dict[str, Any],
        store: PartitionStore,
        epoch: int,
    ) -> Dict[str, Any]:
        lo, hi = self.group
        if op == "worker_info":
            return {
                "shard": self.shard,
                "replica": self.replica,
                "group": [lo, hi],
                "epoch": self.manager.epoch,
                "staged": self._staged is not None,
                "retained": sorted(self._retained),
                "pid": os.getpid(),
            }
        if op == "shard_query":
            return self._shard_query(args, store, epoch)
        if op == "prepare":
            directory = _str_arg(args, "directory")
            candidate = PartitionStore.open(
                directory,
                verify=bool(args.get("verify", True)),
                backend=self.backend,
            )
            self.manager.validate(candidate)
            self._staged = candidate
            self.metrics.inc("shard_prepares")
            return {
                "staged": True,
                "num_partitions": candidate.num_partitions,
                "num_edges": candidate.num_edges,
            }
        if op == "commit":
            new_epoch = _int_arg(args, "epoch")
            if self._staged is None:
                raise ReloadError("nothing staged to commit")
            staged, self._staged = self._staged, None
            old = self.manager.store
            info = self.manager.install(staged)
            if self.manager.store.epoch != new_epoch:
                # A respawned worker restarts local numbering at its spec
                # epoch; force-align with the cluster-wide number so every
                # worker answers the same generation under the same id.
                self.manager.store.epoch = new_epoch
                info["epoch"] = new_epoch
            self._retained[int(old.epoch)] = old
            while len(self._retained) > _MAX_RETAINED:
                self._retained.popitem(last=False)
            self.metrics.inc("shard_commits")
            return info
        if op == "abort":
            had = self._staged is not None
            self._staged = None
            self.metrics.inc("shard_aborts")
            return {"aborted": had}
        if op == "release_epoch":
            released = self._retained.pop(_int_arg(args, "epoch"), None)
            return {"released": released is not None}
        raise _BadArgs(f"unknown op {op!r}")  # pragma: no cover - guarded

    def _shard_query(
        self, args: Dict[str, Any], store: PartitionStore, epoch: int
    ) -> Dict[str, Any]:
        want = _int_arg(args, "epoch")
        target = self._store_for_epoch(want, store, epoch)
        lo, hi = self.group
        nq = args.get("neighbors") or []
        oq = args.get("owners") or []
        sq = args.get("stats") or []
        if (
            not isinstance(nq, list)
            or not isinstance(oq, list)
            or not isinstance(sq, list)
        ):
            raise _BadArgs("neighbors/owners/stats must be arrays")
        result: Dict[str, Any] = {"epoch": want, "shard": self.shard}
        try:
            if nq:
                partials = target.group_neighbors_many(
                    [int(v) for v in nq], lo, hi
                )
                if args.get("encoded"):
                    # Pre-encode each partial once; the front-end splices
                    # single-shard partials verbatim into its response
                    # frame.  Only meaningful over a binary link — the
                    # front-end clears the flag on a downgraded client.
                    result["neighbors_wire"] = [
                        None if p is None else protocol.encode_int_run(p)
                        for p in partials
                    ]
                else:
                    result["neighbors"] = partials
            if oq:
                result["owners"] = target.group_owners_many(
                    [(int(u), int(v)) for u, v in oq], lo, hi
                )
            if sq:
                stats: List[Optional[Dict[str, int]]] = []
                for raw in sq:
                    k = int(raw)
                    stats.append(
                        target.partition_stats(k) if lo <= k < hi else None
                    )
                result["stats"] = stats
        except (TypeError, ValueError) as exc:
            raise _BadArgs(f"malformed shard_query payload: {exc}") from exc
        self.metrics.inc("shard_query_items", len(nq) + len(oq) + len(sq))
        return result

    def _store_for_epoch(
        self, want: int, store: PartitionStore, epoch: int
    ) -> PartitionStore:
        if want == epoch:
            return store
        if want == self.manager.epoch:
            return self.manager.store
        retained = self._retained.get(want)
        if retained is None:
            raise _StaleEpoch(
                f"worker s{self.shard}r{self.replica} serves epoch "
                f"{self.manager.epoch}, not {want}"
            )
        return retained


def worker_main(spec: Dict[str, Any]) -> None:
    """Entry point of one worker process (``spawn`` target; picklable).

    Opens its own memory-map of the bundle in ``spec["directory"]``,
    stamps the cluster-assigned epoch, and serves the partition group
    over the UNIX socket in ``spec["socket_path"]`` until SIGTERM/SIGINT
    (graceful drain through ``PartitionServer.stop``).
    """
    logging.basicConfig(level=logging.WARNING)
    try:
        asyncio.run(_worker_async_main(spec))
    except KeyboardInterrupt:  # pragma: no cover - race on double signal
        pass


async def _worker_async_main(spec: Dict[str, Any]) -> None:
    backend = str(spec.get("backend", "auto"))
    store = PartitionStore.open(
        spec["directory"],
        verify=bool(spec.get("verify", True)),
        backend=backend,
    )
    store.epoch = int(spec["epoch"])
    handler = ShardWorkerHandler(
        store,
        group=(int(spec["group_lo"]), int(spec["group_hi"])),
        shard=int(spec["shard"]),
        replica=int(spec["replica"]),
        backend=backend,
    )
    path = str(spec["socket_path"])
    if os.path.exists(path):
        os.unlink(path)  # a SIGKILLed predecessor leaves its socket behind
    server = PartitionServer(
        handler=handler,
        path=path,
        allow_reload=False,  # swaps arrive as prepare/commit, never reload
        batch_window=0.0,  # the front-end already batches per flush
        max_batch=int(spec.get("max_batch", 64)),
        max_queue=int(spec.get("max_queue", 1024)),
        request_timeout=float(spec.get("request_timeout", 30.0)),
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await server.start()
    try:
        await stop.wait()
    finally:
        await server.stop()


# -- front-end: worker handles, shard groups, supervisor --------------------


class _WorkerHandle:
    """One worker process + its pipelined client + health state."""

    __slots__ = (
        "spec",
        "process",
        "client",
        "up",
        "epoch",
        "last_respawn",
        "_ctx",
        "_call_timeout",
        "_wire",
    )

    def __init__(
        self,
        spec: Dict[str, Any],
        ctx: Any,
        call_timeout: float,
        wire: str = protocol.WIRE_BINARY,
    ) -> None:
        self.spec = spec
        self.process: Optional[Any] = None
        self.client: Optional[ServiceClient] = None
        self.up = False
        self.epoch: Optional[int] = None
        self.last_respawn = 0.0
        self._ctx = ctx
        self._call_timeout = call_timeout
        self._wire = wire

    @property
    def name(self) -> str:
        return f"s{self.spec['shard']}r{self.spec['replica']}"

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def spawn(self) -> None:
        self.process = self._ctx.Process(
            target=worker_main,
            args=(dict(self.spec),),
            name=f"repro-worker-{self.name}",
            daemon=True,
        )
        self.process.start()

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    async def call(self, op: str, **args: Any) -> Dict[str, Any]:
        if self.client is None:
            # No transparent retries: the shard group owns failover.
            self.client = ServiceClient(
                path=str(self.spec["socket_path"]),
                max_retries=0,
                call_timeout=self._call_timeout,
                wire=self._wire,
            )
        if args.get("encoded"):
            # Pre-encoded partials are bytes — only a binary link can
            # carry them.  Negotiation happens on first connect; if this
            # link downgraded to JSON, fall back to plain partials.
            if self.client.wire_active is None:
                await self.client.connect()
            if self.client.wire_active != protocol.WIRE_BINARY:
                args = dict(args, encoded=False)
        return await self.client.call(op, **args)

    async def drop_client(self) -> None:
        if self.client is not None:
            client, self.client = self.client, None
            await client.close()


#: Transport-level failures a shard call treats as "this replica is down".
_TRANSPORT_ERRORS = (
    OSError,  # includes ConnectionError, FileNotFoundError on the socket
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    protocol.ProtocolError,
)


class _ShardGroup:
    """The replica ring of one shard, with health-checked failover.

    A call walks the ring starting at the preferred (last known good)
    replica; transport failures and ``stale_epoch`` answers mark the
    replica down and move on.  When a full ring pass fails the group
    backs off briefly (the supervisor may be respawning a worker) and
    tries again until ``failover_timeout`` — then, and only then, the
    caller sees :class:`ShardUnavailable`.
    """

    __slots__ = ("shard", "bounds", "handles", "metrics", "failover_timeout", "_preferred")

    def __init__(
        self,
        shard: int,
        bounds: Tuple[int, int],
        handles: List[_WorkerHandle],
        metrics: ServiceMetrics,
        *,
        failover_timeout: float,
    ) -> None:
        self.shard = shard
        self.bounds = bounds
        self.handles = handles
        self.metrics = metrics
        self.failover_timeout = failover_timeout
        self._preferred = 0

    async def call(self, op: str, **args: Any) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.failover_timeout
        last_exc: Optional[BaseException] = None
        delay = 0.02
        while True:
            n = len(self.handles)
            for offset in range(n):
                idx = (self._preferred + offset) % n
                handle = self.handles[idx]
                try:
                    result = await handle.call(op, **args)
                except ServiceError as exc:
                    if exc.code != protocol.STALE_EPOCH:
                        raise  # semantic error: the answer, not a failure
                    # Wrong generation (respawn racing a swap): another
                    # replica, or the next health round, resolves it.
                    last_exc = exc
                    self._mark_down(handle)
                    continue
                except _TRANSPORT_ERRORS as exc:
                    last_exc = exc
                    self._mark_down(handle)
                    await handle.drop_client()
                    continue
                if offset:
                    self.metrics.inc("failovers")
                    self._preferred = idx
                handle.up = True
                return result
            now = loop.time()
            if now >= deadline:
                self.metrics.inc("shard_unavailable_errors")
                raise ShardUnavailable(self.shard, last_exc)
            await asyncio.sleep(min(delay, deadline - now))
            delay = min(delay * 2.0, 0.25)

    def _mark_down(self, handle: _WorkerHandle) -> None:
        if handle.up:
            self.metrics.inc("workers_marked_down")
        handle.up = False


class ClusterStoreManager(StoreManager):
    """The front-end's :class:`StoreManager` over its routing store.

    Reuses the whole lease/epoch machinery — admission pinning, retired
    epoch drain barrier, install validation — but ``reload`` runs the
    cluster's two-phase coordinated swap instead of a local build.
    """

    def __init__(
        self, store: PartitionStore, cluster: "PartitionCluster", **kwargs: Any
    ) -> None:
        super().__init__(store, **kwargs)
        self._cluster = cluster

    async def reload(
        self, directory: Any, *, verify: bool = True
    ) -> Dict[str, object]:
        return await self._cluster.coordinated_reload(directory, verify=verify)

    def reload_sync(
        self, directory: Any, *, verify: bool = True
    ) -> Dict[str, object]:
        raise ReloadError(
            "coordinated cluster reloads are async-only; "
            "send a reload request to the front-end"
        )


class PartitionCluster:
    """Supervisor + router for ``workers × replicas`` shard processes.

    Owns the worker processes, the per-shard failover groups, the health
    loop, and the front-end's own routing store (wrapped in a
    :class:`ClusterStoreManager` so the server's admission leases and
    the coordinated swap share one epoch authority).
    """

    def __init__(
        self,
        directory: Any,
        *,
        workers: int,
        replicas: int = 1,
        backend: str = "auto",
        verify: bool = True,
        metrics: Optional[ServiceMetrics] = None,
        socket_dir: Optional[str] = None,
        failover_timeout: float = 5.0,
        worker_call_timeout: float = 10.0,
        health_interval: float = 0.25,
        respawn_backoff: float = 1.0,
        spawn_timeout: float = 60.0,
        drain_timeout: float = 10.0,
        worker_request_timeout: float = 30.0,
        wire: str = protocol.WIRE_BINARY,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if wire not in protocol.WIRES:
            raise ValueError(f"wire must be one of {sorted(protocol.WIRES)}")
        self.wire = wire
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.directory = str(directory)
        self.backend = backend
        self.verify = verify
        router = PartitionStore.open(self.directory, verify=verify, backend=backend)
        #: Shards never outnumber partitions — an empty group would serve
        #: nothing and waste a process.
        self.workers = min(workers, router.num_partitions)
        self.replicas = max(1, int(replicas))
        self.failover_timeout = failover_timeout
        self.health_interval = health_interval
        self.respawn_backoff = respawn_backoff
        self.spawn_timeout = spawn_timeout
        self.manager = ClusterStoreManager(
            router, self, metrics=self.metrics, drain_timeout=drain_timeout
        )
        self._bounds = shard_bounds(router.num_partitions, self.workers)
        self._lows = [lo for lo, _ in self._bounds]
        # AF_UNIX paths are capped around 108 bytes and pytest tmp_paths
        # routinely exceed that — default to a short mkdtemp instead.
        self._own_socket_dir = socket_dir is None
        self.socket_dir = socket_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        self._ctx = multiprocessing.get_context("spawn")
        self._groups: List[_ShardGroup] = []
        for s, (lo, hi) in enumerate(self._bounds):
            handles = []
            for r in range(self.replicas):
                spec = {
                    "directory": self.directory,
                    "socket_path": os.path.join(self.socket_dir, f"w{s}-{r}.sock"),
                    "shard": s,
                    "replica": r,
                    "group_lo": lo,
                    "group_hi": hi,
                    "epoch": self.manager.epoch,
                    "backend": backend,
                    "verify": verify,
                    "request_timeout": worker_request_timeout,
                }
                handles.append(
                    _WorkerHandle(
                        spec,
                        self._ctx,
                        call_timeout=worker_call_timeout,
                        wire=wire,
                    )
                )
            self._groups.append(
                _ShardGroup(
                    s, (lo, hi), handles, self.metrics,
                    failover_timeout=failover_timeout,
                )
            )
        self._supervise_task: Optional[asyncio.Task] = None
        self._reloading = False
        self._started = False

    # -- lookups -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.manager.epoch

    @property
    def router(self) -> PartitionStore:
        """The front-end's own routing store (its private mmap)."""
        return self.manager.store

    def shard_of(self, partition: int) -> int:
        """Which shard serves ``partition`` (bounds are contiguous)."""
        return bisect_right(self._lows, partition) - 1

    def group(self, shard: int) -> _ShardGroup:
        return self._groups[shard]

    def handle(self, shard: int, replica: int = 0) -> _WorkerHandle:
        """The handle for one worker (tests use this to find PIDs)."""
        return self._groups[shard].handles[replica]

    def _all_handles(self) -> List[_WorkerHandle]:
        return [h for g in self._groups for h in g.handles]

    def worker_pids(self) -> Dict[str, Optional[int]]:
        """``{"s0r0": pid, ...}`` for every worker process."""
        return {h.name: h.pid for h in self._all_handles()}

    def describe(self) -> Dict[str, Any]:
        """Topology + health summary (served under ``stats.cluster``)."""
        return {
            "workers": self.workers,
            "replicas": self.replicas,
            "epoch": self.epoch,
            "shards": [
                {
                    "shard": g.shard,
                    "partitions": [g.bounds[0], g.bounds[1]],
                    "workers": [
                        {
                            "replica": int(h.spec["replica"]),
                            "up": bool(h.up),
                            "epoch": h.epoch,
                            "pid": h.pid,
                        }
                        for h in g.handles
                    ],
                }
                for g in self._groups
            ],
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker, wait until all answer, start supervision."""
        if self._started:
            raise RuntimeError("cluster already started")
        try:
            for handle in self._all_handles():
                handle.spawn()
            deadline = asyncio.get_running_loop().time() + self.spawn_timeout
            for handle in self._all_handles():
                await self._wait_handle_ready(handle, deadline)
        except BaseException:
            await self.stop()
            raise
        self._supervise_task = asyncio.create_task(
            self._supervise(), name="repro-cluster-supervise"
        )
        self._started = True
        logger.info(
            "cluster up: %d shards x %d replicas over %s",
            self.workers, self.replicas, self.socket_dir,
        )

    async def _wait_handle_ready(
        self, handle: _WorkerHandle, deadline: float
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                info = await handle.call("worker_info")
            except _TRANSPORT_ERRORS + (ServiceError,) as exc:
                if not handle.alive():
                    raise ClusterError(
                        f"worker {handle.name} died during startup "
                        f"(exit code {handle.process.exitcode})"
                    ) from exc
                if loop.time() >= deadline:
                    raise ClusterError(
                        f"worker {handle.name} not ready within "
                        f"{self.spawn_timeout:g}s: {exc}"
                    ) from exc
                await handle.drop_client()
                await asyncio.sleep(0.05)
            else:
                handle.up = True
                epoch = info.get("epoch")
                handle.epoch = epoch if isinstance(epoch, int) else None
                self._set_worker_gauges(handle)
                return

    async def stop(self) -> None:
        """Terminate (SIGTERM → drain) and reap every worker process."""
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            try:
                await self._supervise_task
            except asyncio.CancelledError:
                pass
            self._supervise_task = None
        for handle in self._all_handles():
            await handle.drop_client()
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + 5.0
        for handle in self._all_handles():
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=1.0)
            handle.process = None
            handle.up = False
            self._set_worker_gauges(handle)
        if self._own_socket_dir:
            shutil.rmtree(self.socket_dir, ignore_errors=True)
        self._started = False

    # -- supervision -------------------------------------------------------

    async def _supervise(self) -> None:
        """Health loop: ping workers, publish gauges, respawn the dead."""
        ping_timeout = max(0.5, self.health_interval * 4)
        while True:
            await asyncio.sleep(self.health_interval)
            for handle in self._all_handles():
                if not handle.alive():
                    self._mark_down(handle)
                    await self._maybe_respawn(handle)
                    continue
                try:
                    info = await asyncio.wait_for(
                        handle.call("worker_info"), ping_timeout
                    )
                except _TRANSPORT_ERRORS + (ServiceError,):
                    self._mark_down(handle)
                    await handle.drop_client()
                else:
                    handle.up = True
                    epoch = info.get("epoch")
                    handle.epoch = epoch if isinstance(epoch, int) else None
                self._set_worker_gauges(handle)

    def _mark_down(self, handle: _WorkerHandle) -> None:
        if handle.up:
            self.metrics.inc("workers_marked_down")
        handle.up = False

    async def _maybe_respawn(self, handle: _WorkerHandle) -> None:
        now = time.monotonic()
        if now - handle.last_respawn < self.respawn_backoff:
            return  # a crash-looping worker must not spin the supervisor
        handle.last_respawn = now
        await handle.drop_client()
        if handle.process is not None:
            handle.process.join(timeout=0)  # reap the zombie
        # Respawn against the *current* bundle and epoch — a worker that
        # died before (or during) a swap must not resurrect the old one.
        handle.spec = dict(
            handle.spec, directory=self.directory, epoch=self.manager.epoch
        )
        self.metrics.inc("worker_respawns")
        logger.warning("respawning dead worker %s", handle.name)
        handle.spawn()
        self._set_worker_gauges(handle)

    def _set_worker_gauges(self, handle: _WorkerHandle) -> None:
        self.metrics.set_gauge(
            f"worker_up_{handle.name}", 1.0 if handle.up else 0.0
        )
        if handle.epoch is not None:
            self.metrics.set_gauge(
                f"worker_epoch_{handle.name}", float(handle.epoch)
            )

    # -- coordinated epoch swap -------------------------------------------

    async def coordinated_reload(
        self, directory: Any, *, verify: bool = True
    ) -> Dict[str, object]:
        """Two-phase cluster-wide swap to the bundle at ``directory``.

        1. Build the front-end's replacement router and validate it — a
           corrupt bundle fails here before any worker is disturbed.
        2. **Prepare** on every live worker (standbys included): open +
           validate + hold staged.  Any failure aborts all stages; the
           old epoch keeps serving everywhere.
        3. **Commit**: flip the front-end router atomically (its lease
           machinery keeps in-flight requests on their admitted epoch),
           then commit every prepared worker under the same new epoch
           number.  A worker that fails to commit is terminated and
           respawned straight onto the new bundle — it can never answer
           the new epoch with old data.
        4. Wait for the front-end's old-epoch leases to drain, then tell
           workers to drop their retained previous store.
        """
        if self._reloading:
            self.metrics.inc("reloads_rejected")
            raise ReloadInProgress("another reload is already building")
        self._reloading = True
        started = time.perf_counter()
        try:
            directory = str(directory)
            loop = asyncio.get_running_loop()
            try:
                candidate = await loop.run_in_executor(
                    None,
                    lambda: PartitionStore.open(
                        directory, verify=verify, backend=self.backend
                    ),
                )
            except Exception as exc:  # noqa: BLE001 — any corrupt bundle
                self.metrics.inc("reloads_failed")
                raise ReloadError(
                    f"cannot open bundle {directory}: {exc}"
                ) from exc
            try:
                self.manager.validate(candidate)
            except BundleValidationError:
                self.metrics.inc("reloads_failed")
                raise
            build_seconds = time.perf_counter() - started

            # Phase 1: prepare everywhere.
            targets = [h for h in self._all_handles() if h.alive()]
            prepared = await asyncio.gather(
                *(
                    h.call("prepare", directory=directory, verify=verify)
                    for h in targets
                ),
                return_exceptions=True,
            )
            failures = [
                (h, r)
                for h, r in zip(targets, prepared)
                if isinstance(r, BaseException)
            ]
            if failures:
                await asyncio.gather(
                    *(
                        h.call("abort")
                        for h, r in zip(targets, prepared)
                        if not isinstance(r, BaseException)
                    ),
                    return_exceptions=True,
                )
                self.metrics.inc("reloads_failed")
                bad_handle, bad = failures[0]
                raise ReloadError(
                    f"prepare failed on worker {bad_handle.name} "
                    f"({len(failures)}/{len(targets)} failed): {bad}"
                )

            # Phase 2: flip the router, then commit every worker under
            # the same epoch number.
            try:
                info = self.manager.install(candidate)
            except BundleValidationError:
                await asyncio.gather(
                    *(h.call("abort") for h in targets), return_exceptions=True
                )
                self.metrics.inc("reloads_failed")
                raise
            new_epoch = int(info["epoch"])  # type: ignore[arg-type]
            previous_epoch = int(info["previous_epoch"])  # type: ignore[arg-type]
            # From here on a respawn must come up on the new bundle.
            self.directory = directory
            for h in self._all_handles():
                h.spec = dict(h.spec, directory=directory, epoch=new_epoch)
            commits = await asyncio.gather(
                *(h.call("commit", epoch=new_epoch) for h in targets),
                return_exceptions=True,
            )
            committed = 0
            for h, r in zip(targets, commits):
                if isinstance(r, BaseException):
                    # This worker could not flip: take it out of rotation
                    # and let the supervisor respawn it onto the new
                    # bundle — it must not keep answering the old one.
                    logger.warning("commit failed on worker %s: %s", h.name, r)
                    self.metrics.inc("worker_commit_failures")
                    self._mark_down(handle=h)
                    if h.process is not None and h.process.is_alive():
                        h.process.terminate()
                    await h.drop_client()
                else:
                    committed += 1
                    h.epoch = new_epoch
                self._set_worker_gauges(h)

            # Old-epoch leases on the front-end drain, then workers drop
            # their retained previous store.
            drained = int(info["pinned_to_previous"])  # type: ignore[arg-type]
            drain_timed_out = False
            retired = self.manager._retired.get(previous_epoch)
            if retired is not None and retired[1] is not None:
                try:
                    await asyncio.wait_for(
                        retired[1].wait(), self.manager.drain_timeout
                    )
                except asyncio.TimeoutError:  # pragma: no cover - stuck lease
                    drain_timed_out = True
                    info["drain_timed_out"] = True
            if not drain_timed_out:
                await asyncio.gather(
                    *(
                        h.call("release_epoch", epoch=previous_epoch)
                        for h in targets
                        if h.up
                    ),
                    return_exceptions=True,
                )
            info["drained"] = drained
            info["build_seconds"] = round(build_seconds, 6)
            info["workers_prepared"] = len(targets)
            info["workers_committed"] = committed
            self.metrics.observe("reload_build", build_seconds)
            self.metrics.observe("reload_swap", time.perf_counter() - started)
            self.metrics.inc("queries_drained", drained)
            logger.info(
                "coordinated swap: epoch %s -> %s (%d/%d workers committed)",
                previous_epoch, new_epoch, committed, len(targets),
            )
            return info
        finally:
            self._reloading = False


# -- front-end batch handler ------------------------------------------------


class _PlanItem:
    """One unique scatter read; duplicates coalesce onto positions/ids."""

    __slots__ = (
        "op", "positions", "ids", "v", "u", "norm", "k",
        "replicas", "shards", "arrived", "partial", "wire_partials",
        "owner", "stats", "failure",
    )

    def __init__(self, op: str, position: int, request_id: Any) -> None:
        self.op = op
        self.positions = [position]
        self.ids: List[Any] = [request_id]
        self.v = 0
        self.u = 0
        self.norm: Tuple[int, int] = (0, 0)
        self.k = 0
        self.replicas: Tuple[int, ...] = ()
        self.shards: List[int] = []
        self.arrived = 0
        self.partial: List[int] = []
        #: Pre-encoded binary partials (worker answered ``encoded``).
        self.wire_partials: List[bytes] = []
        self.owner: Optional[int] = None
        self.stats: Optional[Dict[str, int]] = None
        self.failure: Optional[BaseException] = None


class _ShardSub:
    """The sub-batch one shard receives for one epoch plan."""

    __slots__ = ("neighbors", "owners", "stats")

    def __init__(self) -> None:
        self.neighbors: List[_PlanItem] = []
        self.owners: List[_PlanItem] = []
        self.stats: List[_PlanItem] = []


class _EpochPlan:
    """All scatter reads of one batch pinned to one ``(store, epoch)``."""

    __slots__ = ("store", "epoch", "items", "pending", "subs")

    def __init__(self, store: PartitionStore, epoch: int) -> None:
        self.store = store
        self.epoch = epoch
        self.items: List[_PlanItem] = []
        #: coalesce key -> item (dedup identical reads inside the batch).
        self.pending: Dict[Tuple, _PlanItem] = {}
        self.subs: Dict[int, _ShardSub] = {}

    def sub(self, shard: int) -> _ShardSub:
        sub = self.subs.get(shard)
        if sub is None:
            sub = self.subs[shard] = _ShardSub()
        return sub


class ClusterHandler:
    """Front-end batch executor: local routing + scatter-gather.

    Duck-typed :class:`ServiceHandler` for :class:`PartitionServer`
    (``metrics`` / ``manager`` / awaitable ``execute_batch``).  The
    server's admission leases pin each request to the router's
    ``(store, epoch)`` exactly as in single-process serving, so a
    coordinated swap mid-flight never mixes generations — scatter
    sub-queries carry the pinned epoch and workers answer them from the
    matching retained store.
    """

    def __init__(self, cluster: PartitionCluster) -> None:
        self.cluster = cluster
        self.metrics = cluster.metrics
        self.manager: StoreManager = cluster.manager
        self.ingestor = None  # read-only: keeps the server's compact gate shut

    async def execute_batch(
        self,
        requests: List[Dict[str, Any]],
        leases: Optional[Sequence[Optional[Tuple[PartitionStore, int]]]] = None,
    ) -> List[Dict[str, Any]]:
        metrics = self.metrics
        metrics.inc("batches")
        metrics.inc("batch_requests_total", len(requests))
        if len(requests) > 1:
            metrics.inc("batched_requests", len(requests))
        if leases is None:
            leases = [None] * len(requests)
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        plans: "OrderedDict[int, _EpochPlan]" = OrderedDict()

        for i, (request, lease) in enumerate(zip(requests, leases)):
            request_id = request.get("id")
            op = request.get("op")
            if lease is not None:
                store, epoch = lease
            else:
                store, epoch = self.manager.store, self.manager.epoch
            if not isinstance(op, str) or op not in OPERATIONS:
                metrics.inc("requests_bad")
                responses[i] = protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    f"unknown op {op!r}",
                    epoch=self.manager.epoch,
                )
                continue
            args = request.get("args") or {}
            if not isinstance(args, dict):
                metrics.inc("requests_bad")
                responses[i] = protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    "args must be an object",
                    epoch=self.manager.epoch,
                )
                continue
            if op in ("insert_edge", "delete_edge", "ingest_stats", "compact"):
                # Same answer a single-process server without --wal gives.
                metrics.inc("requests_bad")
                responses[i] = protocol.error_response(
                    request_id, protocol.BAD_REQUEST, _INGEST_DISABLED, epoch=epoch
                )
                continue
            if op == "reload":
                # Normally intercepted at admission by the server; if one
                # arrives through an in-process batch, refuse safely.
                responses[i] = protocol.error_response(
                    request_id,
                    protocol.RELOAD_FAILED,
                    "cluster reload must go through the server admin plane",
                    epoch=self.manager.epoch,
                )
                continue
            if op == "ping":
                metrics.inc("requests_ok")
                metrics.inc("op_ping")
                responses[i] = protocol.ok_response(
                    request_id, {"pong": True}, epoch=epoch
                )
                continue
            if op == "stats":
                result = store.stats()
                result["metrics"] = metrics.snapshot()
                result["cluster"] = self.cluster.describe()
                metrics.inc("requests_ok")
                metrics.inc("op_stats")
                responses[i] = protocol.ok_response(
                    request_id, result, epoch=epoch
                )
                continue
            # Scatter ops (+ master, answered locally from the router but
            # batched through the same vectorised route pass).
            plan = plans.get(epoch)
            if plan is None:
                plan = plans[epoch] = _EpochPlan(store, epoch)
            try:
                self._admit(plan, op, args, i, request_id)
            except _BadArgs as exc:
                metrics.inc("requests_bad")
                responses[i] = protocol.error_response(
                    request_id, protocol.BAD_REQUEST, str(exc), epoch=epoch
                )
        calls: List[Tuple[_EpochPlan, int, _ShardSub]] = []
        for plan in plans.values():
            self._route_plan(plan, responses)
            for shard, sub in sorted(plan.subs.items()):
                calls.append((plan, shard, sub))
        if calls:
            metrics.inc("cluster_scatter_calls", len(calls))
            # Ask for pre-encoded neighbour partials whenever the worker
            # links speak binary; the handle clears the flag per-call if
            # its link negotiated down to JSON.
            encoded = self.cluster.wire == protocol.WIRE_BINARY
            results = await asyncio.gather(
                *(
                    self.cluster.group(shard).call(
                        "shard_query",
                        epoch=plan.epoch,
                        encoded=encoded and bool(sub.neighbors),
                        neighbors=[item.v for item in sub.neighbors],
                        owners=[[item.norm[0], item.norm[1]] for item in sub.owners],
                        stats=[item.k for item in sub.stats],
                    )
                    for plan, shard, sub in calls
                ),
                return_exceptions=True,
            )
            for (plan, shard, sub), result in zip(calls, results):
                self._merge_shard_result(sub, result)
        for plan in plans.values():
            self._finish_plan(plan, responses)
        for i, response in enumerate(responses):
            if response is None:  # pragma: no cover - defensive
                responses[i] = protocol.error_response(
                    requests[i].get("id"),
                    protocol.INTERNAL,
                    "request fell through the cluster batch planner",
                    epoch=self.manager.epoch,
                )
        return responses  # type: ignore[return-value]

    # -- admission ---------------------------------------------------------

    def _admit(
        self,
        plan: _EpochPlan,
        op: str,
        args: Dict[str, Any],
        position: int,
        request_id: Any,
    ) -> None:
        if op == "master" or op == "neighbors":
            v = _int_arg(args, "v")
            key: Tuple = (op, v)
            item = self._coalesce(plan, key, op, position, request_id)
            if item is not None:
                item.v = v
            return
        if op == "edge":
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            key = (op, u, v)
            item = self._coalesce(plan, key, op, position, request_id)
            if item is not None:
                item.u, item.v = u, v
                item.norm = normalize_edge(u, v)
            return
        if op == "partition_stats":
            k = _int_arg(args, "k")
            key = (op, k)
            item = self._coalesce(plan, key, op, position, request_id)
            if item is not None:
                item.k = k
            return
        raise _BadArgs(f"unknown op {op!r}")  # pragma: no cover - guarded

    def _coalesce(
        self,
        plan: _EpochPlan,
        key: Tuple,
        op: str,
        position: int,
        request_id: Any,
    ) -> Optional[_PlanItem]:
        existing = plan.pending.get(key)
        if existing is not None:
            self.metrics.inc("batch_dedup_hits")
            existing.positions.append(position)
            existing.ids.append(request_id)
            return None
        item = _PlanItem(op, position, request_id)
        plan.pending[key] = item
        plan.items.append(item)
        return item

    # -- routing pass ------------------------------------------------------

    def _route_plan(
        self,
        plan: _EpochPlan,
        responses: List[Optional[Dict[str, Any]]],
    ) -> None:
        """One vectorised route pass; builds the per-shard sub-batches."""
        cluster = self.cluster
        vertex_items = [
            it for it in plan.items if it.op in ("master", "neighbors")
        ]
        edge_items = [it for it in plan.items if it.op == "edge"]
        stat_items = [it for it in plan.items if it.op == "partition_stats"]
        # One route_many over every vertex this plan touches.
        queries: List[int] = [it.v for it in vertex_items]
        for it in edge_items:
            queries.append(it.norm[0])
            queries.append(it.norm[1])
        routes = plan.store.route_many(queries) if queries else []
        pos = 0
        for item in vertex_items:
            route = routes[pos]
            pos += 1
            if route is None:
                self._finish_item(
                    item, self._miss(item, item.v, plan.epoch), responses
                )
                continue
            master, replicas = route
            if item.op == "master":
                self._finish_item(
                    item,
                    self._ok(
                        item,
                        {
                            "v": item.v,
                            "master": master,
                            "mirrors": [k for k in replicas if k != master],
                            "replicas": list(replicas),
                        },
                        plan.epoch,
                    ),
                    responses,
                )
                continue
            item.replicas = replicas
            shards = sorted({cluster.shard_of(k) for k in replicas})
            item.shards = shards
            for s in shards:
                plan.sub(s).neighbors.append(item)
        for item in edge_items:
            ra, rb = routes[pos], routes[pos + 1]
            pos += 2
            if ra is None or rb is None:
                self._finish_item(
                    item, self._miss(item, item.norm, plan.epoch), responses
                )
                continue
            candidates = set(ra[1]).intersection(rb[1])
            if not candidates:
                self._finish_item(
                    item, self._miss(item, item.norm, plan.epoch), responses
                )
                continue
            shards = sorted({cluster.shard_of(k) for k in candidates})
            item.shards = shards
            for s in shards:
                plan.sub(s).owners.append(item)
        num_partitions = plan.store.num_partitions
        for item in stat_items:
            if not 0 <= item.k < num_partitions:
                self._finish_item(
                    item, self._miss(item, item.k, plan.epoch), responses
                )
                continue
            shard = cluster.shard_of(item.k)
            item.shards = [shard]
            plan.sub(shard).stats.append(item)

    # -- gather ------------------------------------------------------------

    @staticmethod
    def _merge_shard_result(sub: _ShardSub, result: Any) -> None:
        if isinstance(result, BaseException):
            for item in sub.neighbors + sub.owners + sub.stats:
                item.failure = item.failure or result
            return
        wires = result.get("neighbors_wire")
        if wires is not None:
            for item, blob in zip(sub.neighbors, wires):
                item.arrived += 1
                if blob is None:
                    item.failure = item.failure or ClusterError(
                        "shard answered None for a routed vertex"
                    )
                elif isinstance(blob, (bytes, bytearray)):
                    item.wire_partials.append(bytes(blob))
                else:
                    item.failure = item.failure or ClusterError(
                        "shard answered a non-bytes pre-encoded partial"
                    )
        partials = result.get("neighbors") or []
        for item, partial in zip(sub.neighbors, partials):
            item.arrived += 1
            if partial is None:
                # The router said this shard spans the vertex but the
                # worker disagrees — impossible for bit-identical stores
                # under the pinned epoch; surface it as a failure rather
                # than answer with a silently truncated list.
                item.failure = item.failure or ClusterError(
                    "shard answered None for a routed vertex"
                )
            else:
                item.partial.extend(partial)
        owners = result.get("owners") or []
        for item, owner in zip(sub.owners, owners):
            item.arrived += 1
            if owner is not None:
                item.owner = int(owner)
        stats = result.get("stats") or []
        for item, stat in zip(sub.stats, stats):
            item.arrived += 1
            if stat is not None:
                item.stats = stat

    def _finish_plan(
        self,
        plan: _EpochPlan,
        responses: List[Optional[Dict[str, Any]]],
    ) -> None:
        epoch = plan.epoch
        for item in plan.items:
            if responses[item.positions[0]] is not None:
                continue  # answered during the route pass
            if item.op == "neighbors":
                if item.failure is not None or item.arrived < len(item.shards):
                    response = self._unavailable(item, epoch)
                else:
                    neighbors: Any
                    if len(item.wire_partials) == 1 and not item.partial:
                        # One shard answered the whole (sorted) list
                        # pre-encoded: splice its bytes verbatim into the
                        # response frame.  Canonical encoding makes this
                        # bit-identical to encoding the list ourselves.
                        self.metrics.inc("scatter_spliced")
                        neighbors = protocol.PreEncoded(item.wire_partials[0])
                    else:
                        # Cross-shard vertex (or mixed encoded/plain
                        # fallback): decode, concatenate, sort.  Disjoint
                        # per-shard partials make the sorted concatenation
                        # exactly the single-process merged list.
                        try:
                            for blob in item.wire_partials:
                                item.partial.extend(protocol.decode_value(blob))
                        except protocol.ProtocolError as exc:
                            item.failure = exc
                            self._finish_item(
                                item, self._unavailable(item, epoch), responses
                            )
                            continue
                        self.metrics.inc("scatter_merged")
                        item.partial.sort()
                        neighbors = item.partial
                    response = self._ok(
                        item,
                        {
                            "v": item.v,
                            "neighbors": neighbors,
                            "partitions": list(item.replicas),
                        },
                        epoch,
                    )
            elif item.op == "edge":
                if item.owner is not None:
                    # A positive owner is complete evidence — each edge
                    # lives in exactly one partition — even if another
                    # candidate shard failed.
                    response = self._ok(
                        item,
                        {"u": item.u, "v": item.v, "partition": item.owner},
                        epoch,
                    )
                elif item.failure is not None or item.arrived < len(item.shards):
                    response = self._unavailable(item, epoch)
                else:
                    response = self._miss(item, item.norm, epoch)
            else:  # partition_stats
                if item.stats is not None:
                    response = self._ok(item, dict(item.stats), epoch)
                else:
                    response = self._unavailable(item, epoch)
            self._finish_item(item, response, responses)

    # -- response helpers --------------------------------------------------

    def _ok(
        self, item: _PlanItem, result: Dict[str, Any], epoch: int
    ) -> Dict[str, Any]:
        self.metrics.inc("requests_ok")
        self.metrics.inc(f"op_{item.op}")
        return protocol.ok_response(item.ids[0], result, epoch=epoch)

    def _miss(
        self, item: _PlanItem, missing: object, epoch: int
    ) -> Dict[str, Any]:
        self.metrics.inc("requests_not_found")
        return protocol.error_response(
            item.ids[0],
            protocol.NOT_FOUND,
            f"not in store: {missing!r}",
            epoch=epoch,
        )

    def _unavailable(self, item: _PlanItem, epoch: int) -> Dict[str, Any]:
        self.metrics.inc("requests_unavailable")
        cause = item.failure or "incomplete scatter"
        return protocol.error_response(
            item.ids[0],
            protocol.UNAVAILABLE,
            f"{cause}",
            epoch=epoch,
        )

    def _finish_item(
        self,
        item: _PlanItem,
        response: Dict[str, Any],
        responses: List[Optional[Dict[str, Any]]],
    ) -> None:
        responses[item.positions[0]] = response
        for position, request_id in zip(item.positions[1:], item.ids[1:]):
            shared = dict(response)
            shared["id"] = request_id
            responses[position] = shared
            # Coalesced duplicates share the scatter, not the accounting.
            count_shared_response(self.metrics, item.op, shared)


# -- facade -----------------------------------------------------------------


class ClusterServer:
    """The user-facing cluster front door: ``serve --workers N``.

    Composes a :class:`PartitionCluster` (worker processes, failover,
    supervision) with a stock :class:`PartitionServer` front-end running
    a :class:`ClusterHandler`.  The wire protocol, batching, admission
    leases, backpressure, and admin-plane reload interception are all
    the single-process server's — only batch execution is scattered.
    """

    def __init__(
        self,
        directory: Any,
        *,
        workers: int,
        replicas: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        verify: bool = True,
        metrics: Optional[ServiceMetrics] = None,
        socket_dir: Optional[str] = None,
        max_queue: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        request_timeout: float = 5.0,
        allow_reload: bool = True,
        concurrent_batches: int = 8,
        **cluster_kwargs: Any,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cluster = PartitionCluster(
            directory,
            workers=workers,
            replicas=replicas,
            backend=backend,
            verify=verify,
            metrics=self.metrics,
            socket_dir=socket_dir,
            **cluster_kwargs,
        )
        self.handler = ClusterHandler(self.cluster)
        self.server = PartitionServer(
            handler=self.handler,
            host=host,
            port=port,
            max_queue=max_queue,
            batch_window=batch_window,
            max_batch=max_batch,
            request_timeout=request_timeout,
            metrics=self.metrics,
            allow_reload=allow_reload,
            # Keep forming batches while earlier scatters wait on worker
            # round trips — safe: cluster data-plane ops are reads pinned
            # to admission-time epoch leases (see PartitionServer).
            concurrent_batches=concurrent_batches,
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    @property
    def manager(self) -> StoreManager:
        return self.cluster.manager

    async def start(self) -> Tuple[str, int]:
        await self.cluster.start()
        try:
            return await self.server.start()
        except BaseException:
            await self.cluster.stop()
            raise

    async def stop(self) -> None:
        await self.server.stop()
        await self.cluster.stop()

    async def __aenter__(self) -> "ClusterServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()


__all__ = [
    "ClusterError",
    "ClusterHandler",
    "ClusterServer",
    "ClusterStoreManager",
    "PartitionCluster",
    "ShardUnavailable",
    "ShardWorkerHandler",
    "SHARD_OPS",
    "shard_bounds",
    "worker_main",
]
