"""Query execution against a :class:`~repro.service.store.PartitionStore`.

The handler is the server's brain but knows nothing about sockets: it maps
request dicts to response dicts, so it can be exercised in-process (tests,
the bench load generator) exactly as it runs behind TCP.

Supported operations:

======================  ====================  =================================
op                      args                  result
======================  ====================  =================================
``ping``                —                     ``{"pong": true}``
``master``              ``v``                 master + mirrors + replicas of v
``neighbors``           ``v``                 merged adjacency + partitions hit
``edge``                ``u, v``              owning partition of edge {u, v}
``partition_stats``     ``k``                 per-partition counts
``stats``               —                     global summary + metrics snapshot
``reload``              ``directory``         hot-swap a new bundle in (admin)
``insert_edge``         ``u, v[, client,      place + WAL + apply one edge
                        cseq]``               insert (needs ingest enabled)
``delete_edge``         ``u, v[, client,      WAL + apply one edge delete,
                        cseq]``               routed to ``owner_of_edge``
``ingest_stats``        —                     pending delta, WAL size, RF drift
``compact``             —                     fold overlay → bundle, swap epoch
======================  ====================  =================================

``stats`` and ``reload`` results carry the serving store's ``backend``
(``"csr"`` for memory-mapped sidecar bundles, ``"dict"`` for the legacy
layout) so operators can see which adjacency path answers queries.

``execute_batch`` coalesces duplicate ``(op, args)`` pairs inside one
batch — under skewed access patterns (the norm for power-law graphs) hot
vertices are looked up many times per batching window and computed once.
Mutating ops are never coalesced, and read results are shared only
within one ``(epoch, delta_version)`` — a coalesced read batch observes
one delta version even when a mutation lands mid-batch.

The mutation ops are live only when an :class:`~repro.service.ingest.
Ingestor` is attached (``serve --wal`` / ``attach_ingestor``); without
one they answer ``bad_request``.

Every response is stamped with the **epoch** of the store that produced
it: the handler leases the live store from its
:class:`~repro.service.store.StoreManager` per request (or accepts a
lease the server pinned at admission time), so a response never mixes
data from two serving generations.  ``reload`` here is the *blocking*
in-process path; the TCP server intercepts the op and runs the build off
the event loop instead (see ``PartitionServer``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union, cast

from repro.graph.graph import normalize_edge
from repro.service import protocol
from repro.service.ingest import (
    CapacityError,
    ConflictError,
    IngestFrozen,
    Ingestor,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import (
    PartitionStore,
    ReloadError,
    ReloadInProgress,
    StoreManager,
)

#: Operations a request may name.
OPERATIONS = (
    "ping",
    "master",
    "neighbors",
    "edge",
    "partition_stats",
    "stats",
    "reload",
    "insert_edge",
    "delete_edge",
    "ingest_stats",
    "compact",
)

#: Ops that change server state: never coalesced inside a batch.  The
#: last four are cluster-internal (:mod:`repro.service.cluster` shard
#: workers); they are not public :data:`OPERATIONS`, but listing them
#: here gives them the same flush-before-mutation barrier and bans
#: coalescing two identical swap commands into one computation.
MUTATING_OPS = frozenset(
    {
        "insert_edge",
        "delete_edge",
        "compact",
        "reload",
        "prepare",
        "commit",
        "abort",
        "release_epoch",
    }
)

#: Read ops answered in bulk through the stores' vectorised ``*_many``
#: batch methods — ``execute_batch`` groups them per snapshot.
VECTOR_OPS = frozenset({"master", "neighbors", "edge"})

#: A ``(store, epoch)`` pair pinned by :meth:`StoreManager.acquire`.
Lease = Tuple[PartitionStore, int]

#: Error-code → metrics-counter mapping used when counting dedup-shared
#: responses; mirrors the counters bumped on the fresh-computation path.
_ERROR_COUNTERS = {
    protocol.NOT_FOUND: "requests_not_found",
    protocol.BAD_REQUEST: "requests_bad",
    protocol.CONFLICT: "requests_conflict",
    protocol.CAPACITY: "requests_capacity",
    protocol.INGEST_FROZEN: "requests_frozen",
    protocol.INTERNAL: "requests_internal_error",
    protocol.UNAVAILABLE: "requests_unavailable",
    protocol.STALE_EPOCH: "requests_stale_epoch",
}


def count_shared_response(
    metrics: ServiceMetrics, op: Any, response: Dict[str, Any]
) -> None:
    """Count a dedup-answered request like a freshly computed one.

    Coalescing shares the *computation*, not the accounting: every request
    answered from a shared result still increments ``requests_ok``/``op_*``
    (or the matching error counter), so server counters equal the number of
    requests actually answered — the bench asserts this parity against its
    client-side counts.
    """
    if response.get("ok"):
        metrics.inc("requests_ok")
        if isinstance(op, str):
            metrics.inc(f"op_{op}")
    else:
        error = response.get("error") or {}
        counter = _ERROR_COUNTERS.get(error.get("code"))
        if counter is not None:
            metrics.inc(counter)


class ServiceHandler:
    """Executes protocol requests against a store, recording metrics."""

    def __init__(
        self,
        store: Union[PartitionStore, StoreManager],
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if isinstance(store, StoreManager):
            self.manager = store
            if self.manager.metrics is None:
                self.manager.metrics = self.metrics
        else:
            self.manager = StoreManager(store, metrics=self.metrics)
        #: Mutation subsystem; ``None`` keeps the service read-only.
        self.ingestor: Optional[Ingestor] = None

    def attach_ingestor(self, ingestor: Ingestor) -> None:
        """Enable the mutation ops (``insert_edge`` etc.) on this handler.

        The handler's metrics are shared with the ingest layer (unless it
        brought its own) so WAL fsync latency and the
        ``pending_mutations`` / ``wal_bytes`` / ``overlay_rf_drift``
        gauges surface through the ``stats`` query.
        """
        self.ingestor = ingestor
        if ingestor.metrics is None:
            ingestor.metrics = self.metrics
        if ingestor.wal.metrics is None:
            ingestor.wal.metrics = self.metrics
        ingestor.publish_gauges()

    @property
    def store(self) -> PartitionStore:
        """The store serving the live epoch."""
        return self.manager.store

    # -- single request ----------------------------------------------------

    def execute(
        self, request: Dict[str, Any], lease: Optional[Lease] = None
    ) -> Dict[str, Any]:
        """Map one request dict to one response dict (never raises).

        With ``lease`` the request runs against the pinned ``(store,
        epoch)`` (the caller releases it); otherwise a lease is taken and
        returned around the dispatch.
        """
        request_id = request.get("id")
        op = request.get("op")
        if not isinstance(op, str) or op not in OPERATIONS:
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                f"unknown op {op!r}",
                epoch=self.manager.epoch,
            )
        args = request.get("args") or {}
        if not isinstance(args, dict):
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                "args must be an object",
                epoch=self.manager.epoch,
            )
        owned = lease is None
        store, epoch = lease if lease is not None else self.manager.acquire()
        try:
            result = self._dispatch(op, args, store)
        except _BadArgs as exc:
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id, protocol.BAD_REQUEST, str(exc), epoch=epoch
            )
        except ReloadInProgress as exc:
            return protocol.error_response(
                request_id,
                protocol.RELOAD_IN_PROGRESS,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ReloadError as exc:
            return protocol.error_response(
                request_id,
                protocol.RELOAD_FAILED,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ConflictError as exc:
            self.metrics.inc("requests_conflict")
            return protocol.error_response(
                request_id, protocol.CONFLICT, str(exc), epoch=epoch
            )
        except CapacityError as exc:
            self.metrics.inc("requests_capacity")
            return protocol.error_response(
                request_id, protocol.CAPACITY, str(exc), epoch=epoch
            )
        except IngestFrozen as exc:
            self.metrics.inc("requests_frozen")
            return protocol.error_response(
                request_id, protocol.INGEST_FROZEN, str(exc), epoch=epoch
            )
        except KeyError as exc:
            self.metrics.inc("requests_not_found")
            return protocol.error_response(
                request_id,
                protocol.NOT_FOUND,
                f"not in store: {exc.args[0]!r}",
                epoch=epoch,
            )
        except Exception as exc:  # noqa: BLE001 — fault barrier at the edge
            self.metrics.inc("requests_internal_error")
            return protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
                epoch=epoch,
            )
        finally:
            if owned:
                self.manager.release(epoch)
        self.metrics.inc("requests_ok")
        self.metrics.inc(f"op_{op}")
        # A successful reload/compact answers with the *new* epoch it installed.
        if op in ("reload", "compact"):
            epoch = result.get("epoch", epoch)
        return protocol.ok_response(request_id, result, epoch=epoch)

    # -- batched requests --------------------------------------------------

    def execute_batch(
        self,
        requests: List[Dict[str, Any]],
        leases: Optional[Sequence[Optional[Lease]]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute a batch: dedup duplicates, answer routing reads in bulk.

        Responses line up index-for-index with ``requests`` and carry each
        request's own ``id`` even when the result was shared.  ``leases``
        optionally pins each request to the ``(store, epoch)`` the server
        leased at admission; results are only shared within one epoch.

        Requests for the three routing ops (:data:`VECTOR_OPS`) are
        grouped per ``(store, epoch, delta_version)`` snapshot and
        answered through the store's vectorised ``route_many`` /
        ``neighbors_many`` / ``owners_many`` — one searchsorted/gather
        pass per batch instead of per request.  A mutating op flushes the
        pending groups first, so observable ordering is unchanged: a read
        admitted before a mutation is answered from the pre-mutation
        snapshot, exactly as the scalar loop did.
        """
        self.metrics.inc("batches")
        self.metrics.inc("batch_requests_total", len(requests))
        if len(requests) > 1:
            self.metrics.inc("batched_requests", len(requests))
        if leases is None:
            leases = [None] * len(requests)
        computed: Dict[Tuple, Dict[str, Any]] = {}
        pending: Dict[Tuple, _VectorItem] = {}
        groups: Dict[Tuple, _VectorGroup] = {}
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)

        def flush() -> None:
            for group in groups.values():
                self._answer_vector_group(group, responses, computed)
            groups.clear()
            pending.clear()

        for i, (request, lease) in enumerate(zip(requests, leases)):
            op = request.get("op")
            if isinstance(op, str) and op in MUTATING_OPS:
                flush()  # state may change: answer the earlier reads first
            key = _coalesce_key(request)
            if key is not None:
                # Results are shared only within one (epoch, delta_version)
                # snapshot: a mutation mid-batch bumps the version, so later
                # duplicates recompute instead of reusing a stale answer.
                store = lease[0] if lease else self.manager.store
                epoch = lease[1] if lease else self.manager.epoch
                version = getattr(store, "delta_version", 0)
                key = (epoch, version) + key
                hit = computed.get(key)
                if hit is not None:
                    self.metrics.inc("batch_dedup_hits")
                    response = dict(hit)
                    response["id"] = request.get("id")
                    responses[i] = response
                    self._count_shared(op, response)
                    continue
                item = pending.get(key)
                if item is not None:
                    # Duplicate of a read already queued for the bulk pass.
                    self.metrics.inc("batch_dedup_hits")
                    item.positions.append(i)
                    item.ids.append(request.get("id"))
                    continue
                if op in VECTOR_OPS:
                    parsed = _vector_args(op, request.get("args") or {})
                    if parsed is not None:
                        gkey = (id(store), epoch, version)
                        group = groups.get(gkey)
                        if group is None:
                            group = groups[gkey] = _VectorGroup(store, epoch)
                        item = _VectorItem(op, parsed, key, request, lease, i)
                        group.items.append(item)
                        pending[key] = item
                        continue
            responses[i] = self.execute(request, lease=lease)
            if key is not None:
                computed[key] = responses[i]
        flush()
        return cast(List[Dict[str, Any]], responses)

    def _answer_vector_group(
        self,
        group: "_VectorGroup",
        responses: List[Optional[Dict[str, Any]]],
        computed: Dict[Tuple, Dict[str, Any]],
    ) -> None:
        """Answer one snapshot's worth of queued routing reads in bulk."""
        store, epoch, items = group.store, group.epoch, group.items
        m_items = [it for it in items if it.op == "master"]
        n_items = [it for it in items if it.op == "neighbors"]
        e_items = [it for it in items if it.op == "edge"]
        try:
            routes = (
                store.route_many([it.args[0] for it in m_items])
                if m_items
                else []
            )
            rows = (
                store.neighbors_many([it.args[0] for it in n_items])
                if n_items
                else []
            )
            owners = (
                store.owners_many(
                    [cast(Tuple[int, int], it.args) for it in e_items]
                )
                if e_items
                else []
            )
        except Exception:  # noqa: BLE001 — fault barrier: scalar fallback
            for item in items:
                self._finish_vector_item(
                    item,
                    self.execute(item.request, lease=item.lease),
                    responses,
                    computed,
                )
            return
        self.metrics.inc("requests_vectorised", len(items))
        for item, route in zip(m_items, routes):
            if route is None:
                response = self._vector_miss(item, item.args[0], epoch)
            else:
                master, replicas = route
                response = self._vector_ok(
                    item,
                    {
                        "v": item.args[0],
                        "master": master,
                        "mirrors": [k for k in replicas if k != master],
                        "replicas": list(replicas),
                    },
                    epoch,
                )
            self._finish_vector_item(item, response, responses, computed)
        for item, row in zip(n_items, rows):
            if row is None:
                response = self._vector_miss(item, item.args[0], epoch)
            else:
                neighbours, replicas = row
                response = self._vector_ok(
                    item,
                    {
                        "v": item.args[0],
                        "neighbors": neighbours,
                        "partitions": list(replicas),
                    },
                    epoch,
                )
            self._finish_vector_item(item, response, responses, computed)
        for item, owner in zip(e_items, owners):
            u, v = cast(Tuple[int, int], item.args)
            if owner is None:
                response = self._vector_miss(item, normalize_edge(u, v), epoch)
            else:
                response = self._vector_ok(
                    item, {"u": u, "v": v, "partition": owner}, epoch
                )
            self._finish_vector_item(item, response, responses, computed)

    def _vector_ok(
        self, item: "_VectorItem", result: Dict[str, Any], epoch: int
    ) -> Dict[str, Any]:
        self.metrics.inc("requests_ok")
        self.metrics.inc(f"op_{item.op}")
        return protocol.ok_response(item.ids[0], result, epoch=epoch)

    def _vector_miss(
        self, item: "_VectorItem", missing: object, epoch: int
    ) -> Dict[str, Any]:
        self.metrics.inc("requests_not_found")
        return protocol.error_response(
            item.ids[0],
            protocol.NOT_FOUND,
            f"not in store: {missing!r}",
            epoch=epoch,
        )

    def _finish_vector_item(
        self,
        item: "_VectorItem",
        response: Dict[str, Any],
        responses: List[Optional[Dict[str, Any]]],
        computed: Dict[Tuple, Dict[str, Any]],
    ) -> None:
        responses[item.positions[0]] = response
        for pos, rid in zip(item.positions[1:], item.ids[1:]):
            shared = dict(response)
            shared["id"] = rid
            responses[pos] = shared
            self._count_shared(item.op, shared)
        computed[item.key] = response

    def _count_shared(self, op: Any, response: Dict[str, Any]) -> None:
        count_shared_response(self.metrics, op, response)

    # -- operations --------------------------------------------------------

    def _dispatch(
        self, op: str, args: Dict[str, Any], store: PartitionStore
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "master":
            v = _int_arg(args, "v")
            master = store.master_of(v)
            return {
                "v": v,
                "master": master,
                "mirrors": list(store.mirrors_of(v)),
                "replicas": list(store.replicas_of(v)),
            }
        if op == "neighbors":
            v = _int_arg(args, "v")
            partitions = list(store.replicas_of(v))
            if not partitions:
                raise KeyError(v)
            return {
                "v": v,
                "neighbors": sorted(store.neighbors(v)),
                "partitions": partitions,
            }
        if op == "edge":
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return {"u": u, "v": v, "partition": store.owner_of_edge(u, v)}
        if op == "partition_stats":
            return store.partition_stats(_int_arg(args, "k"))
        if op == "stats":
            result = store.stats()
            result["metrics"] = self.metrics.snapshot()
            return result
        if op == "reload":
            self._guard_reload()
            return self.manager.reload_sync(
                _str_arg(args, "directory"),
                verify=bool(args.get("verify", True)),
            )
        if op == "insert_edge":
            ingestor = self._require_ingestor()
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return ingestor.insert_edge(
                u, v, client=_opt_str_arg(args, "client"),
                cseq=_opt_int_arg(args, "cseq"),
            )
        if op == "delete_edge":
            ingestor = self._require_ingestor()
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return ingestor.delete_edge(
                u, v, client=_opt_str_arg(args, "client"),
                cseq=_opt_int_arg(args, "cseq"),
            )
        if op == "ingest_stats":
            return self._require_ingestor().ingest_stats()
        if op == "compact":
            # Blocking in-process path; the TCP server intercepts the op
            # and awaits Ingestor.compact() off the event loop instead.
            return self._require_ingestor().compact_sync(
                verify=bool(args.get("verify", True))
            )
        raise _BadArgs(f"unknown op {op!r}")  # pragma: no cover - guarded above

    def _require_ingestor(self) -> Ingestor:
        if self.ingestor is None:
            raise _BadArgs("ingest is not enabled on this server (serve --wal)")
        return self.ingestor

    def _guard_reload(self) -> None:
        """Refuse a plain reload that would orphan unfolded mutations.

        Swapping in an unrelated bundle while the overlay/WAL hold
        acknowledged mutations would silently drop them (and poison the
        next WAL replay).  ``compact`` is the sanctioned path: it folds,
        resets the WAL, then swaps.
        """
        ingestor = self.ingestor
        if ingestor is None:
            return
        if ingestor.overlay.pending_mutations or ingestor.wal.size:
            raise ReloadError(
                f"{ingestor.overlay.pending_mutations} pending mutations "
                "in the overlay/WAL; run compact instead of reload"
            )


class _BadArgs(ValueError):
    """Argument validation failure → ``bad_request``."""


class _VectorItem:
    """One unique routing read queued for a bulk store call.

    ``positions``/``ids`` grow when later requests in the batch coalesce
    onto this computation; the first entry owns the canonical response.
    """

    __slots__ = ("op", "args", "key", "request", "lease", "positions", "ids")

    def __init__(
        self,
        op: str,
        args: Tuple[int, ...],
        key: Tuple,
        request: Dict[str, Any],
        lease: Optional[Lease],
        position: int,
    ) -> None:
        self.op = op
        self.args = args
        self.key = key
        self.request = request
        self.lease = lease
        self.positions = [position]
        self.ids: List[Any] = [request.get("id")]


class _VectorGroup:
    """All vector items pinned to one ``(store, epoch, delta_version)``."""

    __slots__ = ("store", "epoch", "items")

    def __init__(self, store: PartitionStore, epoch: int) -> None:
        self.store = store
        self.epoch = epoch
        self.items: List[_VectorItem] = []


def _vector_args(op: str, args: Dict[str, Any]) -> Optional[Tuple[int, ...]]:
    """Validated positional args for a vector op, or None → scalar path.

    Anything the scalar dispatch would reject (non-int vertex, self
    loop) drops back to :meth:`ServiceHandler.execute` so error
    responses stay bit-identical.
    """
    if not isinstance(args, dict):
        return None
    try:
        if op == "edge":
            u, v = _int_arg(args, "u"), _int_arg(args, "v")
            return None if u == v else (u, v)
        return (_int_arg(args, "v"),)
    except _BadArgs:
        return None


def _int_arg(args: Dict[str, Any], name: str) -> int:
    value = args.get(name)
    # bool is an int subclass; reject it explicitly.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _BadArgs(f"argument {name!r} must be an integer, got {value!r}")
    return value


def _str_arg(args: Dict[str, Any], name: str) -> str:
    value = args.get(name)
    if not isinstance(value, str) or not value:
        raise _BadArgs(f"argument {name!r} must be a non-empty string, got {value!r}")
    return value


def _opt_int_arg(args: Dict[str, Any], name: str) -> Optional[int]:
    if args.get(name) is None:
        return None
    return _int_arg(args, name)


def _opt_str_arg(args: Dict[str, Any], name: str) -> Optional[str]:
    if args.get(name) is None:
        return None
    return _str_arg(args, name)


def _coalesce_key(request: Dict[str, Any]) -> Optional[Tuple]:
    """Hashable identity of a request, ignoring ``id``; None if unkeyable.

    Mutating ops are never coalesced: two identical inserts are two
    mutations (the second must report its own conflict/dedup outcome),
    not one computation.
    """
    op = request.get("op")
    args = request.get("args") or {}
    if not isinstance(op, str) or not isinstance(args, dict):
        return None
    if op in MUTATING_OPS:
        return None
    try:
        key = (op, tuple(sorted(args.items())))
        hash(key)  # list-valued args (e.g. shard_query) are unkeyable
    except TypeError:
        return None
    return key
