"""Query execution against a :class:`~repro.service.store.PartitionStore`.

The handler is the server's brain but knows nothing about sockets: it maps
request dicts to response dicts, so it can be exercised in-process (tests,
the bench load generator) exactly as it runs behind TCP.

Supported operations:

======================  ====================  =================================
op                      args                  result
======================  ====================  =================================
``ping``                —                     ``{"pong": true}``
``master``              ``v``                 master + mirrors + replicas of v
``neighbors``           ``v``                 merged adjacency + partitions hit
``edge``                ``u, v``              owning partition of edge {u, v}
``partition_stats``     ``k``                 per-partition counts
``stats``               —                     global summary + metrics snapshot
``reload``              ``directory``         hot-swap a new bundle in (admin)
``insert_edge``         ``u, v[, client,      place + WAL + apply one edge
                        cseq]``               insert (needs ingest enabled)
``delete_edge``         ``u, v[, client,      WAL + apply one edge delete,
                        cseq]``               routed to ``owner_of_edge``
``ingest_stats``        —                     pending delta, WAL size, RF drift
``compact``             —                     fold overlay → bundle, swap epoch
======================  ====================  =================================

``stats`` and ``reload`` results carry the serving store's ``backend``
(``"csr"`` for memory-mapped sidecar bundles, ``"dict"`` for the legacy
layout) so operators can see which adjacency path answers queries.

``execute_batch`` coalesces duplicate ``(op, args)`` pairs inside one
batch — under skewed access patterns (the norm for power-law graphs) hot
vertices are looked up many times per batching window and computed once.
Mutating ops are never coalesced, and read results are shared only
within one ``(epoch, delta_version)`` — a coalesced read batch observes
one delta version even when a mutation lands mid-batch.

The mutation ops are live only when an :class:`~repro.service.ingest.
Ingestor` is attached (``serve --wal`` / ``attach_ingestor``); without
one they answer ``bad_request``.

Every response is stamped with the **epoch** of the store that produced
it: the handler leases the live store from its
:class:`~repro.service.store.StoreManager` per request (or accepts a
lease the server pinned at admission time), so a response never mixes
data from two serving generations.  ``reload`` here is the *blocking*
in-process path; the TCP server intercepts the op and runs the build off
the event loop instead (see ``PartitionServer``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.service import protocol
from repro.service.ingest import (
    CapacityError,
    ConflictError,
    IngestFrozen,
    Ingestor,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import (
    PartitionStore,
    ReloadError,
    ReloadInProgress,
    StoreManager,
)

#: Operations a request may name.
OPERATIONS = (
    "ping",
    "master",
    "neighbors",
    "edge",
    "partition_stats",
    "stats",
    "reload",
    "insert_edge",
    "delete_edge",
    "ingest_stats",
    "compact",
)

#: Ops that change server state: never coalesced inside a batch.
MUTATING_OPS = frozenset({"insert_edge", "delete_edge", "compact", "reload"})

#: A ``(store, epoch)`` pair pinned by :meth:`StoreManager.acquire`.
Lease = Tuple[PartitionStore, int]


class ServiceHandler:
    """Executes protocol requests against a store, recording metrics."""

    def __init__(
        self,
        store: Union[PartitionStore, StoreManager],
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if isinstance(store, StoreManager):
            self.manager = store
            if self.manager.metrics is None:
                self.manager.metrics = self.metrics
        else:
            self.manager = StoreManager(store, metrics=self.metrics)
        #: Mutation subsystem; ``None`` keeps the service read-only.
        self.ingestor: Optional[Ingestor] = None

    def attach_ingestor(self, ingestor: Ingestor) -> None:
        """Enable the mutation ops (``insert_edge`` etc.) on this handler.

        The handler's metrics are shared with the ingest layer (unless it
        brought its own) so WAL fsync latency and the
        ``pending_mutations`` / ``wal_bytes`` / ``overlay_rf_drift``
        gauges surface through the ``stats`` query.
        """
        self.ingestor = ingestor
        if ingestor.metrics is None:
            ingestor.metrics = self.metrics
        if ingestor.wal.metrics is None:
            ingestor.wal.metrics = self.metrics
        ingestor.publish_gauges()

    @property
    def store(self) -> PartitionStore:
        """The store serving the live epoch."""
        return self.manager.store

    # -- single request ----------------------------------------------------

    def execute(
        self, request: Dict[str, Any], lease: Optional[Lease] = None
    ) -> Dict[str, Any]:
        """Map one request dict to one response dict (never raises).

        With ``lease`` the request runs against the pinned ``(store,
        epoch)`` (the caller releases it); otherwise a lease is taken and
        returned around the dispatch.
        """
        request_id = request.get("id")
        op = request.get("op")
        if not isinstance(op, str) or op not in OPERATIONS:
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                f"unknown op {op!r}",
                epoch=self.manager.epoch,
            )
        args = request.get("args") or {}
        if not isinstance(args, dict):
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                "args must be an object",
                epoch=self.manager.epoch,
            )
        owned = lease is None
        store, epoch = lease if lease is not None else self.manager.acquire()
        try:
            result = self._dispatch(op, args, store)
        except _BadArgs as exc:
            self.metrics.inc("requests_bad")
            return protocol.error_response(
                request_id, protocol.BAD_REQUEST, str(exc), epoch=epoch
            )
        except ReloadInProgress as exc:
            return protocol.error_response(
                request_id,
                protocol.RELOAD_IN_PROGRESS,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ReloadError as exc:
            return protocol.error_response(
                request_id,
                protocol.RELOAD_FAILED,
                str(exc),
                epoch=self.manager.epoch,
            )
        except ConflictError as exc:
            self.metrics.inc("requests_conflict")
            return protocol.error_response(
                request_id, protocol.CONFLICT, str(exc), epoch=epoch
            )
        except CapacityError as exc:
            self.metrics.inc("requests_capacity")
            return protocol.error_response(
                request_id, protocol.CAPACITY, str(exc), epoch=epoch
            )
        except IngestFrozen as exc:
            self.metrics.inc("requests_frozen")
            return protocol.error_response(
                request_id, protocol.INGEST_FROZEN, str(exc), epoch=epoch
            )
        except KeyError as exc:
            self.metrics.inc("requests_not_found")
            return protocol.error_response(
                request_id,
                protocol.NOT_FOUND,
                f"not in store: {exc.args[0]!r}",
                epoch=epoch,
            )
        except Exception as exc:  # noqa: BLE001 — fault barrier at the edge
            self.metrics.inc("requests_internal_error")
            return protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
                epoch=epoch,
            )
        finally:
            if owned:
                self.manager.release(epoch)
        self.metrics.inc("requests_ok")
        self.metrics.inc(f"op_{op}")
        # A successful reload/compact answers with the *new* epoch it installed.
        if op in ("reload", "compact"):
            epoch = result.get("epoch", epoch)
        return protocol.ok_response(request_id, result, epoch=epoch)

    # -- batched requests --------------------------------------------------

    def execute_batch(
        self,
        requests: List[Dict[str, Any]],
        leases: Optional[Sequence[Optional[Lease]]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute a batch, computing duplicate ``(op, args)`` pairs once.

        Responses line up index-for-index with ``requests`` and carry each
        request's own ``id`` even when the result was shared.  ``leases``
        optionally pins each request to the ``(store, epoch)`` the server
        leased at admission; results are only shared within one epoch.
        """
        self.metrics.inc("batches")
        if len(requests) > 1:
            self.metrics.inc("batched_requests", len(requests))
        if leases is None:
            leases = [None] * len(requests)
        computed: Dict[Tuple, Dict[str, Any]] = {}
        responses: List[Dict[str, Any]] = []
        for request, lease in zip(requests, leases):
            key = _coalesce_key(request)
            if key is not None:
                # Results are shared only within one (epoch, delta_version)
                # snapshot: a mutation mid-batch bumps the version, so later
                # duplicates recompute instead of reusing a stale answer.
                store = lease[0] if lease else self.manager.store
                epoch = lease[1] if lease else self.manager.epoch
                key = (epoch, getattr(store, "delta_version", 0)) + key
            if key is not None and key in computed:
                self.metrics.inc("batch_dedup_hits")
                response = dict(computed[key])
                response["id"] = request.get("id")
            else:
                response = self.execute(request, lease=lease)
                if key is not None:
                    computed[key] = response
            responses.append(response)
        return responses

    # -- operations --------------------------------------------------------

    def _dispatch(
        self, op: str, args: Dict[str, Any], store: PartitionStore
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "master":
            v = _int_arg(args, "v")
            master = store.master_of(v)
            return {
                "v": v,
                "master": master,
                "mirrors": list(store.mirrors_of(v)),
                "replicas": list(store.replicas_of(v)),
            }
        if op == "neighbors":
            v = _int_arg(args, "v")
            partitions = list(store.replicas_of(v))
            if not partitions:
                raise KeyError(v)
            return {
                "v": v,
                "neighbors": sorted(store.neighbors(v)),
                "partitions": partitions,
            }
        if op == "edge":
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return {"u": u, "v": v, "partition": store.owner_of_edge(u, v)}
        if op == "partition_stats":
            return store.partition_stats(_int_arg(args, "k"))
        if op == "stats":
            result = store.stats()
            result["metrics"] = self.metrics.snapshot()
            return result
        if op == "reload":
            self._guard_reload()
            return self.manager.reload_sync(
                _str_arg(args, "directory"),
                verify=bool(args.get("verify", True)),
            )
        if op == "insert_edge":
            ingestor = self._require_ingestor()
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return ingestor.insert_edge(
                u, v, client=_opt_str_arg(args, "client"),
                cseq=_opt_int_arg(args, "cseq"),
            )
        if op == "delete_edge":
            ingestor = self._require_ingestor()
            u = _int_arg(args, "u")
            v = _int_arg(args, "v")
            if u == v:
                raise _BadArgs(f"self loop ({u}, {v}) is not a valid edge")
            return ingestor.delete_edge(
                u, v, client=_opt_str_arg(args, "client"),
                cseq=_opt_int_arg(args, "cseq"),
            )
        if op == "ingest_stats":
            return self._require_ingestor().ingest_stats()
        if op == "compact":
            # Blocking in-process path; the TCP server intercepts the op
            # and awaits Ingestor.compact() off the event loop instead.
            return self._require_ingestor().compact_sync(
                verify=bool(args.get("verify", True))
            )
        raise _BadArgs(f"unknown op {op!r}")  # pragma: no cover - guarded above

    def _require_ingestor(self) -> Ingestor:
        if self.ingestor is None:
            raise _BadArgs("ingest is not enabled on this server (serve --wal)")
        return self.ingestor

    def _guard_reload(self) -> None:
        """Refuse a plain reload that would orphan unfolded mutations.

        Swapping in an unrelated bundle while the overlay/WAL hold
        acknowledged mutations would silently drop them (and poison the
        next WAL replay).  ``compact`` is the sanctioned path: it folds,
        resets the WAL, then swaps.
        """
        ingestor = self.ingestor
        if ingestor is None:
            return
        if ingestor.overlay.pending_mutations or ingestor.wal.size:
            raise ReloadError(
                f"{ingestor.overlay.pending_mutations} pending mutations "
                "in the overlay/WAL; run compact instead of reload"
            )


class _BadArgs(ValueError):
    """Argument validation failure → ``bad_request``."""


def _int_arg(args: Dict[str, Any], name: str) -> int:
    value = args.get(name)
    # bool is an int subclass; reject it explicitly.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _BadArgs(f"argument {name!r} must be an integer, got {value!r}")
    return value


def _str_arg(args: Dict[str, Any], name: str) -> str:
    value = args.get(name)
    if not isinstance(value, str) or not value:
        raise _BadArgs(f"argument {name!r} must be a non-empty string, got {value!r}")
    return value


def _opt_int_arg(args: Dict[str, Any], name: str) -> Optional[int]:
    if args.get(name) is None:
        return None
    return _int_arg(args, name)


def _opt_str_arg(args: Dict[str, Any], name: str) -> Optional[str]:
    if args.get(name) is None:
        return None
    return _str_arg(args, name)


def _coalesce_key(request: Dict[str, Any]) -> Optional[Tuple]:
    """Hashable identity of a request, ignoring ``id``; None if unkeyable.

    Mutating ops are never coalesced: two identical inserts are two
    mutations (the second must report its own conflict/dedup outcome),
    not one computation.
    """
    op = request.get("op")
    args = request.get("args") or {}
    if not isinstance(op, str) or not isinstance(args, dict):
        return None
    if op in MUTATING_OPS:
        return None
    try:
        return (op, tuple(sorted(args.items())))
    except TypeError:
        return None
