"""Clients for the partition service: pipelined asyncio + blocking sync.

:class:`ServiceClient` (asyncio) keeps one connection, pipelines any
number of concurrent ``call()``s over it (matching responses by request
``id``), and transparently retries *retryable* failures — connection
drops, ``overload``, ``timeout``, ``unavailable`` — with exponentially
capped **full-jitter** backoff (each sleep is drawn uniformly from
``[cap/8, cap]`` where ``cap = base * factor**attempt``; the floor keeps
a fleet of clients from landing near-zero sleeps that hammer a freshly
promoted replica on the very first retry, while the jitter spreads them
out instead of thundering in lock-step; pass ``jitter=False`` for the
old deterministic delays when a test needs exact timing).  Semantic
errors (``bad_request``, ``not_found``) raise :class:`ServiceError`
immediately.

Both clients can speak either wire codec.  ``wire="binary"`` negotiates
at connect time: the client sends a binary ``ping`` before anything
else; if the server answers OK the session stays binary, and on an
error response (or a dropped/garbled connection — older servers) the
client downgrades to JSON for the life of the client.  The default is
JSON, the executable spec.

Both clients speak the same framing over TCP (``host``/``port``) or a
UNIX domain socket (``path=...``) — the cluster front-end uses the
latter for its per-worker connections.

:class:`SyncServiceClient` is a minimal blocking counterpart over a plain
socket (one request in flight), for shells and examples where an event
loop is a burden.

Both clients surface the server's serving **epoch**: every response is
stamped with the epoch of the store that produced it, ``last_epoch``
tracks the most recent one seen, and an ``on_epoch_change`` callback
fires when a hot reload flips the server to a new bundle mid-session.  A
connection reset in the middle of such a flip (or a server restart) is
handled like any retryable failure: the client tears the dead connection
down and reconnects with the existing backoff policy.

Mutations (``insert_edge`` / ``delete_edge``) are **idempotent under
retry**: each client stamps every mutation with its ``client_tag`` plus
a monotonically increasing client sequence number, and the retry loop
reuses the exact same args dict — so when a ``timeout`` (or connection
drop) hides whether the server applied the mutation, the retried request
carries the same ``(client, cseq)`` and the server's dedup window
returns the original result instead of double-applying.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service import protocol


class ServiceError(RuntimeError):
    """An error response from the service, carrying its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code

    @property
    def retryable(self) -> bool:
        """Whether a client may transparently retry this failure."""
        return self.code in protocol.RETRYABLE_CODES


def _backoff_delays(base: float, factor: float, retries: int) -> List[float]:
    """Per-attempt backoff *caps*: ``base * factor**attempt``.

    With jitter enabled the actual sleep for attempt ``i`` is drawn
    uniformly from ``[delays[i] / 8, delays[i]]`` (full jitter with a
    floor); without it the cap itself is slept, which is the historical
    deterministic behaviour.
    """
    return [base * factor**i for i in range(retries)]


#: Fraction of the backoff cap used as the minimum sleep.  Pure full
#: jitter draws from ``[0, cap]``, so some clients sleep ~0 and retry
#: into a still-recovering server immediately — the floor guarantees
#: every retry backs off by something while keeping 7/8 of the range
#: for spreading the fleet out.
_JITTER_FLOOR = 0.125


def _jittered(cap: float, rng: Optional[random.Random]) -> float:
    return rng.uniform(cap * _JITTER_FLOOR, cap) if rng is not None else cap


def _expire_call(future: "asyncio.Future") -> None:
    """Timer callback: fail an unanswered call future with TimeoutError."""
    if not future.done():
        future.set_exception(asyncio.TimeoutError())


class ServiceClient:
    """Pipelined asyncio client with retry/backoff."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        *,
        path: Optional[str] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        call_timeout: float = 10.0,
        jitter: bool = True,
        jitter_seed: Optional[int] = None,
        on_epoch_change: Optional[Callable[[Optional[int], int], None]] = None,
        client_tag: Optional[str] = None,
        wire: str = protocol.WIRE_JSON,
    ) -> None:
        if path is None and (host is None or port is None):
            raise ValueError("need host+port (TCP) or path= (UNIX socket)")
        if wire not in protocol.WIRES:
            raise ValueError(f"wire must be one of {sorted(protocol.WIRES)}")
        self.host = host
        self.port = port
        #: UNIX domain socket path; when set, host/port are ignored.
        self.path = path
        #: Requested codec; ``wire_active`` is what negotiation settled on.
        self.wire = wire
        #: Codec in force after connect-time negotiation (None until the
        #: first connect; stays JSON for ``wire="json"`` clients).
        self.wire_active: Optional[str] = (
            protocol.WIRE_JSON if wire == protocol.WIRE_JSON else None
        )
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.call_timeout = call_timeout
        self._rng: Optional[random.Random] = (
            random.Random(jitter_seed) if jitter else None
        )
        #: Identity for mutation dedup; survives reconnects (not restarts —
        #: pass an explicit tag for durable at-most-once across processes).
        self.client_tag = client_tag or f"c-{uuid.uuid4().hex[:12]}"
        self._next_cseq = 0
        #: Serving epoch stamped on the most recent response (None until
        #: the first epoch-carrying response arrives).
        self.last_epoch: Optional[int] = None
        self.on_epoch_change = on_epoch_change
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._recv_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------------

    async def connect(self) -> "ServiceClient":
        """Open the connection (idempotent); returns ``self``.

        A ``wire="binary"`` client negotiates the codec on its first
        connect — one binary ``ping`` before the receive loop starts, so
        the probe's response can be read inline.  The outcome sticks for
        the life of the client: reconnects after a drop reuse it rather
        than re-probing the same server.
        """
        if self._writer is None:
            await self._open_transport()
            if self.wire_active is None:
                await self._negotiate_binary()
            self._recv_task = asyncio.create_task(
                self._recv_loop(), name="repro-serve-client-recv"
            )
        return self

    async def _open_transport(self) -> None:
        if self.path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.path
            )
        else:
            assert self.host is not None and self.port is not None
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def _negotiate_binary(self) -> None:
        """Probe with a binary ``ping``; downgrade to JSON on rejection.

        Three outcomes: an OK response locks in binary; an error response
        (a server with ``accept_binary=False``) downgrades on the same,
        still-healthy connection; anything else — connection dropped,
        garbage, timeout — downgrades *and* reopens the transport, since
        a server that chokes on the probe may have lost framing.
        """
        assert self._reader is not None and self._writer is not None
        response: Optional[Dict[str, Any]] = None
        try:
            self._writer.write(
                protocol.encode_frame(
                    protocol.request(0, "ping"), protocol.WIRE_BINARY
                )
            )
            await self._writer.drain()
            response = await asyncio.wait_for(
                protocol.read_frame(self._reader), timeout=self.call_timeout
            )
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            protocol.ProtocolError,
        ):
            response = None
        if response is not None and response.get("ok"):
            self.wire_active = protocol.WIRE_BINARY
            self._observe_epoch(response.get("epoch"))
            return
        self.wire_active = protocol.WIRE_JSON
        if response is None:
            # Unknown connection state — start over on a clean transport.
            writer, self._writer, self._reader = self._writer, None, None
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await self._open_transport()

    async def close(self) -> None:
        """Close the connection and fail any in-flight calls."""
        writer, self._writer, self._reader = self._writer, None, None
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except asyncio.CancelledError:
                pass
            self._recv_task = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- calls -------------------------------------------------------------

    async def call(self, op: str, **args: Any) -> Dict[str, Any]:
        """Issue one request; returns the ``result`` dict.

        Retries retryable failures up to ``max_retries`` times with
        exponential backoff, reconnecting if the connection dropped.
        """
        result, _epoch = await self.call_with_epoch(op, **args)
        return result

    async def call_with_epoch(
        self, op: str, **args: Any
    ) -> Tuple[Dict[str, Any], Optional[int]]:
        """Like :meth:`call`, but also returns the response's epoch.

        Under pipelining ``last_epoch`` is shared between concurrent
        calls; this returns the epoch stamped on *this* response, so a
        caller can attribute the answer to exactly one serving
        generation across a hot reload.
        """
        delays = _backoff_delays(
            self.backoff_base, self.backoff_factor, self.max_retries
        )
        attempt = 0
        while True:
            try:
                return await self._call_once(op, args)
            except ServiceError as exc:
                if not exc.retryable or attempt >= len(delays):
                    raise
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt >= len(delays):
                    raise
            except asyncio.TimeoutError:
                if attempt >= len(delays):
                    raise
            await asyncio.sleep(_jittered(delays[attempt], self._rng))
            attempt += 1

    async def _call_once(
        self, op: str, args: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[int]]:
        await self.connect()
        assert self._writer is not None
        loop = asyncio.get_running_loop()
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = loop.create_future()
        self._pending[request_id] = future
        try:
            # A bare write() never yields to the loop, so concurrent
            # pipelined calls can't interleave frames — no lock needed;
            # drain() is only awaited for transport back-pressure.
            self._writer.write(
                protocol.encode_frame(
                    protocol.request(request_id, op, args),
                    self.wire_active or protocol.WIRE_JSON,
                )
            )
            await self._writer.drain()
            # The timeout guards only the wait for the response, and is a
            # bare call_later + await rather than asyncio.wait_for: this
            # is the per-request hot path, and wait_for's extra coroutine,
            # waiter future, and done-callback bookkeeping are measurable
            # at serving rates.  The recv loop only resolves futures that
            # are not yet done, so a late response after expiry is simply
            # dropped.
            handle = loop.call_later(self.call_timeout, _expire_call, future)
            try:
                response = await future
            finally:
                handle.cancel()
        finally:
            self._pending.pop(request_id, None)
        epoch = response.get("epoch")
        self._observe_epoch(epoch)
        if not isinstance(epoch, int):
            epoch = None
        if response.get("ok"):
            return response.get("result", {}), epoch
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", protocol.INTERNAL)),
            str(error.get("message", "unknown error")),
        )

    async def _recv_loop(self) -> None:
        assert self._reader is not None
        frames = protocol.BufferedFrameReader(self._reader)
        try:
            while True:
                response = await frames.read_frame()
                if response is None:
                    raise ConnectionError("server closed the connection")
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            ConnectionError,
            protocol.ProtocolError,
            asyncio.IncompleteReadError,
        ) as exc:
            # The connection is dead (server restart, or a reset racing a
            # hot reload).  Tear it down *here* so the retry loop's next
            # connect() opens a fresh one instead of writing into a dead
            # transport and stalling until call_timeout.
            self._mark_connection_lost(ConnectionError(str(exc)))
        except asyncio.CancelledError:
            raise

    def _mark_connection_lost(self, exc: Exception) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        self._recv_task = None  # this task is exiting on its own
        if writer is not None:
            writer.close()
        self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    def _observe_epoch(self, epoch: Any) -> None:
        if not isinstance(epoch, int):
            return
        previous, self.last_epoch = self.last_epoch, epoch
        if previous != epoch and self.on_epoch_change is not None:
            self.on_epoch_change(previous, epoch)

    # -- convenience wrappers ---------------------------------------------

    async def ping(self) -> bool:
        return bool((await self.call("ping")).get("pong"))

    async def master(self, v: int) -> Dict[str, Any]:
        return await self.call("master", v=v)

    async def neighbors(self, v: int) -> Dict[str, Any]:
        return await self.call("neighbors", v=v)

    async def edge(self, u: int, v: int) -> Dict[str, Any]:
        return await self.call("edge", u=u, v=v)

    async def partition_stats(self, k: int) -> Dict[str, Any]:
        return await self.call("partition_stats", k=k)

    async def stats(self) -> Dict[str, Any]:
        return await self.call("stats")

    async def reload(self, directory: str, verify: bool = True) -> Dict[str, Any]:
        """Ask the server to hot-swap the bundle at ``directory`` in."""
        return await self.call("reload", directory=str(directory), verify=verify)

    async def insert_edge(self, u: int, v: int) -> Dict[str, Any]:
        """Insert edge ``{u, v}``; idempotent under transparent retry."""
        self._next_cseq += 1
        return await self.call(
            "insert_edge", u=u, v=v, client=self.client_tag, cseq=self._next_cseq
        )

    async def delete_edge(self, u: int, v: int) -> Dict[str, Any]:
        """Delete edge ``{u, v}``; idempotent under transparent retry."""
        self._next_cseq += 1
        return await self.call(
            "delete_edge", u=u, v=v, client=self.client_tag, cseq=self._next_cseq
        )

    async def ingest_stats(self) -> Dict[str, Any]:
        return await self.call("ingest_stats")

    async def compact(self, verify: bool = True) -> Dict[str, Any]:
        """Fold pending mutations into the bundle and swap the new epoch in.

        Large folds can exceed ``call_timeout``; raise it (or retry — the
        retried request finds the compaction either still ``ingest_frozen``
        or already done and skipped) when compacting big overlays.
        """
        return await self.call("compact", verify=verify)


class SyncServiceClient:
    """Blocking one-request-at-a-time client over a plain socket."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        *,
        path: Optional[str] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        timeout: float = 10.0,
        jitter: bool = True,
        jitter_seed: Optional[int] = None,
        client_tag: Optional[str] = None,
        wire: str = protocol.WIRE_JSON,
    ) -> None:
        if path is None and (host is None or port is None):
            raise ValueError("need host+port (TCP) or path= (UNIX socket)")
        if wire not in protocol.WIRES:
            raise ValueError(f"wire must be one of {sorted(protocol.WIRES)}")
        self.host = host
        self.port = port
        self.path = path
        self.wire = wire
        self.wire_active: Optional[str] = (
            protocol.WIRE_JSON if wire == protocol.WIRE_JSON else None
        )
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.timeout = timeout
        self._rng: Optional[random.Random] = (
            random.Random(jitter_seed) if jitter else None
        )
        self.last_epoch: Optional[int] = None
        self.client_tag = client_tag or f"c-{uuid.uuid4().hex[:12]}"
        self._next_cseq = 0
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    def connect(self) -> "SyncServiceClient":
        if self._sock is None:
            self._open_socket()
            if self.wire_active is None:
                self._negotiate_binary()
        return self

    def _open_socket(self) -> None:
        if self.path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.path)
            except BaseException:
                sock.close()
                raise
            self._sock = sock
        else:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )

    def _negotiate_binary(self) -> None:
        """Blocking counterpart of the async codec negotiation."""
        assert self._sock is not None
        response: Optional[Dict[str, Any]] = None
        try:
            protocol.send_frame_sync(
                self._sock, protocol.request(0, "ping"), protocol.WIRE_BINARY
            )
            response = protocol.recv_frame_sync(self._sock)
        except (ConnectionError, OSError, socket.timeout, protocol.ProtocolError):
            response = None
        if response is not None and response.get("ok"):
            self.wire_active = protocol.WIRE_BINARY
            epoch = response.get("epoch")
            if isinstance(epoch, int):
                self.last_epoch = epoch
            return
        self.wire_active = protocol.WIRE_JSON
        if response is None:
            self.close()
            self._open_socket()

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "SyncServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(self, op: str, **args: Any) -> Dict[str, Any]:
        """Issue one request; returns the ``result`` dict (retries like async)."""
        delays = _backoff_delays(
            self.backoff_base, self.backoff_factor, self.max_retries
        )
        attempt = 0
        while True:
            try:
                return self._call_once(op, args)
            except ServiceError as exc:
                if not exc.retryable or attempt >= len(delays):
                    raise
            except (ConnectionError, socket.timeout, protocol.ProtocolError):
                self.close()
                if attempt >= len(delays):
                    raise
            time.sleep(_jittered(delays[attempt], self._rng))
            attempt += 1

    def _call_once(self, op: str, args: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        request_id = self._next_id
        protocol.send_frame_sync(
            self._sock,
            protocol.request(request_id, op, args),
            self.wire_active or protocol.WIRE_JSON,
        )
        response = protocol.recv_frame_sync(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        epoch = response.get("epoch")
        if isinstance(epoch, int):
            self.last_epoch = epoch
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", protocol.INTERNAL)),
            str(error.get("message", "unknown error")),
        )

    def reload(self, directory: str, verify: bool = True) -> Dict[str, Any]:
        """Ask the server to hot-swap the bundle at ``directory`` in."""
        return self.call("reload", directory=str(directory), verify=verify)

    def insert_edge(self, u: int, v: int) -> Dict[str, Any]:
        """Insert edge ``{u, v}``; idempotent under transparent retry."""
        self._next_cseq += 1
        return self.call(
            "insert_edge", u=u, v=v, client=self.client_tag, cseq=self._next_cseq
        )

    def delete_edge(self, u: int, v: int) -> Dict[str, Any]:
        """Delete edge ``{u, v}``; idempotent under transparent retry."""
        self._next_cseq += 1
        return self.call(
            "delete_edge", u=u, v=v, client=self.client_tag, cseq=self._next_cseq
        )

    def ingest_stats(self) -> Dict[str, Any]:
        return self.call("ingest_stats")

    def compact(self, verify: bool = True) -> Dict[str, Any]:
        """Fold pending mutations into the bundle and swap the new epoch in."""
        return self.call("compact", verify=verify)
