"""Wire protocol: length-prefixed frames over a byte stream, JSON or binary.

Every message — request or response — is one frame::

    +----------------+----------------------+
    | 4-byte big-end | frame body           |
    | payload length |                      |
    +----------------+----------------------+

The body is one of two self-identifying codecs, distinguished by the
first byte:

* **JSON** (the fallback and the executable spec): a UTF-8 JSON object.
  JSON text never starts with byte ``0xB7`` (an invalid UTF-8 lead
  byte), so the two codecs are unambiguous per frame.
* **Binary** (:data:`WIRE_BINARY`): magic byte ``0xB7``, a version byte
  (``0x01``), then exactly one value in a msgpack-style typed encoding
  restricted to the protocol's closed vocabulary — see
  :func:`encode_value` for the tag grammar.  Integer-only arrays (vertex
  ids, partition lists — the bulk of every hot response) are packed
  little-endian runs encoded and decoded at C speed via the ``array``
  module.  Binary answers are bit-identical to JSON answers
  (``tests/service/test_wire_parity.py`` pins this).

A connection may carry both codecs: the server decodes each frame by its
first byte and answers in the codec of the request that produced the
response.  Clients that want binary negotiate at connect time by sending
a binary ``ping`` and downgrade to JSON if the server rejects it or
drops the connection.

Requests are ``{"id": <int>, "op": <str>, "args": {...}}``; responses are
``{"id": <int>, "ok": true, "result": {...}}`` or
``{"id": <int>, "ok": false, "error": {"code": <str>, "message": <str>}}``,
both optionally carrying ``"epoch": <int>`` — the serving generation of
the store that produced the answer (see ``StoreManager``); it increments
by one on every successful hot reload.
The server answers each connection's requests **in request order**, so a
blocking client can match responses positionally; the pipelined asyncio
client matches on ``id`` anyway.

Error codes are a closed set (:data:`ERROR_CODES`) so clients can switch on
them; anything a client does not recognise should be treated like
``internal``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import sys
from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Frames above this size are rejected — a corrupt or hostile length prefix
#: must not make the server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Wire codec names, as negotiated by clients and recorded in benches.
WIRE_JSON = "json"
WIRE_BINARY = "binary"
WIRES = frozenset({WIRE_JSON, WIRE_BINARY})

#: First byte of every binary frame body.  0xB7 is an invalid UTF-8 lead
#: byte, so no JSON frame can start with it.
BINARY_MAGIC = 0xB7
BINARY_VERSION = 0x01
_MAGIC_PREFIX = bytes((BINARY_MAGIC,))

# -- error codes -----------------------------------------------------------

#: Request malformed (not JSON / missing fields / unknown op / bad args).
BAD_REQUEST = "bad_request"
#: Vertex, edge, or partition not present in the store.
NOT_FOUND = "not_found"
#: The bounded request queue is full — back off and retry.
OVERLOAD = "overload"
#: The request sat in the server longer than the per-request timeout.
TIMEOUT = "timeout"
#: The server is draining for shutdown and accepts no new work.
SHUTTING_DOWN = "shutting_down"
#: A hot reload could not be applied; the old epoch keeps serving.
RELOAD_FAILED = "reload_failed"
#: A reload arrived while another bundle build was in flight.
RELOAD_IN_PROGRESS = "reload_in_progress"
#: A mutation contradicts current state (duplicate insert, double delete).
CONFLICT = "conflict"
#: Every partition is at the ingest capacity bound; compact or repartition.
CAPACITY = "capacity"
#: Mutations are paused while a compaction folds the overlay — retry shortly.
INGEST_FROZEN = "ingest_frozen"
#: No worker currently serves the shard the request routes to (every
#: replica is down or mid-respawn) — back off and retry; failover or the
#: supervisor's respawn makes the shard answerable again shortly.
UNAVAILABLE = "unavailable"
#: A shard sub-query named an epoch this worker no longer (or does not
#: yet) retain — cluster-internal; the front-end treats it as a failover
#: signal, clients should never see it.
STALE_EPOCH = "stale_epoch"
#: Handler raised; the failure is logged server-side.
INTERNAL = "internal"

ERROR_CODES = frozenset(
    {
        BAD_REQUEST,
        NOT_FOUND,
        OVERLOAD,
        TIMEOUT,
        SHUTTING_DOWN,
        RELOAD_FAILED,
        RELOAD_IN_PROGRESS,
        CONFLICT,
        CAPACITY,
        INGEST_FROZEN,
        UNAVAILABLE,
        STALE_EPOCH,
        INTERNAL,
    }
)

#: Error codes a client may transparently retry (with backoff).  A frozen
#: ingest is retryable by construction: the mutation was *not* applied and
#: the freeze lifts when the compaction's fold finishes.  ``unavailable``
#: is retryable the same way: the read was never executed, and a replica
#: promotion or supervisor respawn answers the retry.
RETRYABLE_CODES = frozenset({OVERLOAD, TIMEOUT, INGEST_FROZEN, UNAVAILABLE})


class ProtocolError(ValueError):
    """A frame violated the protocol (bad length, bad JSON, not an object)."""


# -- pre-encoded splicing --------------------------------------------------

_UNSET = object()


class PreEncoded:
    """An already binary-encoded value, spliced verbatim into binary frames.

    The cluster front-end wraps worker-encoded ``neighbors`` partials in
    this so the response encoder can concatenate the bytes into the
    outgoing frame without a decode/re-encode round-trip.  A JSON client
    asking for the same answer forces :meth:`value` — a one-time decode,
    cached, so coalesced responses shared across mixed-codec connections
    pay it at most once.
    """

    __slots__ = ("data", "_decoded")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self._decoded = _UNSET

    def value(self) -> Any:
        if self._decoded is _UNSET:
            self._decoded = decode_value(self.data)
        return self._decoded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreEncoded({len(self.data)} bytes)"


# -- binary value codec ----------------------------------------------------
#
# Tag grammar (all multi-byte lengths and integers little-endian):
#
#   0x00..0x7F  positive fixint
#   0x80|n      fixmap, n < 16 entries            0xC0  nil
#   0x90|n      fixarray, n < 16 items            0xC2  false   0xC3  true
#   0xA0|n      fixstr, n < 32 bytes              0xCB  float64
#   0xC4/C5/C6  bin  8/16/32-bit length
#   0xD0/D1/D2/D3  int  8/16/32/64-bit signed
#   0xD9/DA/DB  str  8/16/32-bit length
#   0xDC/DD     array 16/32-bit count             0xDE/DF  map 16/32
#   0xE1        packed int run: u8 width (1|2|4|8), u32 count,
#               count*width bytes of signed little-endian integers
#   0xE2        bigint: u32 length, ASCII decimal (ints beyond int64)
#
# Encoding is canonical: the smallest form that fits is always chosen,
# and any non-empty list of (exactly-typed) ints becomes a packed run of
# the narrowest width holding every element — so equal payloads encode
# to equal bytes, which is what lets the cluster splice worker-encoded
# partials into responses without re-encoding.

_MAX_DEPTH = 64

_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: array typecodes by item width — resolved from the platform so 'i'/'l'
#: size differences cannot change the wire format.
_WIDTH_CODE: Dict[int, str] = {}
for _code in ("b", "h", "i", "l", "q"):
    _WIDTH_CODE.setdefault(array(_code).itemsize, _code)

_LITTLE = sys.byteorder == "little"

#: Cache of encoded short strings — the protocol's key vocabulary is a
#: closed set ("id", "op", "ok", "result", "neighbors", ...), so almost
#: every map key hits this.
_STR_CACHE: Dict[str, bytes] = {}
_STR_CACHE_MAX = 1024


def _encode_str(text: str) -> bytes:
    cached = _STR_CACHE.get(text)
    if cached is not None:
        return cached
    raw = text.encode("utf-8")
    n = len(raw)
    if n < 32:
        encoded = bytes((0xA0 | n,)) + raw
    elif n < 256:
        encoded = bytes((0xD9, n)) + raw
    elif n < 65536:
        encoded = b"\xda" + _U16.pack(n) + raw
    else:
        encoded = b"\xdb" + _U32.pack(n) + raw
    if n < 64 and len(_STR_CACHE) < _STR_CACHE_MAX:
        _STR_CACHE[text] = encoded
    return encoded


def _encode_int(value: int, out: bytearray) -> None:
    if 0 <= value < 0x80:
        out.append(value)
    elif -0x80 <= value < 0x80:
        out.append(0xD0)
        out += value.to_bytes(1, "little", signed=True)
    elif -0x8000 <= value < 0x8000:
        out.append(0xD1)
        out += value.to_bytes(2, "little", signed=True)
    elif -0x80000000 <= value < 0x80000000:
        out.append(0xD2)
        out += value.to_bytes(4, "little", signed=True)
    elif -0x8000000000000000 <= value < 0x8000000000000000:
        out.append(0xD3)
        out += value.to_bytes(8, "little", signed=True)
    else:
        digits = str(value).encode("ascii")
        out.append(0xE2)
        out += _U32.pack(len(digits))
        out += digits


def _int_run_width(lo: int, hi: int) -> Optional[int]:
    if -0x80 <= lo and hi < 0x80:
        return 1
    if -0x8000 <= lo and hi < 0x8000:
        return 2
    if -0x80000000 <= lo and hi < 0x80000000:
        return 4
    if -0x8000000000000000 <= lo and hi < 0x8000000000000000:
        return 8
    return None


def _json_key(key: Any) -> str:
    """Coerce a non-string map key exactly the way ``json.dumps`` does,
    so both codecs agree on the decoded payload."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return json.dumps(key)
    raise ProtocolError(f"unencodable map key type {type(key).__name__}")


def _enc(value: Any, out: bytearray, depth: int) -> None:
    kind = type(value)
    if kind is int:
        _encode_int(value, out)
    elif kind is str:
        encoded = _encode_str(value)
        if len(out) + len(encoded) > MAX_FRAME_BYTES + 16:
            raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        out += encoded
    elif kind is list or kind is tuple:
        _enc_sequence(value, out, depth)
    elif kind is dict:
        _enc_map(value, out, depth)
    elif value is None:
        out.append(0xC0)
    elif kind is bool:
        out.append(0xC3 if value else 0xC2)
    elif kind is float:
        out.append(0xCB)
        out += _F64.pack(value)
    elif kind is bytes or kind is bytearray:
        n = len(value)
        if len(out) + n > MAX_FRAME_BYTES + 16:
            raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        if n < 256:
            out.append(0xC4)
            out.append(n)
        elif n < 65536:
            out.append(0xC5)
            out += _U16.pack(n)
        else:
            out.append(0xC6)
            out += _U32.pack(n)
        out += value
    elif kind is PreEncoded:
        if len(out) + len(value.data) > MAX_FRAME_BYTES + 16:
            raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        out += value.data
    elif isinstance(value, bool):  # bool subclasses before int
        out.append(0xC3 if value else 0xC2)
    elif isinstance(value, int):
        _encode_int(int(value), out)
    elif isinstance(value, float):
        out.append(0xCB)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        out += _encode_str(str(value))
    elif isinstance(value, (list, tuple)):
        _enc_sequence(list(value), out, depth)
    elif isinstance(value, dict):
        _enc_map(value, out, depth)
    elif isinstance(value, PreEncoded):
        out += value.data
    else:
        raise ProtocolError(f"unencodable value type {type(value).__name__}")


_INT_TYPE_SET = frozenset((int,))


def _enc_sequence(value: Any, out: bytearray, depth: int) -> None:
    if depth >= _MAX_DEPTH:
        raise ProtocolError("value nested too deeply")
    if len(out) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    n = len(value)
    # C-speed exact-type scan: bools are ints to ``array`` but must not
    # lose their type on the wire, so only `type(x) is int` runs pack.
    if n and type(value[0]) is int and set(map(type, value)) == _INT_TYPE_SET:
        width = _int_run_width(min(value), max(value))
        if width is not None:
            if len(out) + n * width > MAX_FRAME_BYTES + 16:
                raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
            run = array(_WIDTH_CODE[width], value)
            if not _LITTLE:  # pragma: no cover - big-endian hosts
                run.byteswap()
            out.append(0xE1)
            out.append(width)
            out += _U32.pack(n)
            out += run.tobytes()
            return
    if n < 16:
        out.append(0x90 | n)
    elif n < 65536:
        out.append(0xDC)
        out += _U16.pack(n)
    else:
        out.append(0xDD)
        out += _U32.pack(n)
    depth += 1
    for item in value:
        _enc(item, out, depth)


def _enc_map(value: Dict[Any, Any], out: bytearray, depth: int) -> None:
    if depth >= _MAX_DEPTH:
        raise ProtocolError("value nested too deeply")
    if len(out) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    n = len(value)
    if n < 16:
        out.append(0x80 | n)
    elif n < 65536:
        out.append(0xDE)
        out += _U16.pack(n)
    else:
        out.append(0xDF)
        out += _U32.pack(n)
    depth += 1
    cache_get = _STR_CACHE.get
    for key, item in value.items():
        encoded = cache_get(key) if type(key) is str else None
        if encoded is None:
            encoded = _encode_str(key if type(key) is str else _json_key(key))
        out += encoded
        _enc(item, out, depth)


def encode_value(value: Any) -> bytes:
    """Encode one value in the binary codec (no magic/version prefix).

    This is what workers use to pre-encode ``shard_query`` partials: the
    returned bytes can be wrapped in :class:`PreEncoded` and spliced
    verbatim into any binary response frame.
    """
    out = bytearray()
    _enc(value, out, 0)
    return bytes(out)


def encode_int_run(values: List[int]) -> bytes:
    """Encode a list of plain ints, skipping the exact-type scan.

    Trusted fast path for store-produced id lists (worker ``shard_query``
    partials).  Produces byte-identical output to :func:`encode_value` on
    the same list — the canonical packed run — so spliced partials stay
    indistinguishable from freshly encoded ones.
    """
    n = len(values)
    if not n:
        return b"\x90"
    width = _int_run_width(min(values), max(values))
    if width is None:  # ids beyond int64 — fall back to the generic path
        return encode_value(list(values))
    run = array(_WIDTH_CODE[width], values)
    if not _LITTLE:  # pragma: no cover - big-endian hosts
        run.byteswap()
    return bytes((0xE1, width)) + _U32.pack(n) + run.tobytes()


def _dec(buf: bytes, pos: int, depth: int) -> Tuple[Any, int]:
    end = len(buf)
    if pos >= end:
        raise ProtocolError("truncated binary value")
    tag = buf[pos]
    pos += 1
    if tag < 0x80:
        return tag, pos
    if tag < 0x90:
        return _dec_map(buf, pos, tag & 0x0F, depth)
    if tag < 0xA0:
        return _dec_array(buf, pos, tag & 0x0F, depth)
    if tag < 0xC0:
        n = tag & 0x1F
        kend = pos + n
        if kend > end:
            raise ProtocolError("truncated binary value")
        raw = buf[pos:kend]
        cached = _KEY_CACHE.get(raw)
        if cached is not None:
            return cached, kend
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad UTF-8 in binary string: {exc}") from exc
        if len(_KEY_CACHE) < _KEY_CACHE_MAX:
            _KEY_CACHE[raw] = text
        return text, kend
    if tag == 0xC0:
        return None, pos
    if tag == 0xC2:
        return False, pos
    if tag == 0xC3:
        return True, pos
    if tag == 0xCB:
        if pos + 8 > end:
            raise ProtocolError("truncated binary value")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if 0xD0 <= tag <= 0xD3:
        width = 1 << (tag - 0xD0)
        if pos + width > end:
            raise ProtocolError("truncated binary value")
        return int.from_bytes(buf[pos : pos + width], "little", signed=True), pos + width
    if 0xD9 <= tag <= 0xDB:
        n, pos = _dec_len(buf, pos, tag - 0xD9)
        return _dec_str(buf, pos, n)
    if 0xC4 <= tag <= 0xC6:
        n, pos = _dec_len(buf, pos, tag - 0xC4)
        if pos + n > end:
            raise ProtocolError("truncated binary value")
        return bytes(buf[pos : pos + n]), pos + n
    if tag == 0xDC or tag == 0xDD:
        n, pos = _dec_len(buf, pos, 1 if tag == 0xDC else 2)
        return _dec_array(buf, pos, n, depth)
    if tag == 0xDE or tag == 0xDF:
        n, pos = _dec_len(buf, pos, 1 if tag == 0xDE else 2)
        return _dec_map(buf, pos, n, depth)
    if tag == 0xE1:
        if pos + 5 > end:
            raise ProtocolError("truncated binary value")
        width = buf[pos]
        code = _WIDTH_CODE.get(width)
        if code is None:
            raise ProtocolError(f"bad packed-run width {width}")
        (count,) = _U32.unpack_from(buf, pos + 1)
        pos += 5
        nbytes = count * width
        if pos + nbytes > end:
            raise ProtocolError("truncated binary value")
        run = array(code)
        run.frombytes(buf[pos : pos + nbytes])
        if not _LITTLE:  # pragma: no cover - big-endian hosts
            run.byteswap()
        return run.tolist(), pos + nbytes
    if tag == 0xE2:
        n, pos = _dec_len(buf, pos, 2)
        if pos + n > end:
            raise ProtocolError("truncated binary value")
        try:
            return int(buf[pos : pos + n].decode("ascii")), pos + n
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"bad bigint: {exc}") from exc
    raise ProtocolError(f"unknown binary tag 0x{tag:02X}")


def _dec_len(buf: bytes, pos: int, size_class: int) -> Tuple[int, int]:
    width = 1 << size_class
    if pos + width > len(buf):
        raise ProtocolError("truncated binary value")
    if width == 1:
        return buf[pos], pos + 1
    if width == 2:
        return _U16.unpack_from(buf, pos)[0], pos + 2
    return _U32.unpack_from(buf, pos)[0], pos + 4


def _dec_str(buf: bytes, pos: int, n: int) -> Tuple[str, int]:
    end = pos + n
    if end > len(buf):
        raise ProtocolError("truncated binary value")
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"bad UTF-8 in binary string: {exc}") from exc


def _dec_array(buf: bytes, pos: int, n: int, depth: int) -> Tuple[List[Any], int]:
    if depth >= _MAX_DEPTH:
        raise ProtocolError("binary value nested too deeply")
    if n > len(buf) - pos:  # every element costs at least one byte
        raise ProtocolError("truncated binary value")
    depth += 1
    items: List[Any] = []
    append = items.append
    for _ in range(n):
        item, pos = _dec(buf, pos, depth)
        append(item)
    return items, pos


#: Decoded-key cache: the key vocabulary is closed, so interning the
#: (raw fixstr bytes → str) mapping skips a UTF-8 decode per map entry.
_KEY_CACHE: Dict[bytes, str] = {}
_KEY_CACHE_MAX = 1024


def _dec_map(buf: bytes, pos: int, n: int, depth: int) -> Tuple[Dict[str, Any], int]:
    if depth >= _MAX_DEPTH:
        raise ProtocolError("binary value nested too deeply")
    if 2 * n > len(buf) - pos:
        raise ProtocolError("truncated binary value")
    depth += 1
    end = len(buf)
    mapping: Dict[str, Any] = {}
    cache_get = _KEY_CACHE.get
    for _ in range(n):
        if pos >= end:
            raise ProtocolError("truncated binary value")
        tag = buf[pos]
        if 0xA0 <= tag < 0xC0:  # fixstr key — the common case
            kend = pos + 1 + (tag & 0x1F)
            if kend > end:
                raise ProtocolError("truncated binary value")
            raw = buf[pos + 1 : kend]
            key = cache_get(raw)
            if key is None:
                try:
                    key = raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(f"bad UTF-8 in binary string: {exc}") from exc
                if len(_KEY_CACHE) < _KEY_CACHE_MAX:
                    _KEY_CACHE[raw] = key
            pos = kend
        else:
            key, pos = _dec(buf, pos, depth)
            if type(key) is not str:
                raise ProtocolError(
                    f"binary map key must be str, got {type(key).__name__}"
                )
        if pos >= end:
            raise ProtocolError("truncated binary value")
        vtag = buf[pos]
        if vtag < 0x80:  # inline fixint values — ids, counts, epochs
            mapping[key] = vtag
            pos += 1
        elif 0xD0 <= vtag <= 0xD3:
            width = 1 << (vtag - 0xD0)
            vend = pos + 1 + width
            if vend > end:
                raise ProtocolError("truncated binary value")
            mapping[key] = int.from_bytes(buf[pos + 1 : vend], "little", signed=True)
            pos = vend
        else:
            mapping[key], pos = _dec(buf, pos, depth)
    return mapping, pos


def decode_value(data: bytes) -> Any:
    """Decode one binary-codec value (inverse of :func:`encode_value`)."""
    value, pos = _dec(data, 0, 0)
    if pos != len(data):
        raise ProtocolError(f"{len(data) - pos} trailing bytes after binary value")
    return value


# -- frame encoding --------------------------------------------------------

#: Chunking granularity for the JSON encoder: lists longer than this are
#: serialised slice by slice, strings longer than ``_JSON_CHUNK_CHARS``
#: piece by piece, so an over-limit body is rejected after at most one
#: extra chunk instead of materialising the whole thing first.
_JSON_CHUNK_ITEMS = 4096
_JSON_CHUNK_CHARS = 1 << 20


def _json_default(obj: Any) -> Any:
    if isinstance(obj, PreEncoded):
        return obj.value()
    raise TypeError(f"unencodable JSON value type {type(obj).__name__}")


#: One precompiled encoder — ``json.dumps`` with non-default arguments
#: builds a fresh ``JSONEncoder`` per call, which costs more than the
#: actual serialisation for hot-path-sized payloads.
_JSON_ENCODE = json.JSONEncoder(separators=(",", ":"), default=_json_default).encode


def _json_scalar(value: Any) -> bytes:
    return _JSON_ENCODE(value).encode("utf-8")


def _json_walk(value: Any, emit: Callable[[bytes], None]) -> None:
    if isinstance(value, dict):
        for item in value.values():
            if (
                isinstance(item, dict)
                or (isinstance(item, (list, tuple)) and len(item) > _JSON_CHUNK_ITEMS)
                or (isinstance(item, str) and len(item) > _JSON_CHUNK_CHARS)
                or isinstance(item, PreEncoded)
            ):
                break
        else:
            # Shallow dict of small values — one C-speed dumps call.
            emit(_json_scalar(value))
            return
        emit(b"{")
        first = True
        for key, item in value.items():
            prefix = b"" if first else b","
            first = False
            emit(prefix + _json_scalar(_json_key(key)) + b":")
            _json_walk(item, emit)
        emit(b"}")
    elif isinstance(value, (list, tuple)) and len(value) > _JSON_CHUNK_ITEMS:
        emit(b"[")
        for i in range(0, len(value), _JSON_CHUNK_ITEMS):
            piece = _json_scalar(list(value[i : i + _JSON_CHUNK_ITEMS]))
            emit((b"" if i == 0 else b",") + piece[1:-1])
        emit(b"]")
    elif isinstance(value, str) and len(value) > _JSON_CHUNK_CHARS:
        emit(b'"')
        for i in range(0, len(value), _JSON_CHUNK_CHARS):
            emit(_json_scalar(value[i : i + _JSON_CHUNK_CHARS])[1:-1])
        emit(b'"')
    elif isinstance(value, PreEncoded):
        _json_walk(value.value(), emit)
    else:
        emit(_json_scalar(value))


def encode_json_body(payload: Dict[str, Any]) -> bytes:
    """Serialise a payload as UTF-8 JSON with an incremental size check.

    Emits in chunks and rejects as soon as the running total passes
    :data:`MAX_FRAME_BYTES` — a response 10× over the limit allocates
    roughly one chunk past the limit, not 10× the limit, before raising.
    """
    pieces: List[bytes] = []
    total = 0

    def emit(piece: bytes) -> None:
        nonlocal total
        total += len(piece)
        if total > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        pieces.append(piece)

    try:
        _json_walk(payload, emit)
    except TypeError as exc:
        raise ProtocolError(str(exc)) from exc
    return b"".join(pieces)


def encode_binary_body(payload: Dict[str, Any]) -> bytes:
    """Serialise a payload in the binary codec (magic + version + value)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be an object, got {type(payload).__name__}")
    out = bytearray()
    out.append(BINARY_MAGIC)
    out.append(BINARY_VERSION)
    _enc(payload, out, 0)
    return bytes(out)


def encode_frame(payload: Dict[str, Any], wire: str = WIRE_JSON) -> bytes:
    """Serialise one message to its on-wire form in the given codec."""
    if wire == WIRE_BINARY:
        body = encode_binary_body(payload)
    else:
        body = encode_json_body(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def detect_wire(body: bytes) -> str:
    """Which codec a frame body uses, by its first byte."""
    return WIRE_BINARY if body[:1] == _MAGIC_PREFIX else WIRE_JSON


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body (either codec); raises :class:`ProtocolError` on
    garbage."""
    if body[:1] == _MAGIC_PREFIX:
        if len(body) < 2:
            raise ProtocolError("binary frame truncated before version byte")
        if body[1] != BINARY_VERSION:
            raise ProtocolError(f"unsupported binary protocol version {body[1]}")
        payload, pos = _dec(body, 2, 0)
        if pos != len(body):
            raise ProtocolError(f"{len(body) - pos} trailing bytes after binary frame")
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"frame must be an object, got {type(payload).__name__}"
            )
        return payload
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# -- message constructors --------------------------------------------------

def request(request_id: int, op: str, args: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a request message."""
    return {"id": request_id, "op": op, "args": args or {}}


def ok_response(
    request_id: Any, result: Dict[str, Any], epoch: Optional[int] = None
) -> Dict[str, Any]:
    """Build a success response (``epoch`` stamps the serving generation)."""
    response = {"id": request_id, "ok": True, "result": result}
    if epoch is not None:
        response["epoch"] = epoch
    return response


def error_response(
    request_id: Any, code: str, message: str, epoch: Optional[int] = None
) -> Dict[str, Any]:
    """Build an error response with one of :data:`ERROR_CODES`."""
    response = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if epoch is not None:
        response["epoch"] = epoch
    return response


# -- asyncio stream helpers ------------------------------------------------

#: Bytes pulled from the transport per refill of a BufferedFrameReader.
_READ_CHUNK = 1 << 16


class BufferedFrameReader:
    """Incremental frame decoder that amortises awaits over TCP chunks.

    :func:`read_frame` costs two ``readexactly`` awaits per frame even
    when the bytes are already buffered.  This reader instead pulls whole
    chunks with ``reader.read()`` and slices frames out of its own buffer,
    so a chunk carrying N pipelined frames costs one await, not 2N —
    the hot path on both the server's per-connection reader and the
    pipelined client's receive loop.

    Same contract as :func:`read_frame`: returns ``None`` on clean EOF at
    a frame boundary, raises :class:`ProtocolError` on a truncated or
    oversized frame.  After each successful read, :attr:`last_wire` holds
    the codec of that frame — the server answers in the codec of the
    request that produced the response.
    """

    __slots__ = ("_reader", "_buf", "_pos", "last_wire")

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buf = b""
        self._pos = 0
        self.last_wire = WIRE_JSON

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        header_size = _LEN.size
        while True:
            have = len(self._buf) - self._pos
            if have >= header_size:
                (length,) = _LEN.unpack_from(self._buf, self._pos)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
                    )
                if have >= header_size + length:
                    start = self._pos + header_size
                    end = start + length
                    body = self._buf[start:end]
                    if end == len(self._buf):
                        self._buf = b""
                        self._pos = 0
                    else:
                        self._pos = end
                    self.last_wire = detect_wire(body)
                    return decode_body(body)
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if not have:
                    return None
                if have < header_size:
                    raise ProtocolError("connection closed mid-header")
                raise ProtocolError("connection closed mid-frame")
            if self._pos:
                self._buf = self._buf[self._pos :]
                self._pos = 0
            self._buf = self._buf + chunk if self._buf else chunk


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, payload: Dict[str, Any], wire: str = WIRE_JSON
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload, wire))
    await writer.drain()


# -- blocking socket helpers (sync client) ---------------------------------

def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame_sync(
    sock: socket.socket, payload: Dict[str, Any], wire: str = WIRE_JSON
) -> None:
    """Blocking frame write."""
    sock.sendall(encode_frame(payload, wire))


def recv_frame_sync(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking frame read; ``None`` on clean EOF at a frame boundary."""
    first = sock.recv(_LEN.size)
    if not first:
        return None
    header = first + (_recv_exactly(sock, _LEN.size - len(first)) if len(first) < _LEN.size else b"")
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return decode_body(_recv_exactly(sock, length))
