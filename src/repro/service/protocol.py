"""Wire protocol: length-prefixed JSON frames over a byte stream.

Every message — request or response — is one frame::

    +----------------+----------------------+
    | 4-byte big-end | UTF-8 JSON payload   |
    | payload length |                      |
    +----------------+----------------------+

Requests are ``{"id": <int>, "op": <str>, "args": {...}}``; responses are
``{"id": <int>, "ok": true, "result": {...}}`` or
``{"id": <int>, "ok": false, "error": {"code": <str>, "message": <str>}}``,
both optionally carrying ``"epoch": <int>`` — the serving generation of
the store that produced the answer (see ``StoreManager``); it increments
by one on every successful hot reload.
The server answers each connection's requests **in request order**, so a
blocking client can match responses positionally; the pipelined asyncio
client matches on ``id`` anyway.

Error codes are a closed set (:data:`ERROR_CODES`) so clients can switch on
them; anything a client does not recognise should be treated like
``internal``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

#: Frames above this size are rejected — a corrupt or hostile length prefix
#: must not make the server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

# -- error codes -----------------------------------------------------------

#: Request malformed (not JSON / missing fields / unknown op / bad args).
BAD_REQUEST = "bad_request"
#: Vertex, edge, or partition not present in the store.
NOT_FOUND = "not_found"
#: The bounded request queue is full — back off and retry.
OVERLOAD = "overload"
#: The request sat in the server longer than the per-request timeout.
TIMEOUT = "timeout"
#: The server is draining for shutdown and accepts no new work.
SHUTTING_DOWN = "shutting_down"
#: A hot reload could not be applied; the old epoch keeps serving.
RELOAD_FAILED = "reload_failed"
#: A reload arrived while another bundle build was in flight.
RELOAD_IN_PROGRESS = "reload_in_progress"
#: A mutation contradicts current state (duplicate insert, double delete).
CONFLICT = "conflict"
#: Every partition is at the ingest capacity bound; compact or repartition.
CAPACITY = "capacity"
#: Mutations are paused while a compaction folds the overlay — retry shortly.
INGEST_FROZEN = "ingest_frozen"
#: No worker currently serves the shard the request routes to (every
#: replica is down or mid-respawn) — back off and retry; failover or the
#: supervisor's respawn makes the shard answerable again shortly.
UNAVAILABLE = "unavailable"
#: A shard sub-query named an epoch this worker no longer (or does not
#: yet) retain — cluster-internal; the front-end treats it as a failover
#: signal, clients should never see it.
STALE_EPOCH = "stale_epoch"
#: Handler raised; the failure is logged server-side.
INTERNAL = "internal"

ERROR_CODES = frozenset(
    {
        BAD_REQUEST,
        NOT_FOUND,
        OVERLOAD,
        TIMEOUT,
        SHUTTING_DOWN,
        RELOAD_FAILED,
        RELOAD_IN_PROGRESS,
        CONFLICT,
        CAPACITY,
        INGEST_FROZEN,
        UNAVAILABLE,
        STALE_EPOCH,
        INTERNAL,
    }
)

#: Error codes a client may transparently retry (with backoff).  A frozen
#: ingest is retryable by construction: the mutation was *not* applied and
#: the freeze lifts when the compaction's fold finishes.  ``unavailable``
#: is retryable the same way: the read was never executed, and a replica
#: promotion or supervisor respawn answers the retry.
RETRYABLE_CODES = frozenset({OVERLOAD, TIMEOUT, INGEST_FROZEN, UNAVAILABLE})


class ProtocolError(ValueError):
    """A frame violated the protocol (bad length, bad JSON, not an object)."""


# -- encoding --------------------------------------------------------------

def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire form."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; raises :class:`ProtocolError` on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# -- message constructors --------------------------------------------------

def request(request_id: int, op: str, args: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a request message."""
    return {"id": request_id, "op": op, "args": args or {}}


def ok_response(
    request_id: Any, result: Dict[str, Any], epoch: Optional[int] = None
) -> Dict[str, Any]:
    """Build a success response (``epoch`` stamps the serving generation)."""
    response = {"id": request_id, "ok": True, "result": result}
    if epoch is not None:
        response["epoch"] = epoch
    return response


def error_response(
    request_id: Any, code: str, message: str, epoch: Optional[int] = None
) -> Dict[str, Any]:
    """Build an error response with one of :data:`ERROR_CODES`."""
    response = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if epoch is not None:
        response["epoch"] = epoch
    return response


# -- asyncio stream helpers ------------------------------------------------

#: Bytes pulled from the transport per refill of a BufferedFrameReader.
_READ_CHUNK = 1 << 16


class BufferedFrameReader:
    """Incremental frame decoder that amortises awaits over TCP chunks.

    :func:`read_frame` costs two ``readexactly`` awaits per frame even
    when the bytes are already buffered.  This reader instead pulls whole
    chunks with ``reader.read()`` and slices frames out of its own buffer,
    so a chunk carrying N pipelined frames costs one await, not 2N —
    the hot path on both the server's per-connection reader and the
    pipelined client's receive loop.

    Same contract as :func:`read_frame`: returns ``None`` on clean EOF at
    a frame boundary, raises :class:`ProtocolError` on a truncated or
    oversized frame.
    """

    __slots__ = ("_reader", "_buf", "_pos")

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buf = b""
        self._pos = 0

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        header_size = _LEN.size
        while True:
            have = len(self._buf) - self._pos
            if have >= header_size:
                (length,) = _LEN.unpack_from(self._buf, self._pos)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
                    )
                if have >= header_size + length:
                    start = self._pos + header_size
                    end = start + length
                    body = self._buf[start:end]
                    if end == len(self._buf):
                        self._buf = b""
                        self._pos = 0
                    else:
                        self._pos = end
                    return decode_body(body)
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if not have:
                    return None
                if have < header_size:
                    raise ProtocolError("connection closed mid-header")
                raise ProtocolError("connection closed mid-frame")
            if self._pos:
                self._buf = self._buf[self._pos :]
                self._pos = 0
            self._buf = self._buf + chunk if self._buf else chunk


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking socket helpers (sync client) ---------------------------------

def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame_sync(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Blocking frame write."""
    sock.sendall(encode_frame(payload))


def recv_frame_sync(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking frame read; ``None`` on clean EOF at a frame boundary."""
    first = sock.recv(_LEN.size)
    if not first:
        return None
    header = first + (_recv_exactly(sock, _LEN.size - len(first)) if len(first) < _LEN.size else b"")
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return decode_body(_recv_exactly(sock, length))
