"""Service metrics: counters and log-bucketed latency histograms.

The server records one latency sample per request (enqueue → response
ready) into a per-operation :class:`LatencyHistogram`.  Histograms use
geometric buckets (factor ~1.58, 10 buckets per decade) from 1 µs to
~100 s, so memory is O(1) regardless of traffic while quantile error is
bounded by one bucket width (< 26 %).  ``snapshot()`` renders everything
as plain JSON for the ``stats`` query and ``BENCH_serve.json``.

Everything here is synchronous and allocation-light: the hot path is one
``bisect`` plus two integer adds.  Single-threaded use only (the asyncio
server runs one loop); no locks.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Union

#: Bucket upper bounds in seconds: 10 per decade, 1 µs .. ~100 s.
_BUCKET_BOUNDS: List[float] = [
    1e-6 * (10 ** (i / 10)) for i in range(0, 81)
]

_QUANTILES = (0.5, 0.95, 0.99)


class LatencyHistogram:
    """Fixed-bucket latency histogram with streaming quantile estimates."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to zero)."""
        seconds = max(0.0, seconds)
        self.counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0.0 when empty).

        Uses the **nearest-rank** definition: the value at rank
        ``ceil(q * count)`` (1-based) of the sorted samples, which for a
        bucketed histogram is the upper bound of the bucket holding that
        rank, clamped to the observed max so outliers do not inflate the
        tail.  ``q = 0.0`` returns the observed minimum (rank 0 names no
        sample; the floor of the distribution is the honest answer).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min or 0.0
        rank = math.ceil(q * self.count)  # 1-based, in [1, count]
        seen = 0
        for i, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                bound = (
                    _BUCKET_BOUNDS[i]
                    if i < len(_BUCKET_BOUNDS)
                    else self.max or 0.0
                )
                return min(bound, self.max or bound)
        return self.max or 0.0

    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """Summary dict (times in milliseconds, as served by ``stats``).

        ``count`` is an exact integer; every other value is a float in
        milliseconds.
        """
        to_ms = 1e3
        return {
            "count": self.count,
            "mean_ms": round(self.mean() * to_ms, 4),
            "min_ms": round((self.min or 0.0) * to_ms, 4),
            "max_ms": round((self.max or 0.0) * to_ms, 4),
            **{
                f"p{int(q * 100)}_ms": round(self.quantile(q) * to_ms, 4)
                for q in _QUANTILES
            },
        }


class ServiceMetrics:
    """Named counters and gauges plus one latency histogram per operation.

    Hot re-partitioning adds its own instruments: the ``epoch`` gauge
    tracks the live serving generation, the ``reload_build`` /
    ``reload_swap`` histograms time bundle builds and full swaps, and the
    ``reloads_ok`` / ``reloads_failed`` / ``reloads_rejected`` /
    ``queries_drained`` / ``epochs_retired`` counters account for every
    swap outcome (see :class:`repro.service.store.StoreManager`).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.latency: Dict[str, LatencyHistogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its current value (last write wins).

        Stored as ``float`` — integer-valued gauges like ``epoch`` are
        widened on write so the ``gauges`` map stays uniformly typed.
        """
        self.gauges[name] = float(value)

    def observe(self, op: str, seconds: float) -> None:
        """Record a latency sample for operation ``op``."""
        hist = self.latency.get(op)
        if hist is None:
            hist = self.latency[op] = LatencyHistogram()
        hist.observe(seconds)

    def snapshot(self) -> Dict[str, object]:
        """Everything as plain JSON-serialisable data."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "latency": {
                op: hist.snapshot() for op, hist in sorted(self.latency.items())
            },
        }
