"""Online partition serving — the layer between reproduction and system.

A partitioning only earns its replication factor when it is *deployed*:
a distributed engine routes every vertex and edge access through the
master/mirror placement, and the communication bill is ``(RF - 1)·|V|``.
:mod:`repro.runtime` simulates that offline; this package serves it online:

* :class:`~repro.service.store.PartitionStore` — opens a
  :func:`~repro.partitioning.serialization.save_partition` directory and
  precomputes the routing table (vertex → master + mirrors, edge → owner,
  per-partition adjacency);
* :class:`~repro.service.server.PartitionServer` — an asyncio TCP server
  speaking length-prefixed JSON, with request batching, per-request
  timeouts, bounded-queue backpressure, and graceful drain on shutdown;
* :class:`~repro.service.client.ServiceClient` — pipelined asyncio client
  with retry/backoff (plus a blocking :class:`SyncServiceClient`);
* :class:`~repro.service.metrics.ServiceMetrics` — counters, gauges, and
  latency histograms (p50/p95/p99) exported through the ``stats`` query;
* :class:`~repro.service.store.StoreManager` — hot re-partitioning:
  builds a replacement store off the event loop, validates it, flips it
  in atomically as a new **epoch**, and drains requests pinned to the
  old epoch before the old store is released;
* :class:`~repro.service.ingest.Ingestor` +
  :class:`~repro.service.ingest.DeltaOverlay` +
  :class:`~repro.service.wal.WriteAheadLog` — the write path: WAL-backed
  edge inserts/deletes placed by the streaming heuristics, live exact RF
  over a base+delta overlay, and compaction back into a fresh bundle
  through the epoch-swap machinery.

See ``docs/SERVING.md`` for the architecture and wire protocol.
"""

from repro.service.client import ServiceClient, ServiceError, SyncServiceClient
from repro.service.handler import ServiceHandler
from repro.service.ingest import (
    CapacityError,
    ConflictError,
    DeltaOverlay,
    IngestError,
    IngestFrozen,
    Ingestor,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.server import PartitionServer
from repro.service.store import (
    BundleValidationError,
    PartitionStore,
    ReloadError,
    ReloadInProgress,
    StoreManager,
)
from repro.service.wal import WriteAheadLog

__all__ = [
    "BundleValidationError",
    "CapacityError",
    "ConflictError",
    "DeltaOverlay",
    "IngestError",
    "IngestFrozen",
    "Ingestor",
    "LatencyHistogram",
    "PartitionServer",
    "PartitionStore",
    "ReloadError",
    "ReloadInProgress",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "ServiceMetrics",
    "StoreManager",
    "SyncServiceClient",
    "WriteAheadLog",
]
