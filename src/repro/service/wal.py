"""Append-only write-ahead log for the ingest subsystem.

Every mutation accepted by :class:`repro.service.ingest.Ingestor` is
framed and appended here *before* it is applied to the in-memory
overlay, so a crash loses at most the tail record that was mid-write.
The on-disk format is deliberately trivial — one frame per record:

    [4-byte big-endian body length][4-byte big-endian CRC-32][JSON body]

Records are JSON objects (UTF-8, compact separators, sorted keys) so the
log is greppable with ``xxd`` + ``python -m json.tool`` when debugging a
bad bundle.  :meth:`WriteAheadLog.open` scans the file frame by frame,
verifies each CRC, and **truncates** the file at the first torn or
corrupt frame — a partial append (power loss mid-``write``) silently
recovers to the last complete record instead of poisoning replay.

Durability is a policy choice (the classic group-commit trade-off):

* ``"always"`` — ``fsync`` after every append.  Slowest, loses nothing.
* ``"batch"``  — ``flush`` every append, ``fsync`` at most once per
  ``batch_interval`` seconds (default 50 ms).  Loses at most one
  interval of acknowledged mutations on power loss; nothing on a mere
  process crash (the page cache survives).  The default.
* ``"never"``  — ``flush`` only.  For benchmarks and tests.

``fsync`` wall-time is recorded in the ``wal_fsync`` latency histogram
when a :class:`~repro.service.metrics.ServiceMetrics` is attached, which
is how ``python -m repro.bench serve --mutate`` reports it.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.service.metrics import ServiceMetrics

PathLike = Union[str, Path]

#: Accepted values for the ``fsync=`` policy.
FSYNC_POLICIES = ("always", "batch", "never")

#: Frame header: (body length, CRC-32 of body), both unsigned big-endian.
_HEADER = struct.Struct(">II")

#: Refuse to read frames claiming bodies beyond this (corrupt length field).
_MAX_BODY = 1 << 24


class WriteAheadLog:
    """One append-only log file with CRC-framed JSON records."""

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: str = "batch",
        batch_interval: float = 0.05,
        metrics: "ServiceMetrics" = None,  # type: ignore[assignment]
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync_policy = fsync
        self.batch_interval = batch_interval
        self.metrics = metrics
        self._fh = None  # type: ignore[var-annotated]
        self._dirty = False
        # -inf, not 0.0: time.monotonic() starts near zero on a freshly
        # booted host, so a 0.0 sentinel would silently skip the first
        # batch-policy fsync until one full interval of uptime passed.
        self._last_fsync = float("-inf")
        #: Bytes dropped from a torn tail by the last :meth:`open`.
        self.torn_bytes_dropped = 0
        #: Complete records recovered by the last :meth:`open`.
        self.records_replayed = 0
        #: Records appended since open (excludes replayed ones).
        self.records_appended = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> List[Dict[str, object]]:
        """Scan + repair the log, open it for append, return its records.

        Safe on a missing file (starts empty) and on a torn tail (the
        incomplete frame is truncated away).  A *complete but corrupt*
        frame — CRC mismatch, non-JSON, non-object body — also truncates
        there: everything after a bad frame is unordered garbage.
        """
        if self._fh is not None:
            raise RuntimeError(f"WAL {self.path} is already open")
        records, valid_bytes = self._scan()
        actual = self.path.stat().st_size if self.path.exists() else 0
        if valid_bytes < actual:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            self.torn_bytes_dropped = actual - valid_bytes
        else:
            self.torn_bytes_dropped = 0
        self._fh = open(self.path, "ab")
        self.records_replayed = len(records)
        self.records_appended = 0
        return records

    def close(self) -> None:
        """Flush, fsync (per policy), and close the file handle."""
        if self._fh is None:
            return
        self.sync()
        self._fh.close()
        self._fh = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    # -- appends -----------------------------------------------------------

    def append(self, record: Dict[str, object]) -> int:
        """Frame + append one record; returns the new byte size of the log.

        The write is flushed to the OS before returning; whether it is
        *durable* (fsynced) depends on the policy — see the module doc.
        """
        fh = self._require_open()
        body = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        fh.write(_HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF))
        fh.write(body)
        fh.flush()
        self._dirty = True
        self.records_appended += 1
        if self.fsync_policy == "always":
            self._fsync()
        elif self.fsync_policy == "batch":
            if time.monotonic() - self._last_fsync >= self.batch_interval:
                self._fsync()
        return self.size

    def sync(self) -> None:
        """Force pending appends to disk (no-op under ``"never"``)."""
        if self._dirty and self.fsync_policy != "never":
            self._fsync()

    def reset(self) -> None:
        """Truncate the log to empty (after compaction folded it in).

        The truncate is fsynced regardless of policy: compaction
        correctness depends on the reset being durable before the epoch
        swap acknowledges.
        """
        fh = self._require_open()
        fh.flush()
        fh.truncate(0)
        fh.flush()
        os.fsync(fh.fileno())
        self._dirty = False
        self._last_fsync = time.monotonic()

    @property
    def size(self) -> int:
        """Current byte size of the log file."""
        if self._fh is not None:
            self._fh.flush()
            return os.fstat(self._fh.fileno()).st_size
        return self.path.stat().st_size if self.path.exists() else 0

    # -- internals ---------------------------------------------------------

    def _require_open(self):
        if self._fh is None:
            raise RuntimeError(f"WAL {self.path} is not open")
        return self._fh

    def _fsync(self) -> None:
        fh = self._require_open()
        started = time.perf_counter()
        os.fsync(fh.fileno())
        elapsed = time.perf_counter() - started
        self._last_fsync = time.monotonic()
        self._dirty = False
        if self.metrics is not None:
            self.metrics.observe("wal_fsync", elapsed)

    def _scan(self) -> Tuple[List[Dict[str, object]], int]:
        """Parse frames from the start; stop at the first invalid one.

        Returns ``(records, byte offset of the first invalid frame)`` —
        the offset doubles as the valid prefix length for truncation.
        """
        records: List[Dict[str, object]] = []
        if not self.path.exists():
            return records, 0
        data = self.path.read_bytes()
        n = len(data)
        offset = 0
        while offset + _HEADER.size <= n:
            length, crc = _HEADER.unpack_from(data, offset)
            if length > _MAX_BODY:
                break
            end = offset + _HEADER.size + length
            if end > n:
                break  # torn tail: header landed, body didn't
            body = data[offset + _HEADER.size : end]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                break
            try:
                record = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            if not isinstance(record, dict):
                break
            records.append(record)
            offset = end
        return records, offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.is_open else "closed"
        return (
            f"WriteAheadLog({str(self.path)!r}, {state}, "
            f"fsync={self.fsync_policy!r}, bytes={self.size})"
        )
