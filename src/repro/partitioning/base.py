"""Abstract partitioner interfaces.

Three families, mirroring the paper's taxonomy (Section II):

* :class:`EdgePartitioner` — anything that maps a whole graph to an
  :class:`~repro.partitioning.assignment.EdgePartition` (offline or local).
* :class:`StreamingEdgePartitioner` — assigns each edge as it arrives from a
  stream, never revisiting decisions (Random, DBH, Greedy, HDRF, Grid).
* :class:`VertexPartitioner` — classic vertex partitioning (LDG, FENNEL, our
  METIS-like multilevel); combined with
  :mod:`repro.partitioning.vertex_adapter` they act as edge partitioners the
  way the paper benchmarks them.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Iterable, Optional

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.utils.rng import Seed
from repro.utils.validation import check_positive


def default_capacity(num_edges: int, num_partitions: int, slack: float = 1.0) -> int:
    """The per-partition edge capacity ``C = ceil(slack * m / p)`` (>= 1)."""
    check_positive("num_partitions", num_partitions)
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    return max(1, math.ceil(slack * num_edges / num_partitions))


class EdgePartitioner(abc.ABC):
    """Base class of every edge partitioner.

    Subclasses set :attr:`name` (used by the registry and reports) and
    implement :meth:`partition`.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Partition ``graph``'s edges into ``num_partitions`` parts."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class StreamingEdgePartitioner(EdgePartitioner):
    """Edge partitioner that makes one irrevocable decision per arriving edge."""

    @abc.abstractmethod
    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Assign every edge of ``edges`` in arrival order.

        ``graph`` is an optional side channel for heuristics that are
        conventionally given cheap global statistics (e.g. DBH uses degrees;
        real deployments obtain them from a first pass or a sketch).
        """

    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Stream the graph's edges in storage order."""
        return self.assign_stream(graph.edges(), num_partitions, graph=graph)


class VertexPartitioner(abc.ABC):
    """Base class of vertex partitioners (cut edges, not vertices)."""

    name: str = "abstract-vertex"

    @abc.abstractmethod
    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Return a map ``vertex -> partition id`` covering every vertex."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class SeededPartitioner(EdgePartitioner):
    """Convenience mixin storing a seed for stochastic partitioners."""

    def __init__(self, seed: Seed = None) -> None:
        self.seed = seed
