"""NE — Neighbourhood Expansion edge partitioner (Zhang et al., SIGKDD 2017).

The paper's reference [13] and the closest prior local/edge method to TLP.
NE grows one partition at a time from a random seed, maintaining a *core*
set ``C`` and a *boundary* set ``S`` (``C ⊆ S``).  Each step promotes the
boundary vertex with the fewest residual neighbours outside ``S`` (the
expansion that leaks least), allocating all its residual edges; its
neighbours join the boundary.

This is the standard simplified formulation of NE's heuristic (we do not
implement the out-of-core machinery of the original system; the in-memory
allocation rule is the part that determines RF).  Included both as an extra
baseline and as the natural one-stage comparison point for TLP.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set

from repro.graph.graph import Edge, Graph
from repro.graph.residual import ResidualGraph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import EdgePartitioner, default_capacity
from repro.utils.rng import Seed, make_rng


class NEPartitioner(EdgePartitioner):
    """Neighbourhood-expansion local edge partitioning."""

    name = "NE"

    def __init__(self, seed: Seed = None, slack: float = 1.0) -> None:
        self.seed = seed
        self.slack = slack

    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Grow ``num_partitions`` partitions by min-external-degree expansion."""
        rng = make_rng(self.seed)
        residual = ResidualGraph(graph)
        capacity = default_capacity(graph.num_edges, num_partitions, self.slack)
        parts: List[List[Edge]] = []
        for k in range(num_partitions):
            is_last = k == num_partitions - 1
            cap = residual.num_edges if is_last else capacity
            parts.append(self._grow_partition(residual, cap, rng))
        return EdgePartition(parts)

    def _grow_partition(
        self, residual: ResidualGraph, capacity: int, rng
    ) -> List[Edge]:
        edges: List[Edge] = []
        if residual.is_exhausted() or capacity <= 0:
            return edges
        boundary: Set[int] = set()  # S
        core: Set[int] = set()  # C
        # ext[v] = residual neighbours of v outside S, for v in S \ C.
        ext: Dict[int, int] = {}
        heap: List = []

        def add_to_boundary(v: int) -> None:
            if v in boundary:
                return
            boundary.add(v)
            count = 0
            for w in residual.neighbors(v):
                if w in boundary:
                    if w in ext:
                        ext[w] -= 1
                        heapq.heappush(heap, (ext[w], w))
                else:
                    count += 1
            ext[v] = count
            heapq.heappush(heap, (count, v))

        add_to_boundary(residual.sample_seed(rng))
        while len(edges) < capacity:
            v = self._pop_min(heap, ext)
            if v is None:
                if residual.is_exhausted():
                    break
                add_to_boundary(residual.sample_seed(rng))  # disconnected remainder
                continue
            core.add(v)
            del ext[v]
            neighbors = list(residual.neighbors(v))
            for u in neighbors:
                if len(edges) >= capacity:
                    break
                residual.remove_edge(v, u)
                edges.append((v, u) if v < u else (u, v))
                add_to_boundary(u)
        return edges

    @staticmethod
    def _pop_min(heap: List, ext: Dict[int, int]):
        """Pop the boundary vertex with the smallest live external count."""
        while heap:
            count, v = heapq.heappop(heap)
            if ext.get(v) == count:
                return v
        return None
