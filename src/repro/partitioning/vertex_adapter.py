"""Derive an edge partition from a vertex partition.

The paper benchmarks METIS and LDG — both vertex partitioners — on the *edge
partitioning* metric RF.  The standard adaptation (used e.g. by the NE paper,
SIGKDD'17, when comparing against METIS) assigns each edge to the partition
of one of its endpoints; a vertex is then replicated once for every foreign
partition that owns one of its edges.

Strategies:

* ``"balanced"`` (default) — send the edge to whichever endpoint's partition
  currently holds fewer edges; keeps Definition 3's balance in the common
  case without changing RF much.
* ``"first"`` — always the canonical first (smaller-id) endpoint's partition;
  fully deterministic.
* ``"random"`` — a uniformly random endpoint's partition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import EdgePartitioner, VertexPartitioner
from repro.utils.rng import Seed, make_rng

_STRATEGIES = ("balanced", "first", "random")


def edges_from_vertex_assignment(
    edges: Iterable[Edge],
    vertex_assignment: Dict[int, int],
    num_partitions: int,
    strategy: str = "balanced",
    seed: Seed = None,
) -> EdgePartition:
    """Place each edge into the partition of one of its endpoints."""
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    rng = make_rng(seed)
    parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
    for u, v in edges:
        ku = vertex_assignment[u]
        kv = vertex_assignment[v]
        if ku == kv:
            k = ku
        elif strategy == "first":
            k = ku if u < v else kv
        elif strategy == "random":
            k = ku if rng.random() < 0.5 else kv
        else:  # balanced
            k = ku if len(parts[ku]) <= len(parts[kv]) else kv
        parts[k].append((u, v))
    return EdgePartition(parts)


class VertexToEdgePartitioner(EdgePartitioner):
    """Wrap a :class:`VertexPartitioner` as an edge partitioner.

    >>> from repro.partitioning.ldg import LDGPartitioner
    >>> edge_ldg = VertexToEdgePartitioner(LDGPartitioner(seed=0))
    """

    def __init__(
        self,
        vertex_partitioner: VertexPartitioner,
        strategy: str = "balanced",
        seed: Seed = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        self.vertex_partitioner = vertex_partitioner
        self.strategy = strategy
        self.seed = seed
        self.name = vertex_partitioner.name

    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Vertex-partition the graph, then adapt to edges."""
        assignment = self.vertex_partitioner.partition_vertices(graph, num_partitions)
        return edges_from_vertex_assignment(
            graph.edges(), assignment, num_partitions, self.strategy, self.seed
        )
