"""PowerGraph's Greedy ("Oblivious") streaming edge partitioner.

Gonzalez et al., OSDI 2012.  For each arriving edge ``(u, v)`` with replica
sets ``A(u)``, ``A(v)`` (partitions already hosting the vertex):

1. if ``A(u) ∩ A(v)`` is non-empty, use its least-loaded member;
2. else if both are non-empty, use the least-loaded member of ``A(u) ∪ A(v)``;
3. else if exactly one is non-empty, use its least-loaded member;
4. else use the globally least-loaded partition.

Related-work baseline for the extended comparison benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.utils.rng import Seed, make_rng


class GreedyPartitioner(StreamingEdgePartitioner):
    """PowerGraph Oblivious greedy placement (ties broken at random)."""

    name = "Greedy"

    def __init__(self, seed: Seed = None) -> None:
        self.seed = seed

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Apply the four greedy rules to every edge in arrival order."""
        rng = make_rng(self.seed)
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        sizes = [0] * num_partitions
        replicas: Dict[int, Set[int]] = {}

        def least_loaded(candidates: Iterable[int]) -> int:
            best: List[int] = []
            best_size = None
            for k in candidates:
                if best_size is None or sizes[k] < best_size:
                    best, best_size = [k], sizes[k]
                elif sizes[k] == best_size:
                    best.append(k)
            return best[0] if len(best) == 1 else rng.choice(best)

        for u, v in edges:
            au = replicas.get(u, set())
            av = replicas.get(v, set())
            both = au & av
            if both:
                k = least_loaded(both)
            elif au and av:
                k = least_loaded(au | av)
            elif au or av:
                k = least_loaded(au or av)
            else:
                k = least_loaded(range(num_partitions))
            parts[k].append((u, v))
            sizes[k] += 1
            replicas.setdefault(u, set()).add(k)
            replicas.setdefault(v, set()).add(k)
        return EdgePartition(parts)
