"""Quality metrics for *vertex* partitioning (paper §II-A, Fig. 1a).

The paper motivates edge partitioning by contrasting it with vertex
partitioning: cutting edges creates *ghosts* (a replica per cross-partition
edge endpoint) and, on power-law graphs, high-degree vertices force both
load imbalance and heavy communication.  These metrics quantify that side of
Fig. 1 so the §II comparison can be measured rather than asserted:

* :func:`cross_partition_edges` — Definition 1's cut size;
* :func:`ghost_count` — replicas induced by the cut (one per (vertex,
  foreign partition) adjacency, the PowerGraph ghost model);
* :func:`vertex_balance`, :func:`edge_load_balance` — the two balance
  notions (vertex partitioning balances vertices, but the *edge* load per
  machine is what the computation pays for).
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.graph import Graph


def _validate(graph: Graph, assignment: Dict[int, int]) -> None:
    missing = [v for v in graph.vertices() if v not in assignment]
    if missing:
        raise ValueError(f"assignment misses {len(missing)} vertices (e.g. {missing[:3]})")


def cross_partition_edges(graph: Graph, assignment: Dict[int, int]) -> int:
    """Number of edges whose endpoints live in different partitions."""
    _validate(graph, assignment)
    return sum(1 for u, v in graph.edges() if assignment[u] != assignment[v])


def ghost_count(graph: Graph, assignment: Dict[int, int]) -> int:
    """Total ghosts: for each vertex, one replica per foreign partition that
    holds a neighbour (the local copies Fig. 1(a) shades)."""
    _validate(graph, assignment)
    ghosts = 0
    for v in graph.vertices():
        home = assignment[v]
        foreign = {assignment[u] for u in graph.neighbors(v)} - {home}
        ghosts += len(foreign)
    return ghosts


def vertex_replication_factor(graph: Graph, assignment: Dict[int, int]) -> float:
    """``(|V| + ghosts) / |V|`` — the vertex-partitioning analogue of RF."""
    n = graph.num_vertices
    if n == 0:
        return 1.0
    return 1.0 + ghost_count(graph, assignment) / n


def vertex_balance(graph: Graph, assignment: Dict[int, int], num_partitions: int) -> float:
    """Max vertices per partition over the ideal ``n / p``."""
    _validate(graph, assignment)
    sizes = [0] * num_partitions
    for v in graph.vertices():
        sizes[assignment[v]] += 1
    n = graph.num_vertices
    if n == 0:
        return 1.0
    return max(sizes) * num_partitions / n


def edge_load_balance(
    graph: Graph, assignment: Dict[int, int], num_partitions: int
) -> float:
    """Max *edge work* per partition over the ideal.

    Under vertex partitioning, machine ``k`` processes every edge incident
    to its vertices (cross edges are processed on both sides via ghosts), so
    its load is the sum of its vertices' degrees.  On power-law graphs a hub
    inflates one machine's load even when vertex counts are balanced — the
    imbalance the paper's §II-A argument turns on.
    """
    _validate(graph, assignment)
    loads: List[int] = [0] * num_partitions
    for v in graph.vertices():
        loads[assignment[v]] += graph.degree(v)
    total = sum(loads)
    if total == 0:
        return 1.0
    return max(loads) * num_partitions / total
