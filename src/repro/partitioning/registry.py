"""Name-based partitioner registry.

The experiment harness and CLI refer to partitioners by the names used in
the paper's figures ("TLP", "METIS", "LDG", "DBH", "Random", ...).  The
registry maps those names to seeded factory functions so every experiment
can construct fresh, independently seeded instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.partitioning.base import EdgePartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.fennel import FennelPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.kl import KLPartitioner
from repro.partitioning.ldg import LDGPartitioner
from repro.partitioning.metis import MetisLikePartitioner
from repro.partitioning.ne import NEPartitioner
from repro.partitioning.random_edge import RandomPartitioner
from repro.partitioning.vertex_adapter import VertexToEdgePartitioner

PartitionerFactory = Callable[[int], EdgePartitioner]

#: The five algorithms of the paper's Fig. 8.
PAPER_ALGORITHMS = ("TLP", "METIS", "LDG", "DBH", "Random")

#: Additional related-work baselines and TLP variants implemented here.
EXTENDED_ALGORITHMS = (
    "HDRF",
    "Greedy",
    "Grid",
    "FENNEL",
    "NE",
    "TLP-S1",
    "TLP-S2",
    "TLP-W",
    "KL",
    "Spectral",
    "2PS",
)

# Core imports are deferred into the factories: repro.core itself depends on
# repro.partitioning (assignment/base), so importing it here at module import
# time would be circular.


def _make_tlp(seed):
    from repro.core.tlp import TLPPartitioner

    return TLPPartitioner(seed=seed)


def _make_tlp_s1(seed):
    from repro.core.tlp import StageOneOnlyPartitioner

    return StageOneOnlyPartitioner(seed=seed)


def _make_tlp_s2(seed):
    from repro.core.tlp import StageTwoOnlyPartitioner

    return StageTwoOnlyPartitioner(seed=seed)


def _make_tlp_windowed(seed, window_size=50_000):
    from repro.core.windowed import WindowedLocalPartitioner

    return WindowedLocalPartitioner(window_size=window_size, seed=seed)


def _make_2ps(seed):
    # Deferred import: oocore pulls in numpy-backed sketch/bundle modules
    # that only matter when the two-pass heuristic is actually used.
    from repro.partitioning.oocore import TwoPhaseStreamingPartitioner

    return TwoPhaseStreamingPartitioner(seed=seed)


def _make_spectral(seed):
    # Deferred import: scipy is only needed when Spectral is actually used.
    from repro.partitioning.spectral import SpectralPartitioner

    return VertexToEdgePartitioner(SpectralPartitioner(seed=seed), seed=seed)


_REGISTRY: Dict[str, PartitionerFactory] = {
    "TLP": _make_tlp,
    "TLP-S1": _make_tlp_s1,
    "TLP-S2": _make_tlp_s2,
    "TLP-W": _make_tlp_windowed,
    "METIS": lambda seed: VertexToEdgePartitioner(
        MetisLikePartitioner(seed=seed), seed=seed
    ),
    "LDG": lambda seed: VertexToEdgePartitioner(LDGPartitioner(seed=seed), seed=seed),
    "FENNEL": lambda seed: VertexToEdgePartitioner(
        FennelPartitioner(seed=seed), seed=seed
    ),
    "DBH": lambda seed: DBHPartitioner(salt=seed),
    "Random": lambda seed: RandomPartitioner(seed=seed),
    "Greedy": lambda seed: GreedyPartitioner(seed=seed),
    "HDRF": lambda seed: HDRFPartitioner(seed=seed),
    "Grid": lambda seed: GridPartitioner(salt=seed),
    "NE": lambda seed: NEPartitioner(seed=seed),
    "KL": lambda seed: VertexToEdgePartitioner(KLPartitioner(seed=seed), seed=seed),
    "Spectral": _make_spectral,
    "2PS": _make_2ps,
}


def available_partitioners() -> List[str]:
    """All registered names."""
    return sorted(_REGISTRY)


def make_partitioner(name: str, seed: int = 0) -> EdgePartitioner:
    """Instantiate the partitioner registered under ``name``.

    Parameterised variants are addressed with a suffix:
    ``"TLP_R:<ratio>"`` (e.g. ``"TLP_R:0.3"``) and
    ``"TLP-W:<window_size>"`` (e.g. ``"TLP-W:4096"``).
    """
    if name.startswith("TLP_R:"):
        from repro.core.tlp_r import TLPRPartitioner

        ratio = float(name.split(":", 1)[1])
        return TLPRPartitioner(ratio, seed=seed)
    if name.startswith("TLP-W:"):
        window = int(name.split(":", 1)[1])
        return _make_tlp_windowed(seed, window_size=window)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; available: {available_partitioners()}"
        ) from None
    return factory(seed)


def register_partitioner(name: str, factory: PartitionerFactory) -> None:
    """Add or replace a registry entry (for user extensions and tests)."""
    _REGISTRY[name] = factory
