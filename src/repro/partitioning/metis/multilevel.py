"""Multilevel recursive-bisection driver — our from-scratch METIS.

Implements the three-phase scheme of Karypis & Kumar (SIAM J. Sci. Comput.
1998), the paper's strongest baseline:

1. **Coarsen** by repeated heavy-edge matching until the graph is small.
2. **Initially partition** the coarsest graph by greedy graph growing.
3. **Uncoarsen**, projecting the bisection up and running FM refinement at
   every level.

k-way partitions come from recursive bisection with proportional target
weights, so any ``p`` (not just powers of two) is supported.  The class
implements :class:`~repro.partitioning.base.VertexPartitioner`; wrap it in
:class:`~repro.partitioning.vertex_adapter.VertexToEdgePartitioner` to use it
as the paper does (edge partitioning evaluated by RF).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.partitioning.base import VertexPartitioner
from repro.partitioning.metis.coarsen import coarsen
from repro.partitioning.metis.initial import grow_bisection
from repro.partitioning.metis.matching import heavy_edge_matching
from repro.partitioning.metis.refine import fm_refine
from repro.partitioning.metis.wgraph import WeightedGraph
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive


def multilevel_bisect(
    wgraph: WeightedGraph,
    fraction: float,
    rng: random.Random,
    coarsen_to: int = 120,
    tolerance: float = 0.05,
) -> List[int]:
    """Bisect ``wgraph`` so side 0 holds ~``fraction`` of the vertex weight."""
    target0 = round(fraction * wgraph.total_vertex_weight)

    # Phase 1: coarsen.  Keep every level for the uncoarsening walk.
    levels: List[Tuple[WeightedGraph, List[int]]] = []  # (fine graph, projection)
    current = wgraph
    max_cluster = max(1, (2 * wgraph.total_vertex_weight) // max(coarsen_to, 1))
    while current.num_vertices > coarsen_to:
        match = heavy_edge_matching(current, rng, max_vertex_weight=max_cluster)
        coarse, projection = coarsen(current, match)
        if coarse.num_vertices >= int(0.95 * current.num_vertices):
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append((current, projection))
        current = coarse

    # Phase 2: initial partition of the coarsest graph.
    side = grow_bisection(current, target0, rng)
    side, _ = fm_refine(current, side, target0, rng, tolerance)

    # Phase 3: uncoarsen and refine at each level.
    for fine, projection in reversed(levels):
        side = [side[projection[v]] for v in range(fine.num_vertices)]
        side, _ = fm_refine(fine, side, target0, rng, tolerance)
    return side


def _induced(
    wgraph: WeightedGraph, keep: List[int]
) -> Tuple[WeightedGraph, List[int]]:
    """Induced weighted subgraph on ``keep``; returns (subgraph, original ids)."""
    index_of = {v: i for i, v in enumerate(keep)}
    vertex_weight = [wgraph.vertex_weight[v] for v in keep]
    adj: List[Dict[int, int]] = []
    for v in keep:
        row = {
            index_of[u]: w for u, w in wgraph.adj[v].items() if u in index_of
        }
        adj.append(row)
    return WeightedGraph(vertex_weight, adj), keep


class MetisLikePartitioner(VertexPartitioner):
    """From-scratch multilevel k-way vertex partitioner.

    Parameters mirror METIS's knobs: ``coarsen_to`` (coarsest-graph size per
    bisection), ``tolerance`` (allowed load imbalance per bisection) and a
    ``seed`` for the randomised matching/growing.
    """

    name = "METIS"

    def __init__(
        self, seed: Seed = None, coarsen_to: int = 120, tolerance: float = 0.05
    ) -> None:
        check_positive("coarsen_to", coarsen_to)
        if not 0 <= tolerance < 0.5:
            raise ValueError(f"tolerance must be in [0, 0.5), got {tolerance}")
        self.seed = seed
        self.coarsen_to = coarsen_to
        self.tolerance = tolerance

    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Recursive multilevel bisection into ``num_partitions`` parts."""
        check_positive("num_partitions", num_partitions)
        rng = make_rng(self.seed)
        if graph.num_vertices == 0:
            return {}
        wgraph, ids = WeightedGraph.from_graph(graph)
        assignment: Dict[int, int] = {}
        self._recurse(
            wgraph, list(range(wgraph.num_vertices)), ids, num_partitions, 0, rng, assignment
        )
        return assignment

    def _recurse(
        self,
        wgraph: WeightedGraph,
        local_ids: List[int],
        original_ids: List[int],
        p: int,
        offset: int,
        rng: random.Random,
        assignment: Dict[int, int],
    ) -> None:
        if p == 1 or wgraph.num_vertices == 0:
            for v in range(wgraph.num_vertices):
                assignment[original_ids[local_ids[v]]] = offset
            return
        p_left = (p + 1) // 2
        fraction = p_left / p
        side = multilevel_bisect(
            wgraph, fraction, rng, self.coarsen_to, self.tolerance
        )
        left = [v for v in range(wgraph.num_vertices) if side[v] == 0]
        right = [v for v in range(wgraph.num_vertices) if side[v] == 1]
        left_graph, _ = _induced(wgraph, left)
        right_graph, _ = _induced(wgraph, right)
        self._recurse(
            left_graph,
            [local_ids[v] for v in left],
            original_ids,
            p_left,
            offset,
            rng,
            assignment,
        )
        self._recurse(
            right_graph,
            [local_ids[v] for v in right],
            original_ids,
            p - p_left,
            offset + p_left,
            rng,
            assignment,
        )
