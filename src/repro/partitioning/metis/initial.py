"""Initial bisection of the coarsest graph: greedy graph growing (GGGP).

Grow one side from a random seed by repeatedly absorbing the boundary vertex
with the best cut gain until the side reaches its target weight; repeat from
several seeds and keep the smallest cut.  This is the GGGP scheme of
Karypis & Kumar 1998 (their recommended initial partitioner).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.partitioning.metis.wgraph import WeightedGraph


def grow_bisection(
    wgraph: WeightedGraph,
    target_weight: int,
    rng: random.Random,
    num_trials: int = 4,
) -> List[int]:
    """Return a side array (0 = grown region, 1 = rest) with region weight
    as close to ``target_weight`` as greedy growth allows."""
    best_side: Optional[List[int]] = None
    best_cut = None
    n = wgraph.num_vertices
    if n == 0:
        return []
    for _ in range(max(1, num_trials)):
        side = _grow_once(wgraph, target_weight, rng)
        cut = wgraph.edge_cut(side)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    return best_side


def _grow_once(
    wgraph: WeightedGraph, target_weight: int, rng: random.Random
) -> List[int]:
    n = wgraph.num_vertices
    side = [1] * n
    seed = rng.randrange(n)
    in_region = [False] * n
    # gain[v] = (edge weight into region) - (edge weight out of region);
    # we greedily absorb the highest-gain frontier vertex.
    gain = {seed: 0}
    weight = 0
    while gain and weight < target_weight:
        v = max(gain, key=lambda x: (gain[x], -x))
        del gain[v]
        in_region[v] = True
        side[v] = 0
        weight += wgraph.vertex_weight[v]
        for u, w in wgraph.adj[v].items():
            if in_region[u]:
                continue
            if u in gain:
                gain[u] += 2 * w  # edge flipped from "out" to "in"
            else:
                gain[u] = 2 * w - sum(wgraph.adj[u].values())
    if weight < target_weight:
        # Disconnected graph: top up from vertices outside the region.
        outside = [v for v in range(n) if not in_region[v]]
        rng.shuffle(outside)
        for v in outside:
            if weight >= target_weight:
                break
            side[v] = 0
            weight += wgraph.vertex_weight[v]
    return side


def bisection_weights(side: List[int], wgraph: WeightedGraph) -> Tuple[int, int]:
    """Total vertex weight on each side of a bisection."""
    w0 = sum(wgraph.vertex_weight[v] for v in range(len(side)) if side[v] == 0)
    return w0, wgraph.total_vertex_weight - w0
