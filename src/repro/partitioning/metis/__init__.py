"""From-scratch multilevel (METIS-like) graph partitioner.

Heavy-edge matching coarsening, greedy-graph-growing initial bisection,
FM refinement at every uncoarsening level, recursive k-way driver.
"""

from repro.partitioning.metis.coarsen import coarsen
from repro.partitioning.metis.initial import bisection_weights, grow_bisection
from repro.partitioning.metis.matching import heavy_edge_matching
from repro.partitioning.metis.multilevel import MetisLikePartitioner, multilevel_bisect
from repro.partitioning.metis.refine import fm_refine
from repro.partitioning.metis.wgraph import WeightedGraph

__all__ = [
    "coarsen",
    "bisection_weights",
    "grow_bisection",
    "heavy_edge_matching",
    "MetisLikePartitioner",
    "multilevel_bisect",
    "fm_refine",
    "WeightedGraph",
]
