"""Heavy-edge matching (HEM) — the coarsening driver of Karypis & Kumar 1998.

Visit vertices in random order; match each unmatched vertex with the
unmatched neighbour joined by the heaviest edge (random visit order keeps the
matching from degenerating on regular graphs).  Unmatched leftovers match
with themselves.
"""

from __future__ import annotations

import random
from typing import List

from repro.partitioning.metis.wgraph import WeightedGraph


def heavy_edge_matching(
    wgraph: WeightedGraph, rng: random.Random, max_vertex_weight: int = 0
) -> List[int]:
    """Return ``match`` with ``match[v]`` = v's partner (possibly ``v`` itself).

    ``max_vertex_weight`` > 0 forbids merges whose combined weight would
    exceed it (keeps coarse vertices from swallowing whole regions, which
    would wreck balance later).
    """
    n = wgraph.num_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        if match[v] != -1:
            continue
        best_u = v
        best_weight = -1
        wv = wgraph.vertex_weight[v]
        for u, w in wgraph.adj[v].items():
            if match[u] != -1:
                continue
            if max_vertex_weight and wv + wgraph.vertex_weight[u] > max_vertex_weight:
                continue
            if w > best_weight:
                best_weight = w
                best_u = u
        match[v] = best_u
        match[best_u] = v
    return match
