"""Weighted graph representation for the multilevel (METIS-like) partitioner.

Coarsening collapses matched vertex pairs, so both vertices and edges carry
integer weights.  Vertices are contiguous ``0..n-1``; the driver keeps the
mapping back to the original graph's labels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph


class WeightedGraph:
    """Undirected graph with vertex and edge weights, ids ``0..n-1``."""

    __slots__ = ("vertex_weight", "adj")

    def __init__(self, vertex_weight: List[int], adj: List[Dict[int, int]]) -> None:
        if len(vertex_weight) != len(adj):
            raise ValueError("vertex_weight and adj must have the same length")
        self.vertex_weight = vertex_weight
        self.adj = adj

    @classmethod
    def from_graph(cls, graph: Graph) -> Tuple["WeightedGraph", List[int]]:
        """Unit-weight conversion.  Returns ``(wgraph, ids)`` with
        ``ids[i]`` the original label of internal vertex ``i``."""
        ids = graph.vertex_list()
        index_of = {v: i for i, v in enumerate(ids)}
        adj: List[Dict[int, int]] = [
            {index_of[u]: 1 for u in graph.neighbors(v)} for v in ids
        ]
        return cls([1] * len(ids), adj), ids

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.adj)

    @property
    def total_vertex_weight(self) -> int:
        """Sum of vertex weights (invariant across coarsening levels)."""
        return sum(self.vertex_weight)

    def num_edges(self) -> int:
        """Number of (weighted) edges."""
        return sum(len(nbrs) for nbrs in self.adj) // 2

    def degree(self, v: int) -> int:
        """Number of distinct neighbours of ``v``."""
        return len(self.adj[v])

    def edge_cut(self, side: List[int]) -> int:
        """Total weight of edges whose endpoints get different labels in ``side``."""
        cut = 0
        for v, nbrs in enumerate(self.adj):
            sv = side[v]
            for u, w in nbrs.items():
                if v < u and side[u] != sv:
                    cut += w
        return cut
