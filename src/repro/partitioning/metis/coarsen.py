"""Graph coarsening: collapse a matching into a smaller weighted graph."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.partitioning.metis.wgraph import WeightedGraph


def coarsen(wgraph: WeightedGraph, match: List[int]) -> Tuple[WeightedGraph, List[int]]:
    """Collapse matched pairs.

    Returns ``(coarse, projection)`` where ``projection[v]`` is the coarse
    vertex containing fine vertex ``v``.  Edge weights between coarse
    vertices are the sums of the collapsed fine edges; internal (matched)
    edges disappear.
    """
    n = wgraph.num_vertices
    projection = [-1] * n
    next_id = 0
    for v in range(n):
        if projection[v] != -1:
            continue
        u = match[v]
        projection[v] = next_id
        projection[u] = next_id  # u == v for self-matched vertices
        next_id += 1

    vertex_weight = [0] * next_id
    adj: List[Dict[int, int]] = [dict() for _ in range(next_id)]
    for v in range(n):
        cv = projection[v]
        vertex_weight[cv] += wgraph.vertex_weight[v]
    for v in range(n):
        cv = projection[v]
        row = adj[cv]
        for u, w in wgraph.adj[v].items():
            cu = projection[u]
            if cu == cv:
                continue
            row[cu] = row.get(cu, 0) + w
    # Symmetry: each fine edge (v, u) adds w to adj[cv][cu] from v's row and
    # w to adj[cu][cv] from u's row, so the coarse adjacency stays symmetric.
    return WeightedGraph(vertex_weight, adj), projection
