"""Fiduccia–Mattheyses boundary refinement for bisections.

Classic FM with lazy heaps: per pass, repeatedly move the highest-gain
unlocked vertex whose move keeps the bisection within the balance window,
then roll back to the best prefix of the move sequence.  Passes repeat until
a pass yields no improvement.  This is the refinement METIS applies at every
uncoarsening level.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Tuple

from repro.partitioning.metis.wgraph import WeightedGraph


def _gains(wgraph: WeightedGraph, side: List[int]) -> List[int]:
    """gain[v] = cut reduction if v switches side (external - internal weight)."""
    gains = [0] * wgraph.num_vertices
    for v, nbrs in enumerate(wgraph.adj):
        sv = side[v]
        g = 0
        for u, w in nbrs.items():
            g += w if side[u] != sv else -w
        gains[v] = g
    return gains


def fm_refine(
    wgraph: WeightedGraph,
    side: List[int],
    target0: int,
    rng: random.Random,
    tolerance: float = 0.05,
    max_passes: int = 4,
) -> Tuple[List[int], int]:
    """Refine ``side`` in place-ish; returns ``(side, cut)``.

    ``target0`` is the desired total vertex weight of side 0; the balance
    window is ``target0 ± max(tolerance * total, heaviest vertex)`` so a
    single-vertex move can never be infeasible purely because of granularity.
    """
    n = wgraph.num_vertices
    if n == 0:
        return side, 0
    total = wgraph.total_vertex_weight
    slack = max(int(tolerance * total), max(wgraph.vertex_weight))
    lo, hi = target0 - slack, target0 + slack
    if total >= 2:
        # Neither side may be emptied: a bisection must stay a bisection
        # (on tiny graphs the vertex-weight slack would otherwise allow
        # collapsing everything onto one side to zero the cut).
        lo = max(lo, 1)
        hi = min(hi, total - 1)
    side = list(side)
    cut = wgraph.edge_cut(side)

    for _ in range(max_passes):
        gains = _gains(wgraph, side)
        locked = [False] * n
        heap: List[Tuple[int, int, int]] = []  # (-gain, tiebreak, v)
        for v in range(n):
            heapq.heappush(heap, (-gains[v], rng.randrange(1 << 30), v))
        w0 = sum(wgraph.vertex_weight[v] for v in range(n) if side[v] == 0)

        moves: List[int] = []
        best_prefix = 0
        best_cut = cut
        current_cut = cut
        while heap:
            neg_gain, _, v = heapq.heappop(heap)
            if locked[v] or -neg_gain != gains[v]:
                continue
            wv = wgraph.vertex_weight[v]
            new_w0 = w0 - wv if side[v] == 0 else w0 + wv
            if not lo <= new_w0 <= hi:
                locked[v] = True  # treat as unmovable this pass
                continue
            # Execute the move.
            locked[v] = True
            current_cut -= gains[v]
            w0 = new_w0
            side[v] = 1 - side[v]
            moves.append(v)
            sv = side[v]
            for u, w in wgraph.adj[v].items():
                if locked[u]:
                    continue
                gains[u] += 2 * w if side[u] != sv else -2 * w
                heapq.heappush(heap, (-gains[u], rng.randrange(1 << 30), u))
            if current_cut < best_cut:
                best_cut = current_cut
                best_prefix = len(moves)
        # Roll back everything after the best prefix.
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
        if best_cut >= cut:
            break
        cut = best_cut
    return side, cut
