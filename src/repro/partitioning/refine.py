"""Local-search RF refinement: gain-indexed boundary moves and pair swaps.

A post-pass that lowers the replication factor of *any*
:class:`~repro.partitioning.assignment.EdgePartition` — whatever
partitioner produced it, offline or online — by local search over the
boundary edges, in the spirit of "Enhancing Balanced Graph Edge
Partition with Effective Local Search" (see PAPERS.md):

* **Moves.**  Relocating edge ``(u, v)`` from partition ``A`` to ``B``
  frees a replica for every endpoint whose *last* ``A``-edge it was, and
  costs one for every endpoint absent from ``B``.  Positive-gain moves
  strictly shrink ``sum_k |V(P_k)|`` (the RF numerator), so greedy
  application terminates.  Candidates are drawn from a **gain-indexed
  max-heap** with lazy invalidation: stale entries are re-scored on pop,
  and every applied move re-seeds the heap with the incident edges whose
  gains it disturbed — the classic FM work-list, adapted to edge
  partitions.
* **Swaps.**  A positive-gain move whose target sits at the capacity
  bound is not lost: the swap phase pairs it with a counter-move from
  the target back to the source (sizes restored exactly), accepted only
  when the *combined* replica delta is negative.  Swaps unlock the
  plateau that a perfectly balanced input otherwise presents to
  move-only refinement — no slack required.
* **Determinism.**  There is no randomness anywhere: ties break on
  (gain, target size, target id, edge) everywhere, so refining the same
  partition twice — in the same process or from a WAL replay — produces
  the identical result.  The property suite pins this.
* **Stopping.**  A pass is one heap drain plus one swap phase.  The
  refiner stops at a fixpoint (no improving move or swap), when a pass
  improves RF by less than ``epsilon``, at ``max_passes``, or when a
  ``max_moves`` budget runs out — whichever comes first, recorded in
  :attr:`RefineStats.converged`.

The capacity bound mirrors :func:`repro.partitioning.refinement.
refine_replication`: by default ``ceil(slack * m / p)``, floored at the
input's largest partition so refinement never *worsens* an unbalanced
input.  Balance can only improve or stay.

:func:`refine_bundle` applies the engine to an on-disk
``save_partition`` bundle and rewrites it (atomically, manifest last)
with the before/after RF recorded in the manifest metadata.  A bundle
whose write-ahead log still holds unfolded mutations is **refused** with
:class:`PendingMutationsError` — mirroring the serving layer's guard
that refuses a plain reload while mutations pend: rewriting the base
under an outstanding delta would orphan acknowledged writes.  Compact
first; ``Ingestor(refine_on_compact=True)`` does both in one step.
"""

from __future__ import annotations

import heapq
import math
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.graph.graph import Edge
from repro.partitioning.assignment import EdgePartition

PathLike = Union[str, Path]

#: The serving layer's WAL file name inside a bundle directory.  Kept in
#: lockstep with :data:`repro.service.ingest.WAL_NAME` (pinned by a test);
#: duplicated here so the partitioning layer does not import the service
#: layer.
INGEST_WAL_NAME = "ingest.wal"


class RefineError(RuntimeError):
    """Base class for refinement failures."""


class PendingMutationsError(RefineError):
    """The bundle's WAL holds unfolded mutations; compact before refining.

    Mirrors the serving layer's reload guard: rewriting the base bundle
    while a delta overlay / WAL still references it would silently drop
    acknowledged mutations and poison the next WAL replay.
    """


@dataclass
class RefineStats:
    """What one refinement run did, and why it stopped."""

    passes: int
    moves: int
    swaps: int
    replicas_before: int
    replicas_after: int
    covered_vertices: int
    capacity: int
    seconds: float
    #: ``"fixpoint"`` (no improving move/swap), ``"epsilon"`` (pass gain
    #: under the threshold), ``"max_passes"``, or ``"move_budget"``.
    converged: str

    @property
    def replicas_saved(self) -> int:
        """Total replicas removed."""
        return self.replicas_before - self.replicas_after

    @property
    def rf_before(self) -> float:
        """Input RF (``1.0`` for an empty partition)."""
        if self.covered_vertices == 0:
            return 1.0
        return self.replicas_before / self.covered_vertices

    @property
    def rf_after(self) -> float:
        """Output RF (``1.0`` for an empty partition)."""
        if self.covered_vertices == 0:
            return 1.0
        return self.replicas_after / self.covered_vertices

    @property
    def rf_delta(self) -> float:
        """``rf_before - rf_after`` (>= 0: refinement never worsens RF)."""
        return self.rf_before - self.rf_after

    @property
    def applied(self) -> int:
        """Moves plus swaps."""
        return self.moves + self.swaps

    @property
    def moves_per_s(self) -> float:
        """Applied moves+swaps per wall-clock second."""
        if self.seconds <= 0.0:
            return 0.0
        return self.applied / self.seconds

    def manifest_entry(self) -> Dict[str, object]:
        """The summary :func:`refine_bundle` records in the manifest."""
        return {
            "rf_before": round(self.rf_before, 6),
            "rf_after": round(self.rf_after, 6),
            "rf_delta": round(self.rf_delta, 6),
            "moves": self.moves,
            "swaps": self.swaps,
            "passes": self.passes,
            "capacity": self.capacity,
            "seconds": round(self.seconds, 6),
            "converged": self.converged,
        }


class LocalSearchRefiner:
    """Configured move/swap local search over edge partitions.

    One instance is reusable across partitions (``refine`` builds fresh
    state per call).  Parameters:

    ``capacity``
        Per-partition edge bound; ``0`` derives ``ceil(slack * m / p)``
        floored at the input's largest partition.
    ``slack``
        Headroom multiplier for the derived capacity (>= 1.0).  With
        swaps enabled the default ``1.0`` already escapes the balanced
        plateau; slack simply lets single moves do more of the work.
    ``epsilon``
        Stop when a full pass improves RF by less than this (``0.0`` =
        run to the exact fixpoint).
    ``max_passes`` / ``max_moves``
        Hard bounds on work; ``max_moves=0`` means unbounded.
    ``swaps``
        Enable the capacity-neutral pair-swap phase.
    ``swap_limit``
        Max swap *attempts* per pass (``0`` = try every blocked
        candidate); each attempt scans one partition's edge set, so the
        cap bounds the quadratic corner.
    """

    def __init__(
        self,
        capacity: int = 0,
        slack: float = 1.0,
        epsilon: float = 0.0,
        max_passes: int = 8,
        max_moves: int = 0,
        swaps: bool = True,
        swap_limit: int = 0,
    ) -> None:
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        if epsilon < 0.0:
            raise ValueError(f"epsilon must be >= 0.0, got {epsilon}")
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.slack = slack
        self.epsilon = epsilon
        self.max_passes = max_passes
        self.max_moves = max_moves
        self.swaps = swaps
        self.swap_limit = swap_limit

    # -- public API --------------------------------------------------------

    def refine(
        self, partition: EdgePartition
    ) -> Tuple[EdgePartition, RefineStats]:
        """Refine ``partition``; returns ``(refined, stats)``.

        The input is never mutated.  The output covers exactly the same
        edge set (conservation), respects the capacity bound, and has
        ``total_replicas(refined) <= total_replicas(partition)``.
        """
        started = time.perf_counter()
        state = _State(partition, self.capacity, self.slack)
        converged = "max_passes"
        passes = 0
        for _ in range(self.max_passes):
            passes += 1
            saved_before = state.replicas
            budget = self._remaining_budget(state)
            if budget == 0:
                converged = "move_budget"
                break
            state.drain_moves(budget)
            if self.swaps:
                budget = self._remaining_budget(state)
                if budget == 0:
                    converged = "move_budget"
                    break
                state.drain_swaps(budget, self.swap_limit)
            pass_saved = saved_before - state.replicas
            if pass_saved == 0:
                converged = "fixpoint"
                break
            if self.epsilon > 0.0 and state.covered:
                if pass_saved / state.covered < self.epsilon:
                    converged = "epsilon"
                    break
        if self._remaining_budget(state) == 0 and self.max_moves:
            converged = "move_budget"
        refined = state.to_partition()
        stats = RefineStats(
            passes=passes,
            moves=state.moves,
            swaps=state.swaps,
            replicas_before=state.replicas_before,
            replicas_after=state.replicas,
            covered_vertices=state.covered,
            capacity=state.capacity,
            seconds=time.perf_counter() - started,
            converged=converged,
        )
        return refined, stats

    def _remaining_budget(self, state: "_State") -> int:
        """Moves+swaps still allowed (-1 = unbounded)."""
        if not self.max_moves:
            return -1
        return max(0, self.max_moves - state.moves - state.swaps)


def refine_partition(
    partition: EdgePartition, **options: object
) -> Tuple[EdgePartition, RefineStats]:
    """One-shot convenience wrapper around :class:`LocalSearchRefiner`."""
    return LocalSearchRefiner(**options).refine(partition)  # type: ignore[arg-type]


# -- the mutable search state -------------------------------------------------


class _State:
    """Edge ownership, per-vertex incidence counts, and the gain heap."""

    def __init__(
        self, partition: EdgePartition, capacity: int, slack: float
    ) -> None:
        p = partition.num_partitions
        m = partition.num_edges
        self.p = p
        if capacity <= 0:
            capacity = max(1, math.ceil(slack * m / p)) if p else 1
            capacity = max(capacity, max(partition.partition_sizes() or [0]))
        self.capacity = capacity
        self.edge_part: Dict[Edge, int] = dict(partition.edge_to_partition())
        #: vertex -> {partition: incident edge count}; exact at all times.
        self.incident: Dict[int, Dict[int, int]] = {}
        #: vertex -> every edge touching it (static across moves).
        self.vertex_edges: Dict[int, List[Edge]] = {}
        self.sizes: List[int] = [0] * p
        self.part_edges: List[Set[Edge]] = [set() for _ in range(p)]
        for edge, k in self.edge_part.items():
            self.sizes[k] += 1
            self.part_edges[k].add(edge)
            for w in edge:
                row = self.incident.setdefault(w, {})
                row[k] = row.get(k, 0) + 1
                self.vertex_edges.setdefault(w, []).append(edge)
        self.replicas = sum(len(row) for row in self.incident.values())
        self.replicas_before = self.replicas
        self.covered = len(self.incident)
        self.moves = 0
        self.swaps = 0
        #: Positive-gain moves blocked by capacity, found during drains;
        #: the swap phase works through them.  edge -> recorded gain.
        self.blocked: Dict[Edge, int] = {}

    # -- gain arithmetic ---------------------------------------------------

    def move_gain(self, edge: Edge, target: int) -> int:
        """Replicas freed minus replicas added by ``edge`` -> ``target``."""
        u, v = edge
        source = self.edge_part[edge]
        row_u, row_v = self.incident[u], self.incident[v]
        remove = (row_u[source] == 1) + (row_v[source] == 1)
        add = (target not in row_u) + (target not in row_v)
        return remove - add

    def best_move(
        self, edge: Edge, respect_capacity: bool
    ) -> Tuple[int, int]:
        """``(gain, target)`` of the best relocation of ``edge``.

        Only partitions already hosting an endpoint can yield a positive
        gain (an alien target costs two adds against at most two
        removes), so the candidate set is the endpoints' replica sets.
        Ties break to the smaller, then lower-id target — fully
        deterministic.  Returns ``(0, -1)`` when nothing improves.
        """
        u, v = edge
        source = self.edge_part[edge]
        row_u, row_v = self.incident[u], self.incident[v]
        remove = (row_u[source] == 1) + (row_v[source] == 1)
        if remove == 0:
            return 0, -1
        best_gain, best_target = 0, -1
        for target in sorted(set(row_u) | set(row_v)):
            if target == source:
                continue
            if respect_capacity and self.sizes[target] >= self.capacity:
                continue
            gain = remove - (target not in row_u) - (target not in row_v)
            if gain <= 0:
                continue
            if (
                best_target < 0
                or gain > best_gain
                or (
                    gain == best_gain
                    and self.sizes[target] < self.sizes[best_target]
                )
            ):
                best_gain, best_target = gain, target
        return best_gain, best_target

    # -- mutation ----------------------------------------------------------

    def apply_move(self, edge: Edge, target: int) -> None:
        """Relocate ``edge`` to ``target``, keeping every aggregate exact."""
        source = self.edge_part[edge]
        self.edge_part[edge] = target
        self.sizes[source] -= 1
        self.sizes[target] += 1
        self.part_edges[source].discard(edge)
        self.part_edges[target].add(edge)
        for w in edge:
            row = self.incident[w]
            row[source] -= 1
            if row[source] == 0:
                del row[source]
                self.replicas -= 1
            if target in row:
                row[target] += 1
            else:
                row[target] = 1
                self.replicas += 1

    # -- the move drain ----------------------------------------------------

    def drain_moves(self, budget: int) -> None:
        """Apply positive-gain moves until none remain (or budget ends).

        Lazy heap: every pop is re-scored against the live state; a
        stale entry re-enqueues its fresh score instead of acting on an
        outdated one.  Each applied move re-seeds the entries of the
        edges incident to the moved edge's endpoints — the only gains a
        move can disturb (plus capacity effects, which the lazy
        re-score already covers).
        """
        heap: List[Tuple[int, Edge, int]] = []
        for edge in self.edge_part:
            gain, target = self.best_move(edge, respect_capacity=True)
            if target >= 0:
                heap.append((-gain, edge, target))
            self._note_blocked(edge)
        heapq.heapify(heap)
        while heap:
            if budget == 0:
                return
            neg_gain, edge, target = heapq.heappop(heap)
            gain, best_target = self.best_move(edge, respect_capacity=True)
            if best_target < 0:
                self._note_blocked(edge)
                continue
            if (-gain, best_target) != (neg_gain, target):
                heapq.heappush(heap, (-gain, edge, best_target))
                continue
            self.apply_move(edge, best_target)
            self.moves += 1
            if budget > 0:
                budget -= 1
            self.blocked.pop(edge, None)
            for w in edge:
                for other in self.vertex_edges[w]:
                    if other == edge:
                        continue
                    other_gain, other_target = self.best_move(
                        other, respect_capacity=True
                    )
                    if other_target >= 0:
                        heapq.heappush(
                            heap, (-other_gain, other, other_target)
                        )
                    self._note_blocked(other)

    def _note_blocked(self, edge: Edge) -> None:
        """Record a positive-gain move currently shut out by capacity."""
        gain, target = self.best_move(edge, respect_capacity=False)
        if target >= 0 and self.sizes[target] >= self.capacity:
            self.blocked[edge] = gain

    # -- the swap phase ----------------------------------------------------

    def drain_swaps(self, budget: int, swap_limit: int) -> None:
        """Pair capacity-blocked moves with counter-moves (sizes neutral).

        For a blocked candidate ``e: A -> B`` the phase tentatively
        applies the move (``B`` runs one over capacity), then looks for
        the best counter-move of some ``f in B`` back to ``A`` — scored
        *after* ``e`` landed, so the combined delta is exact — and keeps
        the pair only when it strictly lowers the replica total;
        otherwise ``e`` is rolled back.  Partition sizes end exactly
        where they started, so the capacity bound holds throughout the
        refined output.
        """
        candidates = sorted(
            self.blocked.items(), key=lambda item: (-item[1], item[0])
        )
        self.blocked.clear()
        attempts = 0
        for edge, _recorded in candidates:
            if budget == 0:
                return
            if swap_limit and attempts >= swap_limit:
                return
            gain, target = self.best_move(edge, respect_capacity=False)
            if target < 0 or self.sizes[target] < self.capacity:
                continue  # no longer blocked; the next move drain takes it
            attempts += 1
            source = self.edge_part[edge]
            before = self.replicas
            self.apply_move(edge, target)
            counter = self._best_counter_move(target, source, exclude=edge)
            if counter is None:
                self.apply_move(edge, source)  # roll back
                continue
            counter_edge, _counter_gain = counter
            self.apply_move(counter_edge, source)
            if self.replicas < before:
                self.swaps += 1
                if budget > 0:
                    budget -= 1
            else:  # combined delta not an improvement: roll both back
                self.apply_move(counter_edge, target)
                self.apply_move(edge, source)

    def _best_counter_move(
        self, source: int, target: int, exclude: Edge
    ) -> Optional[Tuple[Edge, int]]:
        """Best ``f: source -> target`` scored on the live state.

        Scans ``source``'s current edge set; the max is selected by
        ``(gain, edge)`` so the result is independent of set iteration
        order.  Returns ``None`` when the partition has nothing to give
        back (only ``exclude`` itself).
        """
        best: Optional[Tuple[int, Edge]] = None
        for edge in self.part_edges[source]:
            if edge == exclude:
                continue
            gain = self.move_gain(edge, target)
            if best is None or (-gain, edge) < (-best[0], best[1]):
                best = (gain, edge)
        if best is None:
            return None
        return best[1], best[0]

    # -- output ------------------------------------------------------------

    def to_partition(self) -> EdgePartition:
        """Materialise the refined assignment (deterministic edge order)."""
        parts: List[List[Edge]] = [[] for _ in range(self.p)]
        for edge in sorted(self.edge_part):
            parts[self.edge_part[edge]].append(edge)
        return EdgePartition(parts)


# -- bundle-level refinement --------------------------------------------------


def refine_bundle(
    directory: PathLike,
    output: Optional[PathLike] = None,
    *,
    verify: bool = True,
    workers: Optional[int] = None,
    capacity: int = 0,
    slack: float = 1.0,
    epsilon: float = 0.0,
    max_passes: int = 8,
    max_moves: int = 0,
    swaps: bool = True,
    swap_limit: int = 0,
) -> Tuple[Path, RefineStats]:
    """Refine the bundle at ``directory``; returns ``(manifest, stats)``.

    Loads the bundle (manifest-verified unless ``verify=False``), runs
    the local search, and rewrites it — in place by default, or to
    ``output`` — via :func:`~repro.partitioning.serialization.
    save_partition` (atomic files, manifest last, CSR sidecar rebuilt),
    with the run summary under ``metadata["refined"]`` and the
    metadata's ``replication_factor`` updated when present.

    Raises :class:`PendingMutationsError` when the bundle carries a
    non-empty write-ahead log: those mutations are not in the edge
    files yet, and a refined rewrite would orphan them.  Run compaction
    first (``python -m repro compact`` against the live server, or
    ``Ingestor(refine_on_compact=True)`` to fold and refine in one
    pass).
    """
    from repro.partitioning.serialization import load_partition, save_partition

    directory = Path(directory)
    wal = directory / INGEST_WAL_NAME
    if wal.exists() and wal.stat().st_size > 0:
        raise PendingMutationsError(
            f"bundle {directory} has {wal.stat().st_size} bytes of unfolded "
            "WAL mutations; compact before refining"
        )
    partition = load_partition(directory, verify=verify)
    refiner = LocalSearchRefiner(
        capacity=capacity,
        slack=slack,
        epsilon=epsilon,
        max_passes=max_passes,
        max_moves=max_moves,
        swaps=swaps,
        swap_limit=swap_limit,
    )
    refined, stats = refiner.refine(partition)
    from repro.partitioning.serialization import partition_metadata

    metadata = partition_metadata(directory)
    entry = stats.manifest_entry()
    # Size profile of the refined layout: downstream placers (oocore
    # pass 2, the ingest path) consume it as HDRF balance priors.
    entry["partition_sizes"] = refined.partition_sizes()
    metadata["refined"] = entry
    if "replication_factor" in metadata:
        metadata["replication_factor"] = round(stats.rf_after, 6)
    destination = directory if output is None else Path(output)
    manifest = _save_refined_atomically(
        refined, destination, metadata=metadata, workers=workers
    )
    return manifest, stats


def _save_refined_atomically(
    partition: EdgePartition,
    destination: Path,
    *,
    metadata: Dict[str, object],
    workers: Optional[int],
) -> Path:
    """``save_partition`` with all-or-nothing publication.

    Writing straight into ``destination`` would expose readers (and the
    source bundle, when ``destination`` is the source itself or a path
    inside it) to a torn state if the save dies midway: some edge files
    replaced, manifest still carrying the old checksums.  Instead the
    whole bundle is built in a fresh staging directory next to
    ``destination`` (same filesystem, so publication is pure rename),
    then published:

    * fresh destination — one atomic ``os.rename`` of the directory;
    * existing destination (in-place refine, or overwriting an older
      bundle) — per-file ``os.replace`` with the manifest **last**, plus
      removal of stale other-compression counterparts, mirroring
      ``save_partition``'s own crash discipline.

    A failure before publication leaves ``destination`` byte-untouched.
    """
    from repro.partitioning.serialization import MANIFEST_NAME, save_partition

    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    stage = Path(
        tempfile.mkdtemp(prefix=destination.name + ".refine-", dir=destination.parent)
    )
    try:
        save_partition(partition, stage, metadata=metadata, workers=workers)
        if not destination.exists():
            os.rename(stage, destination)
            return destination / MANIFEST_NAME
        names = sorted(os.listdir(stage))
        names.remove(MANIFEST_NAME)
        for name in names:
            os.replace(stage / name, destination / name)
            # A counterpart with the other compression setting is stale
            # the moment its replacement lands.
            if name.endswith(".edges"):
                (destination / (name + ".gz")).unlink(missing_ok=True)
            elif name.endswith(".edges.gz"):
                (destination / name[: -len(".gz")]).unlink(missing_ok=True)
        os.replace(stage / MANIFEST_NAME, destination / MANIFEST_NAME)
        return destination / MANIFEST_NAME
    finally:
        shutil.rmtree(stage, ignore_errors=True)
