"""LDG — Linear Deterministic Greedy streaming *vertex* partitioner.

Stanton & Kliot, SIGKDD 2012.  Vertices arrive in a stream with their
adjacency lists; each is placed in the partition maximising

    |N(v) ∩ P_k| * (1 - |P_k| / C_v)

where ``C_v = ceil(n / p)`` is the vertex capacity.  Ties go to the less
loaded partition.  This is one of the paper's baselines; it is adapted to
edge partitioning via :mod:`repro.partitioning.vertex_adapter`.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.graph.graph import Graph
from repro.partitioning.base import VertexPartitioner
from repro.utils.rng import Seed, make_rng

STREAM_ORDERS = ("natural", "random", "bfs", "dfs")


def vertex_stream(graph: Graph, order: str, seed: Seed = None) -> List[int]:
    """All vertices in the requested stream order.

    ``natural`` = storage order, ``random`` = a uniform shuffle, ``bfs`` /
    ``dfs`` = traversal order restarted across components (the orders studied
    in the streaming-partitioning literature).
    """
    if order not in STREAM_ORDERS:
        raise ValueError(f"unknown order {order!r}; expected one of {STREAM_ORDERS}")
    vertices = graph.vertex_list()
    if order == "natural":
        return vertices
    rng = make_rng(seed)
    if order == "random":
        rng.shuffle(vertices)
        return vertices
    from repro.graph.traversal import bfs_order, dfs_order

    walk = bfs_order if order == "bfs" else dfs_order
    seen: set = set()
    result: List[int] = []
    starts = list(vertices)
    rng.shuffle(starts)
    for start in starts:
        if start in seen:
            continue
        for v in walk(graph, start):
            if v not in seen:
                seen.add(v)
                result.append(v)
    return result


class LDGPartitioner(VertexPartitioner):
    """Linear Deterministic Greedy vertex placement."""

    name = "LDG"

    def __init__(
        self, order: str = "random", seed: Seed = None, slack: float = 1.0
    ) -> None:
        if order not in STREAM_ORDERS:
            raise ValueError(f"unknown order {order!r}; expected one of {STREAM_ORDERS}")
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        self.order = order
        self.seed = seed
        self.slack = slack

    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Stream vertices and place each greedily."""
        rng = make_rng(self.seed)
        stream = vertex_stream(graph, self.order, seed=rng)
        capacity = max(1, math.ceil(self.slack * graph.num_vertices / num_partitions))
        assignment: Dict[int, int] = {}
        sizes = [0] * num_partitions
        for v in stream:
            neighbor_counts = [0] * num_partitions
            for u in graph.neighbors(v):
                k = assignment.get(u)
                if k is not None:
                    neighbor_counts[k] += 1
            best_k = 0
            best_score = float("-inf")
            for k in range(num_partitions):
                if sizes[k] >= capacity:
                    continue
                score = neighbor_counts[k] * (1.0 - sizes[k] / capacity)
                if score > best_score or (
                    score == best_score and sizes[k] < sizes[best_k]
                ):
                    best_score = score
                    best_k = k
            if best_score == float("-inf"):
                # Every partition full (possible with slack=1 and remainders).
                best_k = min(range(num_partitions), key=lambda k: sizes[k])
            assignment[v] = best_k
            sizes[best_k] += 1
        return assignment
