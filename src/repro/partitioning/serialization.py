"""On-disk serialisation of edge partitions.

A partitioning is the *input* to a distributed deployment, so it must
round-trip through storage: :func:`save_partition` writes one edge-list file
per partition plus a JSON manifest (counts, checksums, metadata);
:func:`load_partition` reads the directory back and verifies the manifest.

Two durability properties matter because the serving layer
(:mod:`repro.service`) opens these directories:

* **Atomicity** — every file (edge lists and manifest) is written to a
  temp file and ``os.replace``-d into place, and the manifest is written
  *last*, so a killed writer never leaves a directory that parses as a
  valid partition but holds torn edge files.
* **Compression** — ``compress=True`` writes ``part_*.edges.gz`` instead
  of plain text; loading is transparent (the manifest records the file
  name, and the ``.gz`` suffix selects the gzip text reader).  Checksums
  are computed over the *edges*, so they are identical either way.

Bundles also carry a binary **CSR sidecar** (``adjacency.csr``, see
:mod:`repro.partitioning.csr_bundle`): the per-partition adjacency and
replication tables pre-frozen into flat arrays, which the serving layer
memory-maps instead of re-deriving dict-of-sets from the edge lists.  The
edge-list files stay the canonical, human-readable source of truth — the
sidecar is a derived acceleration structure, recorded (with its own
checksum) in the manifest and ignored by older readers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.parallel import parallel_map
from repro.graph.graph import Edge
from repro.graph.io import open_text
from repro.partitioning import csr_bundle
from repro.partitioning.assignment import EdgePartition

MANIFEST_NAME = "partition.json"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _edge_file(directory: Path, k: int, compress: bool) -> Path:
    suffix = ".edges.gz" if compress else ".edges"
    return directory / f"part_{k:04d}{suffix}"


class EdgeChecksum:
    """Incremental form of the manifest edge checksum.

    The streaming bundle writer (:mod:`repro.partitioning.oocore.bundle`)
    folds edges in one at a time as they come off the external merge;
    :func:`_checksum` is the eager equivalent over a list.  Both hash the
    same ``"u,v;"`` byte stream, so manifests agree bit-for-bit.
    """

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def add(self, u: int, v: int) -> None:
        self._digest.update(f"{u},{v};".encode())

    def hexdigest(self) -> str:
        return self._digest.hexdigest()[:16]


def _checksum(edges: List[Edge]) -> str:
    digest = EdgeChecksum()
    for u, v in edges:
        digest.add(u, v)
    return digest.hexdigest()


def _write_atomic(path: Path, write) -> None:
    """Run ``write(tmp_path)`` against a temp file, then rename into place."""
    # The temp name keeps the real suffix (".gz" selects the gzip codec
    # in open_text), with a ".tmp-" marker in front of it.
    fd, tmp_name = tempfile.mkstemp(
        suffix=".tmp" + path.suffix, prefix=path.name + ".", dir=path.parent
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_partition(
    partition: EdgePartition,
    directory: PathLike,
    metadata: Optional[Dict[str, object]] = None,
    compress: bool = False,
    sidecar: bool = True,
    workers: Optional[int] = None,
) -> Path:
    """Write ``partition`` under ``directory``; returns the manifest path.

    Edges are written in canonical sorted order so checksums (and files)
    are deterministic for equal partitions.  Every file lands atomically,
    the manifest last — a reader (or :class:`repro.service.store.
    PartitionStore`) that finds a manifest finds complete edge files.

    ``sidecar=True`` (default) additionally freezes the partition into
    the binary CSR sidecar the serving layer memory-maps
    (:mod:`repro.partitioning.csr_bundle`); pass ``sidecar=False`` to
    write a minimal, text-only bundle.

    ``workers`` fans the per-partition work (sort, edge file, checksum,
    CSR block) over a thread pool — one partition per worker, ``None``
    for one per core, ``1`` for the sequential loop.  The bundle is
    byte-identical either way: every partition's file and manifest entry
    depend only on that partition's edges, and the manifest is assembled
    in ascending ``k`` from the positionally-merged results.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "num_partitions": partition.num_partitions,
        "num_edges": partition.num_edges,
        "partitions": [],
        "metadata": metadata or {},
    }

    def save_one(k: int) -> Dict[str, object]:
        edges = sorted(partition.edges_of(k))
        path = _edge_file(directory, k, compress)

        def write_edges(tmp: Path) -> None:
            with open_text(tmp, "w") as fh:
                for u, v in edges:
                    fh.write(f"{u}\t{v}\n")

        _write_atomic(path, write_edges)
        # Drop a stale counterpart from a previous save with the other
        # compression setting, so the directory stays unambiguous.
        other = _edge_file(directory, k, not compress)
        if other.exists():
            other.unlink()
        return {
            "index": k,
            "file": path.name,
            "edges": len(edges),
            "checksum": _checksum(edges),
        }

    manifest["partitions"] = parallel_map(
        save_one, range(partition.num_partitions), workers
    )
    sidecar_path = directory / csr_bundle.SIDECAR_NAME
    if sidecar:
        csr = csr_bundle.build_partition_csr(partition, workers=workers)
        _write_atomic(sidecar_path, lambda tmp: csr_bundle.write_sidecar(csr, tmp))
        manifest["csr_sidecar"] = {
            "file": csr_bundle.SIDECAR_NAME,
            "version": csr_bundle.SIDECAR_VERSION,
            "bytes": sidecar_path.stat().st_size,
            "checksum": csr_bundle.sidecar_checksum(sidecar_path),
        }
    elif sidecar_path.exists():
        # A stale sidecar from a previous save would not match the new
        # edge files; drop it so the bundle stays unambiguous.
        sidecar_path.unlink()
    manifest_path = directory / MANIFEST_NAME
    payload = json.dumps(manifest, indent=2)
    _write_atomic(manifest_path, lambda tmp: tmp.write_text(payload, encoding="utf-8"))
    return manifest_path


def load_partition(directory: PathLike, verify: bool = True) -> EdgePartition:
    """Read a partition directory written by :func:`save_partition`.

    Gzip and plain edge files are both accepted (per-file, from the
    manifest).  ``verify=True`` (default) checks edge counts and
    checksums, raising ``ValueError`` on any corruption.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported partition format {manifest.get('format_version')!r}"
        )
    parts: List[List[Edge]] = []
    for entry in manifest["partitions"]:
        path = directory / entry["file"]
        edges: List[Edge] = []
        with open_text(path, "r") as fh:
            for line in fh:
                u_str, v_str = line.split()
                edges.append((int(u_str), int(v_str)))
        if verify:
            if len(edges) != entry["edges"]:
                raise ValueError(
                    f"{path.name}: expected {entry['edges']} edges, found {len(edges)}"
                )
            if _checksum(edges) != entry["checksum"]:
                raise ValueError(f"{path.name}: checksum mismatch (corrupt file?)")
        parts.append(edges)
    return EdgePartition(parts)


def has_sidecar(directory: PathLike) -> bool:
    """Whether the bundle at ``directory`` carries a readable CSR sidecar."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return False
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    entry = manifest.get("csr_sidecar")
    return (
        isinstance(entry, dict)
        and (directory / str(entry.get("file", ""))).exists()
    )


def load_sidecar(
    directory: PathLike, verify: bool = True, mmap: bool = True
) -> "csr_bundle.PartitionCSR":
    """Load the CSR sidecar of the bundle at ``directory``.

    ``verify=True`` checks the manifest's recorded byte size and SHA-256
    against the file before mapping it — a whole-file hash, but of one
    binary file, which is still far cheaper than parsing the edge-list
    text.  Raises ``FileNotFoundError`` if the bundle has no sidecar and
    ``ValueError`` on any mismatch.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    entry = manifest.get("csr_sidecar")
    if not isinstance(entry, dict):
        raise FileNotFoundError(f"bundle {directory} has no CSR sidecar")
    path = directory / str(entry["file"])
    if not path.exists():
        raise FileNotFoundError(f"manifest names missing sidecar {path}")
    if verify:
        size = path.stat().st_size
        if size != entry.get("bytes"):
            raise ValueError(
                f"{path.name}: expected {entry.get('bytes')} bytes, found {size}"
            )
        checksum = csr_bundle.sidecar_checksum(path)
        if checksum != entry.get("checksum"):
            raise ValueError(f"{path.name}: checksum mismatch (corrupt sidecar?)")
    csr = csr_bundle.read_sidecar(path, mmap=mmap)
    if csr.num_partitions != manifest.get("num_partitions"):
        raise ValueError(
            f"{path.name}: sidecar has {csr.num_partitions} partitions, "
            f"manifest says {manifest.get('num_partitions')}"
        )
    if csr.num_edges != manifest.get("num_edges"):
        raise ValueError(
            f"{path.name}: sidecar has {csr.num_edges} edges, "
            f"manifest says {manifest.get('num_edges')}"
        )
    return csr


def partition_metadata(directory: PathLike) -> Dict[str, object]:
    """The user metadata stored in a partition directory's manifest."""
    manifest = json.loads(
        (Path(directory) / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    return dict(manifest.get("metadata", {}))
