"""FENNEL streaming vertex partitioner (Tsourakakis et al., WSDM 2014).

Places each streamed vertex in the partition maximising

    |N(v) ∩ P_k| - alpha * gamma * |P_k|^(gamma - 1)

with the paper's interpolation parameters ``gamma = 1.5`` and
``alpha = sqrt(p) * m / n^1.5``, under a capacity ``nu * n / p``.
A related-work baseline (the paper cites FENNEL as the other classic
streaming heuristic alongside LDG).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.graph.graph import Graph
from repro.partitioning.base import VertexPartitioner
from repro.partitioning.ldg import STREAM_ORDERS, vertex_stream
from repro.utils.rng import Seed, make_rng


class FennelPartitioner(VertexPartitioner):
    """FENNEL greedy placement with degree-based tie handling."""

    name = "FENNEL"

    def __init__(
        self,
        order: str = "random",
        seed: Seed = None,
        gamma: float = 1.5,
        nu: float = 1.1,
    ) -> None:
        if order not in STREAM_ORDERS:
            raise ValueError(f"unknown order {order!r}; expected one of {STREAM_ORDERS}")
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if nu < 1.0:
            raise ValueError(f"nu must be >= 1, got {nu}")
        self.order = order
        self.seed = seed
        self.gamma = gamma
        self.nu = nu

    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Stream vertices and place each by the FENNEL objective."""
        rng = make_rng(self.seed)
        n = max(1, graph.num_vertices)
        m = graph.num_edges
        alpha = math.sqrt(num_partitions) * m / (n ** 1.5) if m else 0.0
        capacity = max(1, math.ceil(self.nu * n / num_partitions))
        stream = vertex_stream(graph, self.order, seed=rng)
        assignment: Dict[int, int] = {}
        sizes: List[int] = [0] * num_partitions
        for v in stream:
            neighbor_counts = [0] * num_partitions
            for u in graph.neighbors(v):
                k = assignment.get(u)
                if k is not None:
                    neighbor_counts[k] += 1
            best_k = -1
            best_score = float("-inf")
            for k in range(num_partitions):
                if sizes[k] >= capacity:
                    continue
                penalty = alpha * self.gamma * (sizes[k] ** (self.gamma - 1.0))
                score = neighbor_counts[k] - penalty
                if score > best_score:
                    best_score = score
                    best_k = k
            if best_k < 0:
                best_k = min(range(num_partitions), key=lambda k: sizes[k])
            assignment[v] = best_k
            sizes[best_k] += 1
        return assignment
