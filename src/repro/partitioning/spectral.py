"""Spectral recursive-bisection partitioner (extended offline baseline).

Classic spectral graph partitioning: bisect by thresholding the Fiedler
vector (the eigenvector of the graph Laplacian's second-smallest eigenvalue)
at its weighted median, then recurse.  Disconnected graphs are handled by
splitting along whole components first (the Fiedler vector is only defined
per component).  This rounds out the offline family next to KL and the
multilevel partitioner; scipy provides the sparse eigensolver.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import connected_components
from repro.partitioning.base import VertexPartitioner
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive


def fiedler_vector(graph: Graph, vertices: List[int], rng) -> np.ndarray:
    """Fiedler vector of the induced (connected) subgraph on ``vertices``.

    Falls back to dense ``numpy.linalg.eigh`` for tiny subgraphs, where the
    Lanczos iteration is unreliable.
    """
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    if n <= 2:
        return np.arange(n, dtype=float)  # any split works
    rows: List[int] = []
    cols: List[int] = []
    for v in vertices:
        for u in graph.neighbors(v):
            j = index.get(u)
            if j is not None:
                rows.append(index[v])
                cols.append(j)
    data = np.ones(len(rows))
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    adjacency = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = sp.diags(degrees) - adjacency
    if n < 64:
        dense = laplacian.toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        return eigenvectors[:, 1]
    v0 = np.array([rng.random() for _ in range(n)])
    try:
        _, eigenvectors = spla.eigsh(
            laplacian, k=2, sigma=-1e-3, which="LM", v0=v0, maxiter=5000
        )
        return eigenvectors[:, 1]
    except Exception:  # Lanczos failure: fall back to dense for robustness
        dense = laplacian.toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        return eigenvectors[:, 1]


class SpectralPartitioner(VertexPartitioner):
    """Recursive Fiedler-vector bisection."""

    name = "Spectral"

    def __init__(self, seed: Seed = None) -> None:
        self.seed = seed

    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Split into ``num_partitions`` parts of near-equal vertex counts."""
        check_positive("num_partitions", num_partitions)
        rng = make_rng(self.seed)
        assignment: Dict[int, int] = {}
        if graph.num_vertices == 0:
            return assignment
        self._recurse(graph, graph.vertex_list(), num_partitions, 0, rng, assignment)
        return assignment

    def _recurse(
        self,
        graph: Graph,
        vertices: List[int],
        p: int,
        offset: int,
        rng,
        assignment: Dict[int, int],
    ) -> None:
        if p == 1 or len(vertices) <= 1:
            for v in vertices:
                assignment[v] = offset
            return
        p_left = (p + 1) // 2
        target_left = round(len(vertices) * p_left / p)
        left, right = self._split(graph, vertices, target_left, rng)
        self._recurse(graph, left, p_left, offset, rng, assignment)
        self._recurse(graph, right, p - p_left, offset + p_left, rng, assignment)

    def _split(self, graph: Graph, vertices: List[int], target_left: int, rng):
        """Bisect ``vertices`` into (|target_left|, rest)."""
        sub = graph.subgraph(vertices)
        components = connected_components(sub)
        if len(components) > 1:
            # Pack whole components greedily, splitting one spectral-ly
            # only if the packing cannot hit the target.
            left: List[int] = []
            remaining = []
            for comp in components:
                if len(left) + len(comp) <= target_left:
                    left.extend(comp)
                else:
                    remaining.append(comp)
            deficit = target_left - len(left)
            if deficit > 0 and remaining:
                comp = sorted(remaining[0])
                order = self._spectral_order(sub, comp, rng)
                left.extend(order[:deficit])
                rest_of_comp = order[deficit:]
                right = rest_of_comp + [
                    v for c in remaining[1:] for v in c
                ]
            else:
                right = [v for c in remaining for v in c]
            return left, right
        order = self._spectral_order(sub, sorted(vertices), rng)
        return order[:target_left], order[target_left:]

    def _spectral_order(self, graph: Graph, vertices: List[int], rng) -> List[int]:
        fiedler = fiedler_vector(graph, vertices, rng)
        ranked = sorted(zip(fiedler, vertices))
        return [v for _, v in ranked]
