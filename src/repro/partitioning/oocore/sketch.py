"""Bounded-memory degree tracking for the clustering pass.

Pass 1 needs every vertex's degree twice over: online (the label
propagation moves the lower-degree endpoint) and at the end (pass 2
scores HDRF with the final degrees).  A plain dict is exact and fast but
costs ~100 bytes per vertex; when the vertex count would blow the memory
budget the sketch degrades to a count-min estimate (Cormode &
Muthukrishnan) — fixed numpy matrices whose size is chosen from the
budget, independent of ``n``.  Count-min only ever *over*-estimates, so
HDRF's degree ratio stays a sane heuristic signal, and updates use the
conservative variant (only raise the minimum counters) to keep the bias
small on power-law degree streams.

:class:`DegreeSketch` is the facade: it starts exact and converts itself
to count-min the moment the vertex table crosses ``max_exact_vertices``,
replaying the counts it has — callers never branch on the mode, they
just read (possibly estimated) degrees.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

#: Number of count-min rows; 4 gives an error probability of ``e^-4``.
CM_DEPTH = 4

#: Multiplier mixing constants (splitmix64 finalisation) — fixed, so two
#: processes sketching the same stream agree exactly.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _mix(value: int) -> int:
    """splitmix64 finaliser: deterministic 64-bit avalanche."""
    value &= _MASK
    value ^= value >> 30
    value = (value * _MIX_1) & _MASK
    value ^= value >> 27
    value = (value * _MIX_2) & _MASK
    value ^= value >> 31
    return value


class CountMinDegrees:
    """Conservative-update count-min over vertex degree increments."""

    exact = False

    def __init__(self, width: int, depth: int = CM_DEPTH) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"width and depth must be >= 1, got {width}x{depth}")
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)

    def _positions(self, vertex: int) -> Tuple[int, ...]:
        return tuple(
            _mix(vertex ^ _mix(row + 1)) % self.width for row in range(self.depth)
        )

    def add(self, vertex: int, count: int = 1) -> int:
        """Fold ``count`` degree into ``vertex``; returns the new estimate."""
        positions = self._positions(vertex)
        rows = self._table[range(self.depth), positions]
        new = int(rows.min()) + count
        # Conservative update: only counters below the new minimum rise.
        np.maximum(rows, new, out=rows)
        self._table[range(self.depth), positions] = rows
        return new

    def get(self, vertex: int) -> int:
        positions = self._positions(vertex)
        return int(self._table[range(self.depth), positions].min())


class ExactDegrees:
    """Plain dict degrees — exact, used while ``n`` fits the budget."""

    exact = True

    def __init__(self) -> None:
        self._degree: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._degree)

    def add(self, vertex: int, count: int = 1) -> int:
        new = self._degree.get(vertex, 0) + count
        self._degree[vertex] = new
        return new

    def get(self, vertex: int) -> int:
        return self._degree.get(vertex, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._degree.items())


class DegreeSketch:
    """Exact degrees with an automatic count-min fallback.

    ``max_exact_vertices`` caps the exact table; crossing it converts to
    a count-min of ``cm_width`` columns by replaying the accumulated
    counts.  ``kind`` reports which mode ended up serving the stream
    (``"exact"`` or ``"count-min"``) for the bench/manifest record.
    """

    def __init__(self, max_exact_vertices: int, cm_width: int) -> None:
        if max_exact_vertices < 0:
            raise ValueError(
                f"max_exact_vertices must be >= 0, got {max_exact_vertices}"
            )
        self.max_exact_vertices = max_exact_vertices
        self.cm_width = max(1, cm_width)
        self._exact = ExactDegrees()
        self._cm: CountMinDegrees | None = None
        #: Distinct vertices observed (exact while the dict lives, then frozen
        #: at conversion plus new-position guesses are no longer tracked).
        self.seen_vertices = 0

    @property
    def exact(self) -> bool:
        return self._cm is None

    @property
    def kind(self) -> str:
        return "exact" if self.exact else "count-min"

    def add(self, vertex: int) -> int:
        """Count one incident edge at ``vertex``; returns the new degree."""
        if self._cm is not None:
            return self._cm.add(vertex)
        new = self._exact.add(vertex)
        if new == 1:
            self.seen_vertices += 1
            if self.seen_vertices > self.max_exact_vertices:
                self._degrade()
                return self._cm.get(vertex)  # type: ignore[union-attr]
        return new

    def get(self, vertex: int) -> int:
        if self._cm is not None:
            return self._cm.get(vertex)
        return self._exact.get(vertex)

    def _degrade(self) -> None:
        cm = CountMinDegrees(self.cm_width)
        for vertex, count in self._exact.items():
            cm.add(vertex, count)
        self._cm = cm
        self._exact = ExactDegrees()  # release the dict
