"""Per-partition placement spill files and their external sort.

Pass 2 appends each placed edge to its partition's spill file as a
16-byte ``<qq`` record (little-endian int64 pair — the same width as
the CSR sidecar arrays, so a spill chunk loads straight into numpy).
Appends go through bounded per-partition byte buffers; total buffered
memory is capped by the pipeline's budget, never by the edge count.

The bundle writer then needs each partition's edges in canonical sorted
order (that is what makes ``save_partition`` files and checksums
deterministic).  A partition's spill can exceed memory on its own, so
:func:`sorted_edges` external-sorts it: slice the spill into runs of at
most ``run_edges`` records, sort each run with ``np.lexsort`` (16 bytes
per edge plus the sort's index array — compact and fast), write the
sorted runs back to disk, and ``heapq.merge`` them as lazy chunked
iterators.  A spill that fits in one run skips the run files entirely.
"""

from __future__ import annotations

import heapq
import os
from pathlib import Path
from typing import Iterator, List, Tuple

import numpy as np

Edge = Tuple[int, int]

_DTYPE = np.dtype("<i8")
RECORD_BYTES = 2 * _DTYPE.itemsize

#: Default per-partition append buffer (bytes) and sort-run length (edges).
DEFAULT_BUFFER_BYTES = 1 << 18
DEFAULT_RUN_EDGES = 1 << 20

#: Edges decoded per chunk while merging sorted runs.
_MERGE_CHUNK_EDGES = 1 << 14


def spill_path(directory: Path, k: int) -> Path:
    return directory / f"spill_{k:04d}.bin"


class SpillWriter:
    """Append-only per-partition spill files with bounded buffers."""

    def __init__(
        self,
        directory: Path,
        num_partitions: int,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_partitions = num_partitions
        # Flush threshold per partition, so total buffered bytes stay at
        # ~buffer_bytes regardless of the partition count.
        self._flush_bytes = max(RECORD_BYTES, buffer_bytes // num_partitions)
        self._buffers: List[bytearray] = [bytearray() for _ in range(num_partitions)]
        self._paths = [spill_path(self.directory, k) for k in range(num_partitions)]
        for path in self._paths:  # truncate leftovers from a previous run
            path.unlink(missing_ok=True)
        self.counts = [0] * num_partitions

    def append(self, k: int, u: int, v: int) -> None:
        buf = self._buffers[k]
        buf += u.to_bytes(8, "little", signed=True)
        buf += v.to_bytes(8, "little", signed=True)
        self.counts[k] += 1
        if len(buf) >= self._flush_bytes:
            self._flush(k)

    def _flush(self, k: int) -> None:
        if self._buffers[k]:
            with open(self._paths[k], "ab") as fh:
                fh.write(self._buffers[k])
            self._buffers[k] = bytearray()

    def close(self) -> List[Path]:
        """Flush everything; returns the spill paths (one per partition)."""
        for k in range(self.num_partitions):
            self._flush(k)
        return list(self._paths)

    def cleanup(self) -> None:
        for path in self._paths:
            path.unlink(missing_ok=True)


def _read_run(path: Path, start: int, count: int) -> np.ndarray:
    """Load ``count`` records at record-offset ``start`` as an (m, 2) array."""
    with open(path, "rb") as fh:
        fh.seek(start * RECORD_BYTES)
        data = fh.read(count * RECORD_BYTES)
    return np.frombuffer(data, dtype=_DTYPE).reshape(-1, 2)


def _sort_run(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def _iter_records(path: Path, num_records: int) -> Iterator[Edge]:
    """Lazily yield records from a sorted run file in bounded chunks."""
    start = 0
    while start < num_records:
        count = min(_MERGE_CHUNK_EDGES, num_records - start)
        chunk = _read_run(path, start, count)
        for u, v in chunk.tolist():
            yield u, v
        start += count


def sorted_edges(
    path: Path, num_records: int, run_edges: int = DEFAULT_RUN_EDGES
) -> Iterator[Edge]:
    """Stream the spill at ``path`` in ascending ``(u, v)`` order.

    Peak memory is O(``run_edges``) during run sorting and O(number of
    runs × merge chunk) during the merge.  Run files land next to the
    spill and are deleted as the merge drains them.
    """
    if run_edges < 1:
        raise ValueError(f"run_edges must be >= 1, got {run_edges}")
    if num_records == 0:
        return
    if num_records <= run_edges:
        # Single run: sort in memory, no run files.
        edges = _sort_run(_read_run(path, 0, num_records))
        for u, v in edges.tolist():
            yield u, v
        return
    run_paths: List[Tuple[Path, int]] = []
    try:
        start = 0
        while start < num_records:
            count = min(run_edges, num_records - start)
            run = _sort_run(_read_run(path, start, count))
            run_path = path.with_suffix(f".run{len(run_paths):04d}")
            with open(run_path, "wb") as fh:
                fh.write(run.tobytes())
            run_paths.append((run_path, count))
            start += count
        merged = heapq.merge(
            *(_iter_records(rp, count) for rp, count in run_paths)
        )
        for edge in merged:
            yield edge
    finally:
        for run_path, _ in run_paths:
            run_path.unlink(missing_ok=True)


def external_sort_check(edges: Iterator[Edge], path: Path) -> Iterator[Edge]:
    """Pass-through that rejects duplicate consecutive edges.

    Sorted order makes duplicates adjacent, so a repeated input edge
    (which would corrupt the bundle's edge->partition map) is caught
    here at no extra memory cost.
    """
    prev: Tuple[int, int] = (-(1 << 62), -(1 << 62))
    for edge in edges:
        if edge == prev:
            raise ValueError(
                f"duplicate edge {edge} in partition spill {path.name}; "
                "the input stream must not repeat edges"
            )
        prev = edge
        yield edge


def remove_spills(directory: Path, num_partitions: int) -> None:
    for k in range(num_partitions):
        spill_path(directory, k).unlink(missing_ok=True)
    if not os.listdir(directory):
        directory.rmdir()
