"""Pass 2: cluster-aware streaming HDRF/greedy placement.

Re-streams the edge file and places every edge with the shared scoring
core (:mod:`repro.partitioning.scoring`) — the same arithmetic as the
in-memory :class:`~repro.partitioning.hdrf.HDRFPartitioner` and the
online ingest scorer, which is what makes streamed placements provably
comparable (bit-identical under the parity suite's conditions: exact
degrees, no clustering bonus, deterministic ties).

Extra signals on top of plain HDRF, both optional:

* cluster affinity — partitions owning the endpoints' pass-1 clusters
  score ``gamma`` higher, concentrating intra-cluster edges (2PS §4);
* refined-profile priors — ``offsets`` from
  :func:`repro.partitioning.scoring.balance_offsets` steer the balance
  term toward a previous refinement's partition-size shape.

Per-vertex replica sets are packed into integer bitmasks (one ``int``
per covered vertex, bit ``k`` = replica on partition ``k``) so the
placement state stays a few dozen bytes per *vertex* — never per edge —
and the exact replication-factor numerator is a popcount away.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.partitioning.oocore.sketch import DegreeSketch
from repro.partitioning.scoring import greedy_choice, hdrf_ties

#: Default cluster-affinity weight.  Half a replica-hit: strong enough to
#: herd a cluster's edges together, too weak to override a real replica
#: match (worth >= 1.0) or a large balance gap.
DEFAULT_GAMMA = 0.5

#: Accepted ``policy=`` values.
POLICIES = ("hdrf", "greedy")


class _Mask:
    """``in`` view over a replica bitmask, for the scoring core."""

    __slots__ = ("mask",)

    def __init__(self, mask: int) -> None:
        self.mask = mask

    def __contains__(self, k: int) -> bool:
        return bool(self.mask >> k & 1)


class StreamingPlacer:
    """One irrevocable partition decision per arriving edge.

    ``degrees`` is the pass-1 sketch (final full-stream degrees, exact
    or count-min); ``cluster_of``/``cluster_partition`` carry the pass-1
    clustering (both may be empty to disable affinity).
    """

    def __init__(
        self,
        num_partitions: int,
        degrees: DegreeSketch,
        *,
        policy: str = "hdrf",
        lam: float = 1.1,
        epsilon: float = 1.0,
        gamma: float = DEFAULT_GAMMA,
        cluster_of: Optional[Dict[int, int]] = None,
        cluster_partition: Optional[Dict[int, int]] = None,
        offsets: Optional[Sequence[int]] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if offsets is not None and len(offsets) != num_partitions:
            raise ValueError(
                f"offsets has {len(offsets)} entries for {num_partitions} partitions"
            )
        self.num_partitions = num_partitions
        self.degrees = degrees
        self.policy = policy
        self.lam = lam
        self.epsilon = epsilon
        self.gamma = gamma
        self.cluster_of = cluster_of or {}
        self.cluster_partition = cluster_partition or {}
        self.offsets = list(offsets) if offsets is not None else None
        self.sizes: List[int] = [0] * num_partitions
        self._masks: Dict[int, int] = {}
        self._replica_total = 0
        self._candidates = list(range(num_partitions))

    # -- placement ---------------------------------------------------------

    def _affinity(self, u: int, v: int) -> Optional[Set[int]]:
        if not self.cluster_partition:
            return None
        targets = set()
        for vertex in (u, v):
            cluster = self.cluster_of.get(vertex)
            if cluster is not None:
                k = self.cluster_partition.get(cluster)
                if k is not None:
                    targets.add(k)
        return targets or None

    def place(self, u: int, v: int) -> int:
        """Choose (and commit) the partition for edge ``(u, v)``."""
        mask_u = self._masks.get(u, 0)
        mask_v = self._masks.get(v, 0)
        if self.policy == "greedy":
            k = greedy_choice(
                _mask_set(mask_u), _mask_set(mask_v), self.sizes, self._candidates
            )
        else:
            affinity = self._affinity(u, v)
            ties = hdrf_ties(
                max(1, self.degrees.get(u)),
                max(1, self.degrees.get(v)),
                _Mask(mask_u),
                _Mask(mask_v),
                self.sizes,
                lam=self.lam,
                epsilon=self.epsilon,
                offsets=self.offsets,
                affinity=affinity,
                gamma=self.gamma if affinity is not None else 0.0,
            )
            k = ties[0]  # deterministic: lowest id wins ties
        self.sizes[k] += 1
        bit = 1 << k
        if not mask_u & bit:
            self._masks[u] = mask_u | bit
            self._replica_total += 1
        if not mask_v & bit:
            self._masks[v] = mask_v | bit
            self._replica_total += 1
        return k

    # -- exact summary stats ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Covered vertices (endpoints of at least one placed edge)."""
        return len(self._masks)

    @property
    def total_replicas(self) -> int:
        return self._replica_total

    def replication_factor(self) -> float:
        """Exact RF of the placements so far (1.0 for an empty stream)."""
        if not self._masks:
            return 1.0
        return self._replica_total / len(self._masks)


def _mask_set(mask: int) -> Set[int]:
    out = set()
    k = 0
    while mask:
        if mask & 1:
            out.add(k)
        mask >>= 1
        k += 1
    return out
