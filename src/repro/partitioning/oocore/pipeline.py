"""The two-pass out-of-core partitioning pipeline.

:func:`partition_stream` is the subsystem's front door, wired to the
``python -m repro partition-stream`` CLI: stream an edge file twice
(clustering + degree sketch, then cluster-aware placement into spills)
and fold the spills into a standard serving bundle, all under a byte
budget that **does not grow with the edge count**:

===========================  =========================================
stage                        peak memory
===========================  =========================================
pass 1 (cluster + sketch)    O(vertices) dicts, or fixed count-min
pass 2 (placement)           O(vertices) bitmask dicts + spill buffers
bundle (sort + CSR)          O(edges / partitions) per shard + O(vertices)
===========================  =========================================

``memory_budget`` (bytes) sizes the knobs: the exact-degree vertex cap
(past it the sketch degrades to count-min), the spill append buffers,
and the external-sort run length.  The budget is advisory for the
O(vertices) terms — the paper-standard 2PS state — and binding for
every per-edge term; the bench records measured ``rss_max_kib`` against
it, and the acceptance tests hold the whole pipeline under 2x budget on
a graph whose in-memory partitioning is several times larger.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.graph.chunked import DEFAULT_CHUNK_BYTES, ChunkedEdgeStream
from repro.graph.graph import normalize_edge
from repro.partitioning.oocore import spill as spill_mod
from repro.partitioning.oocore.bundle import write_streaming_bundle
from repro.partitioning.oocore.cluster import (
    CLUSTERS_PER_PARTITION,
    StreamingClustering,
    map_clusters,
)
from repro.partitioning.oocore.place import DEFAULT_GAMMA, StreamingPlacer
from repro.partitioning.oocore.sketch import DegreeSketch
from repro.partitioning.scoring import balance_offsets
from repro.partitioning.serialization import partition_metadata

PathLike = Union[str, Path]

#: Scratch directory for spills and temp arrays, inside the output bundle
#: (same filesystem, so every rename stays atomic).
SCRATCH_NAME = ".oocore-scratch"

#: Rough bytes of pass-1/2 per-vertex state (sketch + cluster + bitmask
#: dict entries), used to derive the exact-degree cap from the budget.
_BYTES_PER_VERTEX = 400

#: Rough peak bytes per edge while sorting a run (record + index + copy).
_BYTES_PER_RUN_EDGE = 48


@dataclass
class BudgetPlan:
    """Concrete knob settings derived from a byte budget."""

    memory_budget: Optional[int]
    max_exact_vertices: int
    cm_width: int
    spill_buffer_bytes: int
    run_edges: int

    @classmethod
    def from_budget(cls, memory_budget: Optional[int]) -> "BudgetPlan":
        if memory_budget is None:
            return cls(
                memory_budget=None,
                max_exact_vertices=1 << 62,  # never degrade
                cm_width=1 << 20,
                spill_buffer_bytes=spill_mod.DEFAULT_BUFFER_BYTES,
                run_edges=spill_mod.DEFAULT_RUN_EDGES,
            )
        if memory_budget < 1 << 20:
            raise ValueError(
                f"memory_budget must be >= 1 MiB, got {memory_budget} bytes"
            )
        return cls(
            memory_budget=memory_budget,
            max_exact_vertices=memory_budget // _BYTES_PER_VERTEX,
            # A quarter of the budget for the count-min matrix if needed.
            cm_width=max(1 << 10, memory_budget // 4 // 8 // 4),
            spill_buffer_bytes=int(
                min(1 << 26, max(1 << 16, memory_budget // 8))
            ),
            run_edges=int(
                max(1 << 14, memory_budget // 4 // _BYTES_PER_RUN_EDGE)
            ),
        )


@dataclass
class OocoreResult:
    """What one :func:`partition_stream` run did, for the CLI and bench."""

    num_partitions: int
    num_edges: int
    num_vertices: int
    replication_factor: float
    partition_sizes: List[int]
    sketch_kind: str
    num_clusters: int
    skipped_self_loops: int
    pass1_seconds: float
    pass2_seconds: float
    bundle_seconds: float
    manifest_path: Path
    plan: BudgetPlan = field(repr=False)

    @property
    def total_seconds(self) -> float:
        return self.pass1_seconds + self.pass2_seconds + self.bundle_seconds

    @property
    def edges_per_s(self) -> float:
        return self.num_edges / self.total_seconds if self.total_seconds else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-ready record (bench section / CLI output)."""
        return {
            "num_partitions": self.num_partitions,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "replication_factor": round(self.replication_factor, 6),
            "partition_sizes": list(self.partition_sizes),
            "sketch_kind": self.sketch_kind,
            "num_clusters": self.num_clusters,
            "skipped_self_loops": self.skipped_self_loops,
            "pass1_seconds": round(self.pass1_seconds, 6),
            "pass2_seconds": round(self.pass2_seconds, 6),
            "bundle_seconds": round(self.bundle_seconds, 6),
            "edges_per_s": round(self.edges_per_s, 3),
            "memory_budget_bytes": self.plan.memory_budget,
        }


def load_refined_offsets(
    hints: PathLike, num_partitions: int
) -> List[int]:
    """Balance priors from a prior bundle's refined partition-size profile.

    Reads ``metadata["refined"]["partition_sizes"]`` from the bundle at
    ``hints`` (written by refined compactions and ``repro refine``) and
    converts it to additive offsets.  Raises ``ValueError`` when the
    bundle has no refined profile or its partition count differs.
    """
    meta = partition_metadata(hints)
    refined = meta.get("refined")
    sizes = refined.get("partition_sizes") if isinstance(refined, dict) else None
    if not isinstance(sizes, list) or not sizes:
        raise ValueError(
            f"bundle {hints} has no refined partition-size profile "
            "(metadata['refined']['partition_sizes'])"
        )
    if len(sizes) != num_partitions:
        raise ValueError(
            f"refined profile in {hints} covers {len(sizes)} partitions, "
            f"stream is placing into {num_partitions}"
        )
    return balance_offsets([int(s) for s in sizes])


def partition_stream(
    source: PathLike,
    directory: PathLike,
    *,
    num_partitions: int,
    memory_budget: Optional[int] = None,
    policy: str = "hdrf",
    lam: float = 1.1,
    epsilon: float = 1.0,
    gamma: float = DEFAULT_GAMMA,
    cluster: bool = True,
    clusters_per_partition: int = CLUSTERS_PER_PARTITION,
    hints: Optional[PathLike] = None,
    metadata: Optional[Dict[str, object]] = None,
    compress: bool = False,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> OocoreResult:
    """Partition the edge list at ``source`` into a bundle at ``directory``.

    Never materialises the graph: two streaming passes over ``source``
    (plain or ``.gz``) plus a per-partition external sort.  Self loops
    are skipped (counted in the result); duplicate edges are rejected
    where sorting makes them adjacent.  The input stream is otherwise
    taken as-is — edges arrive in file order, orientation normalised to
    ``(min, max)`` like every other partitioner here.

    ``hints`` names a prior bundle whose refined partition-size profile
    becomes HDRF balance priors (see :func:`load_refined_offsets`).
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    source = Path(source)
    directory = Path(directory)
    plan = BudgetPlan.from_budget(memory_budget)
    offsets = (
        load_refined_offsets(hints, num_partitions) if hints is not None else None
    )
    stream = ChunkedEdgeStream(source, chunk_bytes=chunk_bytes)

    # -- pass 1: degree sketch + streaming clustering ----------------------
    t0 = time.perf_counter()
    sketch = DegreeSketch(plan.max_exact_vertices, plan.cm_width)
    clustering: Optional[StreamingClustering] = None
    skipped = 0
    if cluster:
        clustering = StreamingClustering(
            sketch,
            num_partitions,
            clusters_per_partition=clusters_per_partition,
        )
        for u, v in stream.edges():
            if u == v:
                skipped += 1
                continue
            clustering.add_edge(u, v)
        cluster_of = clustering.cluster_of
        cluster_partition = map_clusters(clustering.volume, num_partitions)
        num_clusters = clustering.num_clusters
    else:
        for u, v in stream.edges():
            if u == v:
                skipped += 1
                continue
            sketch.add(u)
            sketch.add(v)
        cluster_of = {}
        cluster_partition = {}
        num_clusters = 0
    pass1_seconds = time.perf_counter() - t0

    # -- pass 2: placement into spills -------------------------------------
    t0 = time.perf_counter()
    placer = StreamingPlacer(
        num_partitions,
        sketch,
        policy=policy,
        lam=lam,
        epsilon=epsilon,
        gamma=gamma,
        cluster_of=cluster_of,
        cluster_partition=cluster_partition,
        offsets=offsets,
    )
    directory.mkdir(parents=True, exist_ok=True)
    scratch = directory / SCRATCH_NAME
    writer = spill_mod.SpillWriter(
        scratch, num_partitions, buffer_bytes=plan.spill_buffer_bytes
    )
    try:
        for u, v in stream.edges():
            if u == v:
                continue
            a, b = normalize_edge(u, v)
            writer.append(placer.place(a, b), a, b)
        spills = writer.close()
        pass2_seconds = time.perf_counter() - t0

        # -- fold spills into the bundle -----------------------------------
        t0 = time.perf_counter()
        manifest_path = write_streaming_bundle(
            spills,
            writer.counts,
            directory,
            scratch=scratch,
            metadata=metadata,
            compress=compress,
            run_edges=plan.run_edges,
        )
        bundle_seconds = time.perf_counter() - t0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    return OocoreResult(
        num_partitions=num_partitions,
        num_edges=sum(writer.counts),
        num_vertices=placer.num_vertices,
        replication_factor=placer.replication_factor(),
        partition_sizes=list(placer.sizes),
        sketch_kind=sketch.kind,
        num_clusters=num_clusters,
        skipped_self_loops=skipped,
        pass1_seconds=pass1_seconds,
        pass2_seconds=pass2_seconds,
        bundle_seconds=bundle_seconds,
        manifest_path=manifest_path,
        plan=plan,
    )
