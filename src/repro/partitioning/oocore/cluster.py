"""Pass 1: volume-capped streaming label propagation (2PS §3).

One sweep over the edge stream builds a coarse clustering without ever
holding edges: every vertex starts as a singleton cluster, and for each
arriving edge the *lower-degree* endpoint tries to join the other
endpoint's cluster — degrees come from the shared
:class:`~repro.partitioning.oocore.sketch.DegreeSketch`, so "lower
degree" means "cheaper to move and more wasteful to replicate", exactly
the HDRF intuition.  A move is allowed only while the target cluster's
*volume* (sum of member degrees, the standard 2PS measure of how many
edge slots a cluster will claim) stays under a cap derived from the
volume streamed so far, which stops hub clusters from swallowing the
whole graph.

State is O(vertices): ``cluster_of`` (int -> int), per-cluster volumes,
and the degree sketch.  No member lists are kept — a vertex moves alone,
clusters never merge wholesale — which is what makes the pass streaming.

After the sweep, :func:`map_clusters` packs clusters onto partitions
with the LPT rule (largest volume first onto the least-loaded
partition), giving pass 2 its cluster -> partition affinity targets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.partitioning.oocore.sketch import DegreeSketch

#: Target clusters per partition: enough granularity that LPT can balance
#: partitions to within one cluster's volume, few enough that clusters
#: stay meaningfully larger than single vertices.
CLUSTERS_PER_PARTITION = 8

#: Slack over the perfectly-even per-cluster volume before the cap bites.
VOLUME_SLACK = 1.25


class StreamingClustering:
    """Volume-capped label propagation over one pass of the edge stream."""

    def __init__(
        self,
        sketch: DegreeSketch,
        num_partitions: int,
        clusters_per_partition: int = CLUSTERS_PER_PARTITION,
        volume_slack: float = VOLUME_SLACK,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.sketch = sketch
        self.target_clusters = max(1, num_partitions * clusters_per_partition)
        self.volume_slack = volume_slack
        self.cluster_of: Dict[int, int] = {}
        self.volume: Dict[int, int] = {}
        self.total_volume = 0
        self._next_cluster = 0

    def _cap(self) -> float:
        """Max volume a cluster may reach, from the stream so far."""
        return max(
            2.0, self.volume_slack * self.total_volume / self.target_clusters
        )

    def _ensure(self, vertex: int, degree: int) -> int:
        """Cluster of ``vertex``, folding its degree growth into the volume."""
        cluster = self.cluster_of.get(vertex)
        if cluster is None:
            cluster = self._next_cluster
            self._next_cluster += 1
            self.cluster_of[vertex] = cluster
            self.volume[cluster] = degree
        else:
            # The arriving edge grew this member's degree by one.
            self.volume[cluster] += 1
        return cluster

    def add_edge(self, u: int, v: int) -> None:
        """Fold one edge into the sketch and the clustering."""
        du = self.sketch.add(u)
        dv = self.sketch.add(v)
        self.total_volume += 2
        cu = self._ensure(u, du)
        cv = self._ensure(v, dv)
        if cu == cv:
            return
        # The lower-degree endpoint moves (ties: the first endpoint) — its
        # replicas are the cheaper ones to avoid, per the HDRF intuition.
        if du <= dv:
            mover, md, source, target = u, du, cu, cv
        else:
            mover, md, source, target = v, dv, cv, cu
        if self.volume[target] + md <= self._cap():
            self.cluster_of[mover] = target
            self.volume[source] -= md
            self.volume[target] += md
            if self.volume[source] <= 0:
                del self.volume[source]

    def consume(self, edges: Iterable[Tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def num_clusters(self) -> int:
        """Clusters still holding volume."""
        return len(self.volume)


def map_clusters(
    volume: Dict[int, int], num_partitions: int
) -> Dict[int, int]:
    """LPT packing of clusters onto partitions.

    Largest-volume cluster first onto the currently least-loaded
    partition; deterministic (volume ties break to the lower cluster id,
    load ties to the lower partition id).  Returns cluster -> partition.
    """
    loads = [0] * num_partitions
    mapping: Dict[int, int] = {}
    for cluster, vol in sorted(volume.items(), key=lambda kv: (-kv[1], kv[0])):
        k = min(range(num_partitions), key=lambda i: (loads[i], i))
        mapping[cluster] = k
        loads[k] += vol
    return mapping
