"""Out-of-core two-pass streaming edge partitioning.

Partition and bundle graphs far larger than RAM: pass 1 streams the
edge file through bounded-memory clustering and degree sketching
(2PS, arXiv:2001.07086), pass 2 re-streams it through the shared
cluster-aware HDRF/greedy scorer into per-partition spill files, and
the bundle stage external-sorts the spills into a byte-identical
``save_partition`` bundle — edge files, manifest, and mmap-able CSR
sidecar — shard by shard.

Front door: :func:`~repro.partitioning.oocore.pipeline.partition_stream`
(CLI: ``python -m repro partition-stream``).  In-memory registry
adapter: ``"2PS"``.
"""

from repro.partitioning.oocore.pipeline import (
    BudgetPlan,
    OocoreResult,
    load_refined_offsets,
    partition_stream,
)
from repro.partitioning.oocore.partitioner import TwoPhaseStreamingPartitioner

__all__ = [
    "BudgetPlan",
    "OocoreResult",
    "TwoPhaseStreamingPartitioner",
    "load_refined_offsets",
    "partition_stream",
]
