"""In-memory adapter: the two-pass heuristic as a registry partitioner.

Runs the exact pass-1 clustering and pass-2 placement of the out-of-core
pipeline over an in-memory edge sequence, so the 2PS heuristic slots
into the experiment harness (``"2PS"`` in the registry) and its RF can
sit in the same comparison tables as TLP/HDRF/DBH — and so the parity
suite can pin streamed placements against this adapter edge-for-edge.
The only difference from :func:`~repro.partitioning.oocore.pipeline.
partition_stream` is that edges come from a list instead of a file and
the result is an :class:`~repro.partitioning.assignment.EdgePartition`
instead of a bundle on disk.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.partitioning.oocore.cluster import (
    CLUSTERS_PER_PARTITION,
    StreamingClustering,
    map_clusters,
)
from repro.partitioning.oocore.place import DEFAULT_GAMMA, StreamingPlacer
from repro.partitioning.oocore.sketch import DegreeSketch
from repro.utils.rng import Seed


class TwoPhaseStreamingPartitioner(StreamingEdgePartitioner):
    """2PS-style two-pass streaming partitioner (in-memory adapter).

    Deterministic: placement ties break to the lowest partition id, so
    ``seed`` is accepted for registry uniformity but unused.
    """

    name = "2PS"

    def __init__(
        self,
        lam: float = 1.1,
        epsilon: float = 1.0,
        gamma: float = DEFAULT_GAMMA,
        policy: str = "hdrf",
        cluster: bool = True,
        clusters_per_partition: int = CLUSTERS_PER_PARTITION,
        offsets: Optional[Sequence[int]] = None,
        seed: Seed = None,
    ) -> None:
        self.lam = lam
        self.epsilon = epsilon
        self.gamma = gamma
        self.policy = policy
        self.cluster = cluster
        self.clusters_per_partition = clusters_per_partition
        self.offsets = list(offsets) if offsets is not None else None
        self.seed = seed

    def assign_stream(
        self,
        edges: Iterable[Edge],
        num_partitions: int,
        graph: Optional[Graph] = None,
    ) -> EdgePartition:
        stream: List[Edge] = [
            (u, v) for u, v in edges if u != v
        ]  # the pipeline needs two passes; self loops are skipped there too
        sketch = DegreeSketch(max_exact_vertices=1 << 62, cm_width=1)
        cluster_of = {}
        cluster_partition = {}
        if self.cluster:
            clustering = StreamingClustering(
                sketch,
                num_partitions,
                clusters_per_partition=self.clusters_per_partition,
            )
            clustering.consume(stream)
            cluster_of = clustering.cluster_of
            cluster_partition = map_clusters(clustering.volume, num_partitions)
        else:
            for u, v in stream:
                sketch.add(u)
                sketch.add(v)
        placer = StreamingPlacer(
            num_partitions,
            sketch,
            policy=self.policy,
            lam=self.lam,
            epsilon=self.epsilon,
            gamma=self.gamma,
            cluster_of=cluster_of,
            cluster_partition=cluster_partition,
            offsets=self.offsets,
        )
        assignment = [placer.place(*normalize_edge(u, v)) for u, v in stream]
        return EdgePartition.from_assignment(
            (normalize_edge(u, v) for u, v in stream), assignment, num_partitions
        )
