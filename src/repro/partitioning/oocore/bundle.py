"""Shard-by-shard assembly of a standard ``save_partition`` bundle.

The output must be **byte-identical** to what
:func:`repro.partitioning.serialization.save_partition` writes for the
same placements — same sorted edge files, same manifest JSON (key order
included), same CSR sidecar bytes — because the acceptance criterion
opens both through :class:`~repro.service.store.PartitionStore` and
compares answers.  The difference is purely how much lives in memory:

* one partition at a time, its spill is external-sorted and streamed to
  the text edge file (incremental checksum) while filling a single
  ``(m_k, 2)`` array — peak O(edges / P), not O(edges);
* that array is frozen into the partition's CSR block
  (:func:`~repro.partitioning.csr_bundle._partition_adjacency`, the
  exact same routine the in-memory writer uses) and immediately parked
  in temp ``.raw`` files, because the sidecar layout puts the *global*
  tables — which depend on every partition — first in the file;
* global replica/master state accrues in O(vertices) dicts with the
  ReplicationTable rules (replicas ascending ``k``; master = most local
  edges, ties to the lowest ``k`` via strictly-greater replacement);
* finally the sidecar is assembled from
  :func:`~repro.partitioning.csr_bundle.sidecar_layout` (the shared
  header/offset logic): global arrays written directly, partition
  blocks stream-copied from their temp files in bounded chunks.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.graph.io import open_text
from repro.partitioning import csr_bundle
from repro.partitioning.csr_bundle import SIDECAR_NAME, SIDECAR_VERSION
from repro.partitioning.oocore import spill as spill_mod
from repro.partitioning.serialization import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    EdgeChecksum,
    _edge_file,
    _write_atomic,
)

_DTYPE = np.int64
_COPY_BYTES = 1 << 20


def _array_file(scratch: Path, name: str) -> Path:
    return scratch / f"{name}.raw"


def _copy_into(fh, src: Path) -> None:
    """Append ``src``'s bytes at ``fh``'s current position, chunked."""
    with open(src, "rb") as sf:
        shutil.copyfileobj(sf, fh, _COPY_BYTES)


def write_streaming_bundle(
    spills: List[Path],
    counts: List[int],
    directory: Path,
    *,
    scratch: Path,
    metadata: Optional[Dict[str, object]] = None,
    compress: bool = False,
    run_edges: int = spill_mod.DEFAULT_RUN_EDGES,
) -> Path:
    """Fold per-partition spills into a bundle at ``directory``.

    ``spills[k]``/``counts[k]`` name partition ``k``'s spill file and
    record count (from :class:`~repro.partitioning.oocore.spill.
    SpillWriter`); ``scratch`` holds the temp array files and is left
    empty of them on success.  Returns the manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    scratch = Path(scratch)
    scratch.mkdir(parents=True, exist_ok=True)
    num_partitions = len(spills)

    manifest: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "num_partitions": num_partitions,
        "num_edges": sum(counts),
        "partitions": [],
        "metadata": metadata or {},
    }

    # O(vertices) global state, ReplicationTable rules.
    replicas: Dict[int, List[int]] = {}
    best_deg: Dict[int, int] = {}
    master_of: Dict[int, int] = {}

    entries: List[Dict[str, object]] = []
    lengths: List[tuple] = [
        ("vertex_ids", 0),  # patched below once n is known
        ("master", 0),
        ("rep_indptr", 0),
        ("rep_parts", 0),
    ]
    array_files: Dict[str, Path] = {}

    for k in range(num_partitions):
        checksum = EdgeChecksum()
        edges = np.empty((counts[k], 2), dtype=_DTYPE)
        path = _edge_file(directory, k, compress)

        def write_edges(tmp: Path, k: int = k) -> None:
            row = 0
            with open_text(tmp, "w") as fh:
                stream = spill_mod.external_sort_check(
                    spill_mod.sorted_edges(spills[k], counts[k], run_edges),
                    spills[k],
                )
                for u, v in stream:
                    fh.write(f"{u}\t{v}\n")
                    checksum.add(u, v)
                    edges[row, 0] = u
                    edges[row, 1] = v
                    row += 1
            if row != counts[k]:
                raise ValueError(
                    f"{spills[k].name}: expected {counts[k]} records, got {row}"
                )

        _write_atomic(path, write_edges)
        other = _edge_file(directory, k, not compress)
        if other.exists():
            other.unlink()
        entries.append(
            {
                "index": k,
                "file": path.name,
                "edges": counts[k],
                "checksum": checksum.hexdigest(),
            }
        )

        ids, indptr, indices = csr_bundle._partition_adjacency(edges)
        del edges
        for name, array in (
            (f"p{k}_ids", ids),
            (f"p{k}_indptr", indptr),
            (f"p{k}_indices", indices),
        ):
            target = _array_file(scratch, name)
            array.astype(_DTYPE, copy=False).tofile(target)
            array_files[name] = target
            lengths.append((name, int(array.size)))

        local_deg = np.diff(indptr)
        for vertex, deg in zip(ids.tolist(), local_deg.tolist()):
            replicas.setdefault(vertex, []).append(k)  # k ascends: sorted
            if deg > best_deg.get(vertex, 0):
                best_deg[vertex] = deg
                master_of[vertex] = k
        del ids, indptr, indices, local_deg

    # -- global tables -----------------------------------------------------
    vertex_ids = np.array(sorted(replicas), dtype=_DTYPE)
    n = len(vertex_ids)
    master = np.fromiter(
        (master_of[v] for v in vertex_ids.tolist()), dtype=_DTYPE, count=n
    )
    rep_indptr = np.zeros(n + 1, dtype=_DTYPE)
    np.cumsum(
        np.fromiter(
            (len(replicas[v]) for v in vertex_ids.tolist()), dtype=_DTYPE, count=n
        ),
        out=rep_indptr[1:],
    )
    rep_parts = np.fromiter(
        (k for v in vertex_ids.tolist() for k in replicas[v]),
        dtype=_DTYPE,
        count=int(rep_indptr[-1]),
    )
    lengths[0] = ("vertex_ids", n)
    lengths[1] = ("master", n)
    lengths[2] = ("rep_indptr", n + 1)
    lengths[3] = ("rep_parts", int(rep_parts.size))

    layout = csr_bundle.sidecar_layout(
        num_partitions, int(manifest["num_edges"]), lengths
    )

    def write_sidecar(tmp: Path) -> None:
        with open(tmp, "wb") as fh:
            layout.write_preamble(fh)
            for name, array in (
                ("vertex_ids", vertex_ids),
                ("master", master),
                ("rep_indptr", rep_indptr),
                ("rep_parts", rep_parts),
            ):
                fh.seek(layout.array_offset(name))
                array.tofile(fh)
            for name, _length in lengths[4:]:
                fh.seek(layout.array_offset(name))
                _copy_into(fh, array_files[name])
            fh.truncate(max(layout.total_size, fh.tell()))

    sidecar_path = directory / SIDECAR_NAME
    _write_atomic(sidecar_path, write_sidecar)
    for target in array_files.values():
        target.unlink(missing_ok=True)

    manifest["partitions"] = entries
    manifest["csr_sidecar"] = {
        "file": SIDECAR_NAME,
        "version": SIDECAR_VERSION,
        "bytes": sidecar_path.stat().st_size,
        "checksum": csr_bundle.sidecar_checksum(sidecar_path),
    }
    manifest_path = directory / MANIFEST_NAME
    payload = json.dumps(manifest, indent=2)
    _write_atomic(manifest_path, lambda tmp: tmp.write_text(payload, encoding="utf-8"))
    return manifest_path
