"""Partition-quality metrics.

The headline metric of the paper is the **replication factor** (Definition 4):

    RF = sum_k |V(P_k)| / |V|

We also provide edge balance, spanned-vertex counts, per-partition modularity
in the paper's sense (Definition 8), and the exact accounting identity behind
Claim 1 / Eq. 6, which tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition


def replication_factor(partition: EdgePartition, graph: Graph) -> float:
    """``RF = sum_k |V(P_k)| / |V|`` (Eq. 1).  The minimum is 1.0.

    ``|V|`` counts only non-isolated vertices when the graph has isolated
    vertices that no edge partition could ever cover — the paper's datasets
    have none after normalisation, but synthetic graphs might.
    """
    covered = sum(partition.vertex_counts())
    n = sum(1 for v in graph.vertices() if graph.degree(v) > 0)
    if n == 0:
        return 1.0
    return covered / n


def edge_balance(partition: EdgePartition) -> float:
    """Max partition size over the ideal size ``m / p`` (1.0 = perfect)."""
    sizes = partition.partition_sizes()
    m = sum(sizes)
    p = len(sizes)
    if m == 0:
        return 1.0
    return max(sizes) * p / m


def spanned_vertex_count(partition: EdgePartition) -> int:
    """Number of vertices replicated across >= 2 partitions (Definition 2)."""
    seen: Dict[int, int] = {}
    for vs in partition.vertex_sets():
        for v in vs:
            seen[v] = seen.get(v, 0) + 1
    return sum(1 for count in seen.values() if count >= 2)


def total_replicas(partition: EdgePartition) -> int:
    """``sum_k |V(P_k)|`` — the numerator of RF; also the mirror count + |V|."""
    return sum(partition.vertex_counts())


def external_incidences(partition: EdgePartition, graph: Graph) -> List[int]:
    """Per-partition external-edge incidences.

    For partition ``k``, counts pairs ``(edge e, endpoint v)`` with
    ``v in V(P_k)`` but ``e`` allocated elsewhere.  This is the exact
    final-state generalisation of the paper's ``|E_out(P_k)|``: during TLP's
    execution every external edge has exactly one endpoint inside, so
    incidences coincide with edges; after *all* partitions are fixed an
    external edge may have both endpoints in ``V(P_k)`` and contributes 2.

    Satisfies exactly, for every k:

        sum_{v in V(P_k)} deg_G(v) = 2 |E(P_k)| + external_incidences[k]
    """
    vertex_sets = partition.vertex_sets()
    counts: List[int] = []
    for k, vs in enumerate(vertex_sets):
        degree_sum = sum(graph.degree(v) for v in vs)
        counts.append(degree_sum - 2 * len(partition.edges_of(k)))
    return counts


def partition_modularities(partition: EdgePartition, graph: Graph) -> List[float]:
    """Paper-style modularity ``M(P_k) = |E(P_k)| / |E_out(P_k)|`` per partition.

    Uses exact external incidences; ``inf`` when a partition has no external
    incidences (a whole connected component).
    """
    external = external_incidences(partition, graph)
    mods: List[float] = []
    for k, ext in enumerate(external):
        internal = len(partition.edges_of(k))
        mods.append(float("inf") if ext == 0 else internal / ext)
    return mods


def rf_from_modularities(partition: EdgePartition, graph: Graph) -> float:
    """Exact form of Eq. 6 computed from per-partition counts.

    ``RF = sum_k (2|E(P_k)| + ext_k) / (sum_v deg(v))`` — equivalently
    ``sum_k sum_{v in V(P_k)} deg(v) / 2|E|`` *weighted by true degrees*.
    With the paper's averaging assumption (every vertex has degree d and all
    partitions equal-sized) this reduces to ``1 + (1/p) sum_k 1/M(P_k)``.
    """
    external = external_incidences(partition, graph)
    numerator = sum(
        2 * len(partition.edges_of(k)) + external[k]
        for k in range(partition.num_partitions)
    )
    total_degree = 2 * graph.num_edges
    if total_degree == 0:
        return 1.0
    # NOTE: this equals sum_k sum_{v in V(P_k)} deg(v) / 2m, which is RF only
    # when all degrees are equal; it is the quantity Eq. 6 actually bounds.
    return numerator / total_degree


@dataclass
class PartitionReport:
    """Bundle of the metrics reported in the paper's evaluation."""

    replication_factor: float
    edge_balance: float
    spanned_vertices: int
    partition_sizes: List[int]
    vertex_counts: List[int]

    @classmethod
    def evaluate(cls, partition: EdgePartition, graph: Graph) -> "PartitionReport":
        """Compute all metrics for ``partition`` on ``graph``."""
        return cls(
            replication_factor=replication_factor(partition, graph),
            edge_balance=edge_balance(partition),
            spanned_vertices=spanned_vertex_count(partition),
            partition_sizes=partition.partition_sizes(),
            vertex_counts=partition.vertex_counts(),
        )
