"""The HDRF/greedy scoring core shared by every streaming placement path.

Three call sites place edges with HDRF scoring (Petroni et al., CIKM
2015): the offline :class:`~repro.partitioning.hdrf.HDRFPartitioner`,
the online :func:`repro.service.ingest.place_hdrf` used by the WAL write
path, and pass 2 of the out-of-core partitioner
(:mod:`repro.partitioning.oocore`).  They must agree **bit-for-bit** —
the oocore acceptance criterion compares streamed placements against the
in-memory scorer — so the arithmetic lives here once, in exactly the
order the original partitioner performed it.

The score of partition ``k`` for the arriving edge ``(u, v)``:

    g_u   = (1 + (1 - theta_u))   if k hosts a replica of u else 0
    c_bal = (max_size - size_k) / (epsilon + max_size - min_size)
    score = g_u + g_v + lam * c_bal   [+ gamma if k is an affinity target]

with ``theta_u = du / (du + dv)``.  Two extensions, both off by default
and bit-neutral when unused:

* ``offsets`` — additive per-partition size priors.  A refined bundle's
  ``metadata["refined"]["partition_sizes"]`` profile converts (via
  :func:`balance_offsets`) into offsets that make the balance term steer
  toward the *refined* shape instead of uniform sizes, so post-placement
  refinement starts from where the last refinement ended.
* ``affinity``/``gamma`` — the 2PS-style clustering bonus: partitions
  that own the endpoint clusters score ``gamma`` higher, concentrating
  intra-cluster edges without overriding balance.
"""

from __future__ import annotations

from typing import Container, List, Optional, Sequence, Set


def hdrf_ties(
    du: int,
    dv: int,
    replicas_u: Container[int],
    replicas_v: Container[int],
    sizes: Sequence[int],
    *,
    candidates: Optional[Sequence[int]] = None,
    lam: float = 1.1,
    epsilon: float = 1.0,
    offsets: Optional[Sequence[int]] = None,
    affinity: Optional[Container[int]] = None,
    gamma: float = 0.0,
) -> List[int]:
    """All best-scoring partitions for ``(u, v)``, in candidate order.

    ``candidates`` restricts the scored partitions (ascending ids when
    omitted) but the balance normalisation always spans *all* partitions
    — matching both existing scorers.  The caller picks from the ties:
    ``ties[0]`` is the deterministic lowest-id winner, ``rng.choice``
    reproduces the partitioner's historical random tie-break.
    """
    theta_u = du / (du + dv)
    theta_v = 1.0 - theta_u
    eff = sizes if offsets is None else [s + o for s, o in zip(sizes, offsets)]
    max_size = max(eff)
    min_size = min(eff)
    ks = range(len(sizes)) if candidates is None else candidates
    best_score = float("-inf")
    ties: List[int] = []
    for k in ks:
        g_u = (1.0 + (1.0 - theta_u)) if k in replicas_u else 0.0
        g_v = (1.0 + (1.0 - theta_v)) if k in replicas_v else 0.0
        c_bal = (max_size - eff[k]) / (epsilon + max_size - min_size)
        score = g_u + g_v + lam * c_bal
        if affinity is not None and k in affinity:
            score += gamma
        if score > best_score:
            best_score = score
            ties = [k]
        elif score == best_score:
            ties.append(k)
    return ties


def greedy_choice(
    replicas_u: Set[int],
    replicas_v: Set[int],
    sizes: Sequence[int],
    candidates: Sequence[int],
) -> int:
    """PowerGraph's four greedy rules; least-loaded, ties to lowest id.

    Replica sets are intersected with the candidate set first — a full
    partition cannot take the edge even if it hosts both endpoints.
    """
    allowed = set(candidates)
    hosts_u = replicas_u & allowed
    hosts_v = replicas_v & allowed
    both = hosts_u & hosts_v
    if both:
        pool: Set[int] = both
    elif hosts_u and hosts_v:
        pool = hosts_u | hosts_v
    elif hosts_u or hosts_v:
        pool = hosts_u or hosts_v
    else:
        pool = allowed
    return min(pool, key=lambda k: (sizes[k], k))


def balance_offsets(profile: Sequence[int]) -> List[int]:
    """Turn a target partition-size profile into additive size offsets.

    Partitions the profile wants *larger* get smaller offsets, making
    them look emptier to the balance term and therefore more attractive,
    until live sizes reproduce the profile's shape.  A uniform profile
    yields all-zero offsets (no behaviour change).
    """
    if not profile:
        return []
    top = max(profile)
    return [top - s for s in profile]
