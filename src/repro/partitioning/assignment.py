"""The result type of every edge partitioner: :class:`EdgePartition`.

Stores, for each partition ``P_k``, the list of edges allocated to it
(canonical ``(u, v), u < v`` form), plus lazily computed derived views
(per-partition vertex sets, the edge -> partition map).  All quality metrics
in :mod:`repro.partitioning.metrics` are computed from this object.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graph.graph import Edge, Graph, normalize_edge


class EdgePartition:
    """A balanced ``p``-edge partitioning (Definition 3 of the paper).

    ``parts[k]`` holds the edges of partition ``k``.  Partitions may be empty
    (e.g. a tiny graph split into many parts).
    """

    def __init__(self, parts: Sequence[Sequence[Edge]]) -> None:
        self._parts: List[List[Edge]] = [
            [normalize_edge(u, v) for u, v in part] for part in parts
        ]
        self._vertex_sets: Optional[List[Set[int]]] = None
        self._edge_to_part: Optional[Dict[Edge, int]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_assignment(
        cls, edges: Iterable[Edge], assignment: Iterable[int], num_partitions: int
    ) -> "EdgePartition":
        """Build from parallel iterables of edges and their partition ids."""
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        for edge, k in zip(edges, assignment):
            parts[k].append(edge)
        return cls(parts)

    # -- basic views -------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """``p``."""
        return len(self._parts)

    @property
    def num_edges(self) -> int:
        """Total number of edges across all partitions."""
        return sum(len(part) for part in self._parts)

    def edges_of(self, k: int) -> List[Edge]:
        """Edges of partition ``k``.  Treat as read-only."""
        return self._parts[k]

    def partition_sizes(self) -> List[int]:
        """``|E(P_k)|`` for each k."""
        return [len(part) for part in self._parts]

    def vertex_sets(self) -> List[Set[int]]:
        """``V(P_k)`` — endpoints of the edges in each partition (cached)."""
        if self._vertex_sets is None:
            sets: List[Set[int]] = []
            for part in self._parts:
                vs: Set[int] = set()
                for u, v in part:
                    vs.add(u)
                    vs.add(v)
                sets.append(vs)
            self._vertex_sets = sets
        return self._vertex_sets

    def vertex_counts(self) -> List[int]:
        """``|V(P_k)|`` for each k."""
        return [len(vs) for vs in self.vertex_sets()]

    def edge_to_partition(self) -> Dict[Edge, int]:
        """Map from canonical edge to its partition id (cached).

        Raises ``ValueError`` if any edge appears in two partitions.
        """
        if self._edge_to_part is None:
            mapping: Dict[Edge, int] = {}
            for k, part in enumerate(self._parts):
                for edge in part:
                    if edge in mapping:
                        raise ValueError(
                            f"edge {edge} assigned to partitions {mapping[edge]} and {k}"
                        )
                    mapping[edge] = k
            self._edge_to_part = mapping
        return self._edge_to_part

    def partition_of(self, u: int, v: int) -> int:
        """Partition id of edge ``{u, v}``; raises ``KeyError`` if unassigned."""
        return self.edge_to_partition()[normalize_edge(u, v)]

    def replicas(self, v: int) -> int:
        """Number of partitions vertex ``v`` appears in (0 if isolated)."""
        return sum(1 for vs in self.vertex_sets() if v in vs)

    # -- validation --------------------------------------------------------

    def validate_against(self, graph: Graph) -> None:
        """Check this is a true partition of ``graph``'s edge set.

        Raises ``ValueError`` on duplicates, missing, or foreign edges.
        """
        mapping = self.edge_to_partition()  # raises on duplicates
        if len(mapping) != graph.num_edges:
            raise ValueError(
                f"partition covers {len(mapping)} edges, graph has {graph.num_edges}"
            )
        for u, v in mapping:
            if not graph.has_edge(u, v):
                raise ValueError(f"partitioned edge ({u}, {v}) is not in the graph")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = self.partition_sizes()
        return f"EdgePartition(p={self.num_partitions}, sizes={sizes})"
