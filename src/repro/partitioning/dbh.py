"""DBH — Degree-Based Hashing (Xie et al., NIPS 2014).

A one-pass streaming edge partitioner for power-law graphs: each edge is
placed by hashing its *lower-degree* endpoint.  High-degree hubs are the ones
cut (replicated), which is provably better on skewed degree distributions —
this is the paper's "power-law aware" baseline.

When the full graph is available its exact degrees are used; in pure
streaming mode the partial degrees observed so far stand in (the original
paper assumes degrees are known, e.g. from a first pass).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner


def _hash_vertex(v: int, salt: int, num_partitions: int) -> int:
    # Deterministic across runs (unlike built-in hash() of str) and cheap.
    x = (v ^ salt) & 0xFFFFFFFFFFFFFFFF
    x = (x * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x % num_partitions


class DBHPartitioner(StreamingEdgePartitioner):
    """Hash the lower-degree endpoint of every edge."""

    name = "DBH"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Place each edge by hashing its smaller-degree endpoint."""
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        partial_degree: Dict[int, int] = {}
        for u, v in edges:
            if graph is not None:
                du, dv = graph.degree(u), graph.degree(v)
            else:
                du = partial_degree.get(u, 0) + 1
                dv = partial_degree.get(v, 0) + 1
                partial_degree[u] = du
                partial_degree[v] = dv
            if du < dv or (du == dv and u < v):
                target = u
            else:
                target = v
            parts[_hash_vertex(target, self.salt, num_partitions)].append((u, v))
        return EdgePartition(parts)
