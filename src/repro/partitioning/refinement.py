"""Replication refinement: greedy post-processing that strictly lowers RF.

The paper's conclusion anticipates improving TLP further; this module
implements the natural refinement for *any* edge partitioning, analogous to
what FM does for vertex cuts.  Moving edge ``(u, v)`` from partition ``A``
to ``B`` changes the replica count by

    gain = [u's last edge in A] + [v's last edge in A]
         - [u absent from B]    - [v absent from B]

Moves with positive gain strictly reduce ``sum_k |V(P_k)|`` (hence RF), so
greedy passes terminate.  Capacity is respected: a move into a partition at
its cap is never made, and balance can only improve or stay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.graph.graph import Edge
from repro.partitioning.assignment import EdgePartition


@dataclass
class RefinementStats:
    """What a refinement run did."""

    passes: int
    moves: int
    replicas_before: int
    replicas_after: int

    @property
    def replicas_saved(self) -> int:
        """Total replicas removed."""
        return self.replicas_before - self.replicas_after


def refine_replication(
    partition: EdgePartition,
    capacity: int = 0,
    max_passes: int = 8,
    slack: float = 1.0,
) -> tuple:
    """Greedy RF refinement; returns ``(refined_partition, stats)``.

    ``capacity`` bounds every partition's size (default ``ceil(slack·m/p)``,
    or the input's max size when the input is already over that, so
    refinement never *worsens* an unbalanced input).  On an exactly-balanced
    input every partition is at its cap and no move is feasible; a small
    ``slack`` (e.g. 1.05) opens the headroom greedy moves need.
    """
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    p = partition.num_partitions
    m = partition.num_edges
    if capacity <= 0:
        capacity = max(1, math.ceil(slack * m / p)) if p else 1
        capacity = max(capacity, max(partition.partition_sizes() or [0]))

    # Mutable state: edge -> partition, per-vertex incident counts, sizes.
    edge_part: Dict[Edge, int] = dict(partition.edge_to_partition())
    incident: Dict[int, Dict[int, int]] = {}
    sizes = [0] * p
    for edge, k in edge_part.items():
        sizes[k] += 1
        for w in edge:
            row = incident.setdefault(w, {})
            row[k] = row.get(k, 0) + 1
    replicas_before = sum(len(row) for row in incident.values())

    total_moves = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        moves = _one_pass(edge_part, incident, sizes, capacity)
        total_moves += moves
        if moves == 0:
            break

    parts: List[List[Edge]] = [[] for _ in range(p)]
    for edge, k in edge_part.items():
        parts[k].append(edge)
    replicas_after = sum(len(row) for row in incident.values())
    refined = EdgePartition(parts)
    stats = RefinementStats(
        passes=passes,
        moves=total_moves,
        replicas_before=replicas_before,
        replicas_after=replicas_after,
    )
    return refined, stats


def _one_pass(
    edge_part: Dict[Edge, int],
    incident: Dict[int, Dict[int, int]],
    sizes: List[int],
    capacity: int,
) -> int:
    moves = 0
    for edge in list(edge_part):
        u, v = edge
        source = edge_part[edge]
        row_u = incident[u]
        row_v = incident[v]
        remove_gain = (row_u[source] == 1) + (row_v[source] == 1)
        if remove_gain == 0:
            continue  # no replica can be freed by moving this edge
        candidates: Set[int] = (set(row_u) | set(row_v)) - {source}
        best_target = -1
        best_gain = 0
        for target in candidates:
            if sizes[target] >= capacity:
                continue
            add_cost = (target not in row_u) + (target not in row_v)
            gain = remove_gain - add_cost
            if gain > best_gain or (
                gain == best_gain and gain > 0 and sizes[target] < sizes[best_target]
            ):
                best_gain = gain
                best_target = target
        if best_gain <= 0:
            continue
        # Execute the move.
        edge_part[edge] = best_target
        sizes[source] -= 1
        sizes[best_target] += 1
        for w, row in ((u, row_u), (v, row_v)):
            row[source] -= 1
            if row[source] == 0:
                del row[source]
            row[best_target] = row.get(best_target, 0) + 1
        moves += 1
    return moves
