"""Grid (constrained) edge partitioning — GraphBuilder/PowerLyra style.

Partitions are arranged in an ``r x c`` grid.  Each vertex hashes to one
cell; its *constraint set* is that cell's row plus column.  An edge may only
go to a partition in the intersection of its endpoints' constraint sets
(never empty: the two shards share a row or column cell), which caps the
replication of any vertex at ``r + c - 1``.  The least-loaded eligible
partition is chosen.

A related-work baseline (not in the paper's Fig. 8) used by the extended
comparison benches.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Set

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.partitioning.dbh import _hash_vertex


def _grid_shape(num_partitions: int) -> tuple:
    rows = max(1, int(math.isqrt(num_partitions)))
    cols = math.ceil(num_partitions / rows)
    return rows, cols


class GridPartitioner(StreamingEdgePartitioner):
    """2D constrained hashing over an r x c partition grid."""

    name = "Grid"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def _constraint_set(self, v: int, rows: int, cols: int, p: int) -> Set[int]:
        cell = _hash_vertex(v, self.salt, p)
        r, c = divmod(cell, cols)
        members = {r * cols + j for j in range(cols)} | {i * cols + c for i in range(rows)}
        return {k for k in members if k < p}

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Place each edge in the least-loaded eligible grid cell."""
        rows, cols = _grid_shape(num_partitions)
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        sizes = [0] * num_partitions
        for u, v in edges:
            eligible = self._constraint_set(u, rows, cols, num_partitions) & (
                self._constraint_set(v, rows, cols, num_partitions)
            )
            if not eligible:
                # Can only happen when p is not a full grid; fall back to union.
                eligible = self._constraint_set(
                    u, rows, cols, num_partitions
                ) | self._constraint_set(v, rows, cols, num_partitions)
            k = min(eligible, key=lambda i: sizes[i])
            parts[k].append((u, v))
            sizes[k] += 1
        return EdgePartition(parts)
