"""Post-hoc rebalancing of edge partitions.

Some streaming heuristics (notably PowerGraph's Greedy) produce excellent
replication factors but badly unbalanced partitions.  :func:`rebalance`
repairs Definition 3 after the fact: edges migrate from over-capacity to
under-capacity partitions, preferring moves that do not create new replicas
(both endpoints already present in the destination), then moves that create
one, and only then arbitrary moves.  The result is a valid balanced
partition whose RF is as close to the input's as the migration allows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from repro.graph.graph import Edge
from repro.partitioning.assignment import EdgePartition
from repro.utils.validation import check_positive


def _replica_cost(u: int, v: int, vertices: Set[int]) -> int:
    """New replicas created by placing edge (u, v) into a partition."""
    return (u not in vertices) + (v not in vertices)


def rebalance(
    partition: EdgePartition, capacity: int = 0, max_rounds: int = 4
) -> EdgePartition:
    """Return a copy of ``partition`` with every part at most ``capacity``.

    ``capacity`` defaults to ``ceil(m/p)``.  Raises ``ValueError`` when the
    total edge count cannot fit (``capacity * p < m``).
    """
    p = partition.num_partitions
    m = partition.num_edges
    if capacity <= 0:
        capacity = max(1, math.ceil(m / p)) if p else 1
    check_positive("capacity", capacity)
    if capacity * p < m:
        raise ValueError(
            f"capacity {capacity} x {p} partitions cannot hold {m} edges"
        )

    parts: List[List[Edge]] = [list(partition.edges_of(k)) for k in range(p)]
    vertex_sets: List[Set[int]] = [set(vs) for vs in partition.vertex_sets()]

    for _ in range(max_rounds):
        overfull = [k for k in range(p) if len(parts[k]) > capacity]
        if not overfull:
            break
        underfull = sorted(
            (k for k in range(p) if len(parts[k]) < capacity),
            key=lambda k: len(parts[k]),
        )
        for src in overfull:
            surplus = len(parts[src]) - capacity
            if surplus <= 0:
                continue
            moved = _drain(parts, vertex_sets, src, surplus, underfull, capacity)
            if moved < surplus:
                # Destinations filled up; refresh the underfull list.
                underfull = sorted(
                    (k for k in range(p) if len(parts[k]) < capacity),
                    key=lambda k: len(parts[k]),
                )
                _drain(parts, vertex_sets, src, surplus - moved, underfull, capacity)
    result = EdgePartition(parts)
    return result


def _drain(
    parts: List[List[Edge]],
    vertex_sets: List[Set[int]],
    src: int,
    surplus: int,
    destinations: List[int],
    capacity: int,
) -> int:
    """Move up to ``surplus`` edges out of ``src``; returns how many moved."""
    moved = 0
    # Cheapest moves first: rank each candidate (edge, dst) by replica cost.
    for max_cost in (0, 1, 2):
        if moved >= surplus:
            break
        for dst in destinations:
            if moved >= surplus:
                break
            room = capacity - len(parts[dst])
            if room <= 0:
                continue
            kept: List[Edge] = []
            for edge in parts[src]:
                if (
                    moved < surplus
                    and room > 0
                    and _replica_cost(edge[0], edge[1], vertex_sets[dst]) <= max_cost
                ):
                    parts[dst].append(edge)
                    vertex_sets[dst].update(edge)
                    room -= 1
                    moved += 1
                else:
                    kept.append(edge)
            parts[src] = kept
    return moved


def rebalance_report(
    before: EdgePartition, after: EdgePartition
) -> Dict[str, Tuple[int, int]]:
    """Before/after sizes summary for logging."""
    return {
        "max_size": (max(before.partition_sizes()), max(after.partition_sizes())),
        "min_size": (min(before.partition_sizes()), min(after.partition_sizes())),
        "edges": (before.num_edges, after.num_edges),
    }
