"""HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).

A streaming edge partitioner that, like DBH, prefers to replicate hubs, but
scores every partition instead of hashing:

    score(e=(u,v), k) = C_rep(u, v, k) + lambda * C_bal(k)

where ``C_rep`` awards partitions already hosting an endpoint, weighted so
the *lower*-degree endpoint counts more (its replicas are more wasteful),
and ``C_bal`` is a normalised load term.  Partial (observed-so-far) degrees
are the original paper's default; exact degrees are used when available.

Related-work baseline for the extended comparison benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.partitioning.scoring import hdrf_ties
from repro.utils.rng import Seed, make_rng


class HDRFPartitioner(StreamingEdgePartitioner):
    """HDRF scoring with balance weight ``lam`` (paper default 1.0-1.1).

    ``tie_break`` selects between the paper's seeded-random tie-break
    (``"random"``, the historical default) and the deterministic
    lowest-id rule (``"lowest"``) that the online and out-of-core
    scorers use — the latter makes this partitioner directly comparable
    to a streamed placement over the same edge order.
    """

    name = "HDRF"

    def __init__(
        self,
        lam: float = 1.1,
        epsilon: float = 1.0,
        seed: Seed = None,
        tie_break: str = "random",
    ) -> None:
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if tie_break not in ("random", "lowest"):
            raise ValueError(f"tie_break must be 'random' or 'lowest', got {tie_break!r}")
        self.lam = lam
        self.epsilon = epsilon
        self.seed = seed
        self.tie_break = tie_break

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Score every partition for every edge; highest score wins."""
        rng = make_rng(self.seed)
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        sizes = [0] * num_partitions
        replicas: Dict[int, Set[int]] = {}
        partial_degree: Dict[int, int] = {}

        for u, v in edges:
            if graph is not None:
                du, dv = graph.degree(u), graph.degree(v)
            else:
                du = partial_degree.get(u, 0) + 1
                dv = partial_degree.get(v, 0) + 1
                partial_degree[u] = du
                partial_degree[v] = dv
            au = replicas.get(u, set())
            av = replicas.get(v, set())
            best_ties = hdrf_ties(
                du, dv, au, av, sizes, lam=self.lam, epsilon=self.epsilon
            )
            if len(best_ties) == 1 or self.tie_break == "lowest":
                best_k = best_ties[0]
            else:
                best_k = rng.choice(best_ties)
            parts[best_k].append((u, v))
            sizes[best_k] += 1
            replicas.setdefault(u, set()).add(best_k)
            replicas.setdefault(v, set()).add(best_k)
        return EdgePartition(parts)
