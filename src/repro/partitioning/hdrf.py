"""HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).

A streaming edge partitioner that, like DBH, prefers to replicate hubs, but
scores every partition instead of hashing:

    score(e=(u,v), k) = C_rep(u, v, k) + lambda * C_bal(k)

where ``C_rep`` awards partitions already hosting an endpoint, weighted so
the *lower*-degree endpoint counts more (its replicas are more wasteful),
and ``C_bal`` is a normalised load term.  Partial (observed-so-far) degrees
are the original paper's default; exact degrees are used when available.

Related-work baseline for the extended comparison benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.utils.rng import Seed, make_rng


class HDRFPartitioner(StreamingEdgePartitioner):
    """HDRF scoring with balance weight ``lam`` (paper default 1.0-1.1)."""

    name = "HDRF"

    def __init__(self, lam: float = 1.1, epsilon: float = 1.0, seed: Seed = None) -> None:
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        self.lam = lam
        self.epsilon = epsilon
        self.seed = seed

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Score every partition for every edge; highest score wins."""
        rng = make_rng(self.seed)
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        sizes = [0] * num_partitions
        replicas: Dict[int, Set[int]] = {}
        partial_degree: Dict[int, int] = {}

        for u, v in edges:
            if graph is not None:
                du, dv = graph.degree(u), graph.degree(v)
            else:
                du = partial_degree.get(u, 0) + 1
                dv = partial_degree.get(v, 0) + 1
                partial_degree[u] = du
                partial_degree[v] = dv
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            au = replicas.get(u, set())
            av = replicas.get(v, set())
            max_size = max(sizes)
            min_size = min(sizes)
            best_k = 0
            best_score = float("-inf")
            best_ties: List[int] = []
            for k in range(num_partitions):
                g_u = (1.0 + (1.0 - theta_u)) if k in au else 0.0
                g_v = (1.0 + (1.0 - theta_v)) if k in av else 0.0
                c_bal = (max_size - sizes[k]) / (self.epsilon + max_size - min_size)
                score = g_u + g_v + self.lam * c_bal
                if score > best_score:
                    best_score = score
                    best_ties = [k]
                elif score == best_score:
                    best_ties.append(k)
            best_k = best_ties[0] if len(best_ties) == 1 else rng.choice(best_ties)
            parts[best_k].append((u, v))
            sizes[best_k] += 1
            replicas.setdefault(u, set()).add(best_k)
            replicas.setdefault(v, set()).add(best_k)
        return EdgePartition(parts)
