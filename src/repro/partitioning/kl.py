"""Kernighan–Lin style offline partitioner (the paper's §II-B example).

The paper describes KL as the classic offline method: start from an initial
bisection and iteratively swap vertices to reduce the cut, which "can obtain
a good result if there is good initialization".  We implement it as a
single-level recursive bisection: a random (or BFS-grown) initial split
refined to a local optimum by Fiduccia–Mattheyses passes — the linear-time
formulation of KL's swap idea, shared with the multilevel partitioner's
refinement stage.  Without the multilevel hierarchy it is noticeably weaker
than the METIS-like partitioner on large graphs, which is exactly the
historical relationship the paper sketches.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.graph.graph import Graph
from repro.partitioning.base import VertexPartitioner
from repro.partitioning.metis.initial import grow_bisection
from repro.partitioning.metis.refine import fm_refine
from repro.partitioning.metis.wgraph import WeightedGraph
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive

INIT_MODES = ("random", "grow")


class KLPartitioner(VertexPartitioner):
    """Single-level recursive bisection with FM/KL refinement."""

    name = "KL"

    def __init__(
        self,
        seed: Seed = None,
        init: str = "grow",
        max_passes: int = 8,
        tolerance: float = 0.05,
    ) -> None:
        if init not in INIT_MODES:
            raise ValueError(f"init must be one of {INIT_MODES}, got {init!r}")
        check_positive("max_passes", max_passes)
        self.seed = seed
        self.init = init
        self.max_passes = max_passes
        self.tolerance = tolerance

    def partition_vertices(self, graph: Graph, num_partitions: int) -> Dict[int, int]:
        """Recursively bisect down to ``num_partitions`` parts."""
        check_positive("num_partitions", num_partitions)
        rng = make_rng(self.seed)
        if graph.num_vertices == 0:
            return {}
        wgraph, ids = WeightedGraph.from_graph(graph)
        assignment: Dict[int, int] = {}
        self._recurse(wgraph, list(range(len(ids))), ids, num_partitions, 0, rng, assignment)
        return assignment

    def _bisect(self, wgraph: WeightedGraph, fraction: float, rng: random.Random) -> List[int]:
        target0 = round(fraction * wgraph.total_vertex_weight)
        if self.init == "grow":
            side = grow_bisection(wgraph, target0, rng, num_trials=2)
        else:
            side = [1] * wgraph.num_vertices
            order = list(range(wgraph.num_vertices))
            rng.shuffle(order)
            weight = 0
            for v in order:
                if weight >= target0:
                    break
                side[v] = 0
                weight += wgraph.vertex_weight[v]
        side, _ = fm_refine(
            wgraph, side, target0, rng, self.tolerance, self.max_passes
        )
        return side

    def _recurse(self, wgraph, local_ids, original_ids, p, offset, rng, assignment):
        if p == 1 or wgraph.num_vertices == 0:
            for v in range(wgraph.num_vertices):
                assignment[original_ids[local_ids[v]]] = offset
            return
        from repro.partitioning.metis.multilevel import _induced

        p_left = (p + 1) // 2
        side = self._bisect(wgraph, p_left / p, rng)
        left = [v for v in range(wgraph.num_vertices) if side[v] == 0]
        right = [v for v in range(wgraph.num_vertices) if side[v] == 1]
        left_graph, _ = _induced(wgraph, left)
        right_graph, _ = _induced(wgraph, right)
        self._recurse(
            left_graph, [local_ids[v] for v in left], original_ids, p_left, offset, rng, assignment
        )
        self._recurse(
            right_graph,
            [local_ids[v] for v in right],
            original_ids,
            p - p_left,
            offset + p_left,
            rng,
            assignment,
        )
