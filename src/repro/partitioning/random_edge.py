"""Random edge partitioning — the paper's lower-bound baseline.

Each edge goes to a uniformly random partition (PowerGraph's default hash
placement).  The paper treats its RF as "the worst partitioning quality";
``balanced=True`` additionally enforces the capacity ``C = ceil(m/p)`` by
redirecting overflow to the least-loaded partition.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.graph.graph import Edge, Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner, default_capacity
from repro.utils.rng import Seed, make_rng


class RandomPartitioner(StreamingEdgePartitioner):
    """Uniformly random edge placement."""

    name = "Random"

    def __init__(self, seed: Seed = None, balanced: bool = True) -> None:
        self.seed = seed
        self.balanced = balanced

    def assign_stream(
        self, edges: Iterable[Edge], num_partitions: int, graph: Optional[Graph] = None
    ) -> EdgePartition:
        """Assign each edge independently and uniformly at random."""
        rng = make_rng(self.seed)
        parts: List[List[Edge]] = [[] for _ in range(num_partitions)]
        if not self.balanced:
            for edge in edges:
                parts[rng.randrange(num_partitions)].append(edge)
            return EdgePartition(parts)

        edge_list = list(edges)
        capacity = default_capacity(len(edge_list), num_partitions)
        for edge in edge_list:
            k = rng.randrange(num_partitions)
            if len(parts[k]) >= capacity:
                k = min(range(num_partitions), key=lambda i: len(parts[i]))
            parts[k].append(edge)
        return EdgePartition(parts)
