"""Edge-partitioning framework, baselines, and quality metrics."""

from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import (
    EdgePartitioner,
    StreamingEdgePartitioner,
    VertexPartitioner,
    default_capacity,
)
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.fennel import FennelPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.kl import KLPartitioner
from repro.partitioning.ldg import LDGPartitioner
from repro.partitioning.metis import MetisLikePartitioner
from repro.partitioning.metrics import (
    PartitionReport,
    edge_balance,
    external_incidences,
    partition_modularities,
    replication_factor,
    rf_from_modularities,
    spanned_vertex_count,
    total_replicas,
)
from repro.partitioning.ne import NEPartitioner
from repro.partitioning.random_edge import RandomPartitioner
from repro.partitioning.rebalance import rebalance
from repro.partitioning.refinement import RefinementStats, refine_replication
from repro.partitioning.serialization import load_partition, save_partition
from repro.partitioning.registry import (
    EXTENDED_ALGORITHMS,
    PAPER_ALGORITHMS,
    available_partitioners,
    make_partitioner,
    register_partitioner,
)
from repro.partitioning.vertex_adapter import (
    VertexToEdgePartitioner,
    edges_from_vertex_assignment,
)
from repro.partitioning.vertex_metrics import (
    cross_partition_edges,
    edge_load_balance,
    ghost_count,
    vertex_balance,
    vertex_replication_factor,
)

__all__ = [
    "EdgePartition",
    "EdgePartitioner",
    "StreamingEdgePartitioner",
    "VertexPartitioner",
    "default_capacity",
    "DBHPartitioner",
    "FennelPartitioner",
    "GreedyPartitioner",
    "GridPartitioner",
    "HDRFPartitioner",
    "LDGPartitioner",
    "MetisLikePartitioner",
    "PartitionReport",
    "edge_balance",
    "external_incidences",
    "partition_modularities",
    "replication_factor",
    "rf_from_modularities",
    "spanned_vertex_count",
    "total_replicas",
    "NEPartitioner",
    "RandomPartitioner",
    "rebalance",
    "RefinementStats",
    "refine_replication",
    "load_partition",
    "save_partition",
    "EXTENDED_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "available_partitioners",
    "make_partitioner",
    "register_partitioner",
    "VertexToEdgePartitioner",
    "edges_from_vertex_assignment",
    "KLPartitioner",
    "cross_partition_edges",
    "edge_load_balance",
    "ghost_count",
    "vertex_balance",
    "vertex_replication_factor",
]
