"""Array-backed (CSR) form of an edge partition, and its binary sidecar.

The serving layer answers three families of queries — vertex routing
(master/replicas), adjacency fan-out, and edge ownership.  The dict-of-sets
layout :class:`~repro.service.store.PartitionStore` originally used rebuilds
a Python object per edge on every open and every hot reload.  This module
freezes the same information into flat numpy arrays once, at
``save_partition`` time, so the store can memory-map them back in O(1)
Python objects:

* ``vertex_ids``          — sorted global ids of every covered vertex;
* ``master`` / ``rep_*``  — per-vertex master partition and replica lists
  (CSR over the rows of ``vertex_ids``), identical to
  :class:`~repro.runtime.replication.ReplicationTable`'s tie-break
  (most incident edges, ties to the lowest partition id);
* per partition ``k``: ``ids`` (sorted local vertex ids), ``indptr`` /
  ``indices`` — the standard CSR adjacency with *local row indices* as
  values, each row sorted (so neighbour ids are ascending and edge
  membership is a binary search).

The sidecar is one file (``adjacency.csr``): an 8-byte magic+version, a
JSON directory of array names/dtypes/shapes/offsets, then the raw
little-endian array bytes, 64-byte aligned.  Arrays are written with
``tofile`` and read back either as ``np.memmap`` views (zero-copy; the
page cache does the work) or as eager ``np.fromfile`` loads.  The whole
file is checksummed into the bundle manifest so ``verify=True`` opens can
detect torn or tampered sidecars without parsing any text.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.parallel import parallel_map
from repro.partitioning.assignment import EdgePartition

PathLike = Union[str, Path]

#: File name of the sidecar inside a ``save_partition`` directory.
SIDECAR_NAME = "adjacency.csr"
#: Bump when the array layout below changes.
SIDECAR_VERSION = 1

_MAGIC = b"RCSR"
_ALIGN = 64
_DTYPE = np.int64  # every array in the sidecar


@dataclass
class PartitionCSR:
    """Flat-array form of one :class:`EdgePartition` plus replication."""

    num_partitions: int
    num_edges: int
    #: Sorted global ids of every vertex covered by at least one edge.
    vertex_ids: np.ndarray
    #: Master partition per row of :attr:`vertex_ids`.
    master: np.ndarray
    #: Replica-list CSR over the rows of :attr:`vertex_ids`.
    rep_indptr: np.ndarray
    rep_parts: np.ndarray
    #: Per-partition ``(ids, indptr, indices)`` CSR adjacency.  ``ids`` is
    #: sorted, ``indices`` holds *row indices into ids*, each row sorted.
    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )

    @property
    def num_vertices(self) -> int:
        """Number of covered vertices (rows of :attr:`vertex_ids`)."""
        return len(self.vertex_ids)


def _partition_adjacency(
    edges: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency of one partition from its ``(m, 2)`` edge array."""
    if len(edges) == 0:
        empty = np.empty(0, dtype=_DTYPE)
        return empty, np.zeros(1, dtype=_DTYPE), empty
    ids = np.unique(edges)  # sorted endpoints
    # Both directions of every undirected edge, as row indices into ids.
    src = np.searchsorted(ids, np.concatenate([edges[:, 0], edges[:, 1]]))
    dst = np.searchsorted(ids, np.concatenate([edges[:, 1], edges[:, 0]]))
    order = np.lexsort((dst, src))  # group by row, neighbours ascending
    indices = np.ascontiguousarray(dst[order], dtype=_DTYPE)
    counts = np.bincount(src, minlength=len(ids))
    indptr = np.zeros(len(ids) + 1, dtype=_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return ids.astype(_DTYPE, copy=False), indptr, indices


def build_partition_csr(
    partition: EdgePartition, workers: Optional[int] = None
) -> PartitionCSR:
    """Freeze ``partition`` into the flat-array form.

    The master/replica tables are derived here with the exact
    :class:`~repro.runtime.replication.ReplicationTable` rule so the CSR
    and dict serving backends answer bit-identically.

    ``workers`` fans the per-partition adjacency construction (the
    ``unique``/``lexsort``/``bincount`` passes, which release the GIL
    inside numpy) over a thread pool, one partition per worker.  The
    result is bit-identical for any worker count: each partition's CSR
    block depends only on its own edges, blocks merge by ascending
    ``k``, and the replica/master derivation below is sequential over
    that merged order.
    """
    p = partition.num_partitions

    def block(k: int) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        edges = np.asarray(partition.edges_of(k), dtype=_DTYPE).reshape(-1, 2)
        return edges, _partition_adjacency(edges)

    blocks = parallel_map(block, range(p), workers)
    edge_arrays: List[np.ndarray] = [edges for edges, _ in blocks]
    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
        adjacency for _, adjacency in blocks
    ]

    all_ids = [ids for ids, _, _ in parts if len(ids)]
    vertex_ids = (
        np.unique(np.concatenate(all_ids))
        if all_ids
        else np.empty(0, dtype=_DTYPE)
    )
    n = len(vertex_ids)

    # Replica lists: partitions are visited in ascending k, so stacking the
    # per-partition id lists and stable-sorting by row keeps each vertex's
    # partitions sorted — the ReplicationTable convention.
    rows = np.concatenate(
        [np.searchsorted(vertex_ids, ids) for ids, _, _ in parts]
        or [np.empty(0, dtype=_DTYPE)]
    )
    parts_of_rows = np.concatenate(
        [np.full(len(ids), k, dtype=_DTYPE) for k, (ids, _, _) in enumerate(parts)]
        or [np.empty(0, dtype=_DTYPE)]
    )
    order = np.argsort(rows, kind="stable")
    rep_parts = np.ascontiguousarray(parts_of_rows[order], dtype=_DTYPE)
    rep_counts = np.bincount(rows, minlength=n)
    rep_indptr = np.zeros(n + 1, dtype=_DTYPE)
    np.cumsum(rep_counts, out=rep_indptr[1:])

    # Master = partition with the most incident edges, ties to the lowest
    # id: visit k ascending and replace only on a strictly greater count.
    master = np.zeros(n, dtype=_DTYPE)
    best = np.zeros(n, dtype=_DTYPE)
    for k, (ids, indptr, _) in enumerate(parts):
        if len(ids) == 0:
            continue
        local_rows = np.searchsorted(vertex_ids, ids)
        local_deg = np.diff(indptr)
        better = local_deg > best[local_rows]
        target = local_rows[better]
        master[target] = k
        best[target] = local_deg[better]

    return PartitionCSR(
        num_partitions=p,
        num_edges=sum(len(e) for e in edge_arrays),
        vertex_ids=vertex_ids,
        master=master,
        rep_indptr=rep_indptr,
        rep_parts=rep_parts,
        parts=parts,
    )


def csr_to_partition(csr: PartitionCSR) -> EdgePartition:
    """Materialise an :class:`EdgePartition` back from the array form."""
    parts: List[List[Tuple[int, int]]] = []
    for ids, indptr, indices in csr.parts:
        edges: List[Tuple[int, int]] = []
        for row in range(len(ids)):
            u = int(ids[row])
            for idx in indices[indptr[row] : indptr[row + 1]]:
                v = int(ids[idx])
                if u < v:  # each undirected edge appears twice
                    edges.append((u, v))
        parts.append(edges)
    return EdgePartition(parts)


# -- binary sidecar ----------------------------------------------------------


def _named_arrays(csr: PartitionCSR) -> List[Tuple[str, np.ndarray]]:
    arrays = [
        ("vertex_ids", csr.vertex_ids),
        ("master", csr.master),
        ("rep_indptr", csr.rep_indptr),
        ("rep_parts", csr.rep_parts),
    ]
    for k, (ids, indptr, indices) in enumerate(csr.parts):
        arrays.append((f"p{k}_ids", ids))
        arrays.append((f"p{k}_indptr", indptr))
        arrays.append((f"p{k}_indices", indices))
    return arrays


@dataclass(frozen=True)
class SidecarLayout:
    """The byte layout of a sidecar, computed from array lengths alone.

    Shared between the in-memory :func:`write_sidecar` and the
    shard-by-shard writer in :mod:`repro.partitioning.oocore.bundle`, so
    both produce byte-identical files for the same arrays without the
    streaming path having to materialise them together.
    """

    entries: Dict[str, Dict[str, object]]
    header: bytes
    data_start: int
    data_size: int

    def array_offset(self, name: str) -> int:
        """Absolute file offset of array ``name``."""
        return self.data_start + int(self.entries[name]["offset"])

    @property
    def total_size(self) -> int:
        """Final (aligned) file size in bytes."""
        return self.data_start + self.data_size

    def write_preamble(self, fh) -> None:
        """Write magic, version, header length, and the JSON directory."""
        fh.write(_MAGIC)
        fh.write(SIDECAR_VERSION.to_bytes(4, "little"))
        fh.write(len(self.header).to_bytes(8, "little"))
        fh.write(self.header)


def sidecar_layout(
    num_partitions: int, num_edges: int, lengths: List[Tuple[str, int]]
) -> SidecarLayout:
    """Compute the sidecar layout for arrays of the given name/length.

    Offsets are relative to the (aligned) start of the data section, so
    the header length never feeds back into the offsets it records.
    """
    entries: Dict[str, Dict[str, object]] = {}
    offset = 0
    itemsize = np.dtype(_DTYPE).itemsize
    for name, length in lengths:
        entries[name] = {
            "dtype": str(np.dtype(_DTYPE)),
            "length": int(length),
            "offset": offset,
        }
        offset += int(length) * itemsize
        offset = -(-offset // _ALIGN) * _ALIGN
    directory: Dict[str, object] = {
        "version": SIDECAR_VERSION,
        "num_partitions": num_partitions,
        "num_edges": num_edges,
        "arrays": entries,
    }
    header = json.dumps(directory, sort_keys=True).encode("utf-8")
    data_start = len(_MAGIC) + 4 + 8 + len(header)
    data_start = -(-data_start // _ALIGN) * _ALIGN
    return SidecarLayout(
        entries=entries, header=header, data_start=data_start, data_size=offset
    )


def write_sidecar(csr: PartitionCSR, path: PathLike) -> Path:
    """Write ``csr`` as one aligned binary file; returns the path."""
    path = Path(path)
    arrays = _named_arrays(csr)
    layout = sidecar_layout(
        csr.num_partitions,
        csr.num_edges,
        [(name, array.size) for name, array in arrays],
    )
    with open(path, "wb") as fh:
        layout.write_preamble(fh)
        for name, array in arrays:
            fh.seek(layout.array_offset(name))
            array.astype(_DTYPE, copy=False).tofile(fh)
        # Pad to the final aligned size so memmaps of the last array are
        # always in-bounds even if it ended mid-file.
        fh.truncate(max(layout.total_size, fh.tell()))
    return path


def read_sidecar(path: PathLike, mmap: bool = True) -> PartitionCSR:
    """Read a sidecar back; ``mmap=True`` maps arrays without copying."""
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a CSR sidecar (magic {magic!r})")
        version = int.from_bytes(fh.read(4), "little")
        if version != SIDECAR_VERSION:
            raise ValueError(f"{path}: unsupported sidecar version {version}")
        header_len = int.from_bytes(fh.read(8), "little")
        directory = json.loads(fh.read(header_len).decode("utf-8"))
    data_start = len(_MAGIC) + 4 + 8 + header_len
    data_start = -(-data_start // _ALIGN) * _ALIGN

    def load(name: str) -> np.ndarray:
        entry = directory["arrays"][name]
        dtype = np.dtype(entry["dtype"])
        length = int(entry["length"])
        offset = data_start + int(entry["offset"])
        if mmap:
            if length == 0:
                return np.empty(0, dtype=dtype)
            return np.memmap(
                path, dtype=dtype, mode="r", offset=offset, shape=(length,)
            )
        with open(path, "rb") as fh:
            fh.seek(offset)
            return np.fromfile(fh, dtype=dtype, count=length)

    p = int(directory["num_partitions"])
    parts = [
        (load(f"p{k}_ids"), load(f"p{k}_indptr"), load(f"p{k}_indices"))
        for k in range(p)
    ]
    return PartitionCSR(
        num_partitions=p,
        num_edges=int(directory["num_edges"]),
        vertex_ids=load("vertex_ids"),
        master=load("master"),
        rep_indptr=load("rep_indptr"),
        rep_parts=load("rep_parts"),
        parts=parts,
    )


def sidecar_checksum(path: PathLike) -> str:
    """SHA-256 (16 hex chars) of the sidecar file, for the manifest."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()[:16]
