"""Incremental maintenance of an edge partitioning as the graph grows.

The paper's introduction motivates local partitioning with graphs that
"increase incrementally"; this module supplies the missing operational
piece: once a graph has been partitioned (by TLP or anything else), newly
arriving edges are placed **online** without re-partitioning.

Placement rule per new edge ``(u, v)``: among partitions with capacity
headroom, choose the one minimising the number of *new replicas* created
(0 if it already hosts both endpoints, 1 if one, 2 if neither), breaking
ties toward the least-loaded partition — the same cost model as
:mod:`repro.partitioning.refinement`, applied prospectively.  Capacity grows
with the graph: ``C = ceil(slack * m_current / p)``.

When quality drifts (the online rule is greedy), call :meth:`refresh` to run
the replication-refinement pass in place.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.refinement import refine_replication
from repro.utils.validation import check_positive


class DynamicPartitioner:
    """Maintains an edge partitioning under edge insertions."""

    def __init__(self, partition: EdgePartition, slack: float = 1.1) -> None:
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        self._p = partition.num_partitions
        check_positive("num_partitions", self._p)
        self.slack = slack
        self._edge_part: Dict[Edge, int] = dict(partition.edge_to_partition())
        self._sizes: List[int] = list(partition.partition_sizes())
        self._incident: Dict[int, Dict[int, int]] = {}
        for edge, k in self._edge_part.items():
            for w in edge:
                row = self._incident.setdefault(w, {})
                row[k] = row.get(k, 0) + 1
        self.insertions = 0

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        num_partitions: int,
        slack: float = 1.1,
        backend: str = "csr",
        **tlp_kwargs,
    ) -> "DynamicPartitioner":
        """Bootstrap by running TLP on ``graph``, then maintain online.

        The common lifecycle — partition a snapshot with TLP, keep placing
        new edges as they arrive — in one call.  ``backend`` and any extra
        keyword arguments go to :class:`~repro.core.tlp.TLPPartitioner`;
        ``slack`` is shared between the initial partitioning and the online
        capacity rule.
        """
        from repro.core.tlp import TLPPartitioner

        tlp = TLPPartitioner(slack=slack, backend=backend, **tlp_kwargs)
        return cls(tlp.partition(graph, num_partitions), slack=slack)

    # -- queries -------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """``p``."""
        return self._p

    @property
    def num_edges(self) -> int:
        """Edges currently partitioned."""
        return len(self._edge_part)

    def capacity(self) -> int:
        """The current per-partition cap ``ceil(slack * m / p)``."""
        return max(1, math.ceil(self.slack * max(1, self.num_edges) / self._p))

    def replicas_of(self, v: int) -> int:
        """How many partitions currently host ``v``."""
        return len(self._incident.get(v, ()))

    def snapshot(self) -> EdgePartition:
        """The current partitioning as an immutable :class:`EdgePartition`."""
        parts: List[List[Edge]] = [[] for _ in range(self._p)]
        for edge, k in self._edge_part.items():
            parts[k].append(edge)
        return EdgePartition(parts)

    # -- mutation --------------------------------------------------------------

    def add_edge(self, u: int, v: int) -> int:
        """Place a newly arrived edge; returns its partition id.

        Duplicate edges raise ``ValueError`` (the underlying graphs are
        simple).
        """
        edge = normalize_edge(u, v)
        if edge in self._edge_part:
            raise ValueError(f"edge {edge} is already partitioned")
        cap = max(self.capacity(), 1)
        row_u = self._incident.get(u, {})
        row_v = self._incident.get(v, {})
        candidates: Set[int] = set(row_u) | set(row_v)
        best_k = -1
        best_key: Tuple[int, int] = (3, 0)
        for k in candidates:
            if self._sizes[k] >= cap:
                continue
            cost = (k not in row_u) + (k not in row_v)
            key = (cost, self._sizes[k])
            if key < best_key:
                best_key = key
                best_k = k
        if best_k < 0 or best_key[0] >= 2:
            # No replica can be saved (or hosts are full): least-loaded wins,
            # preferring any candidate partition under the cap.
            under_cap = [k for k in range(self._p) if self._sizes[k] < cap]
            pool = under_cap or list(range(self._p))
            best_k = min(pool, key=lambda k: self._sizes[k])
        self._edge_part[edge] = best_k
        self._sizes[best_k] += 1
        for w in (u, v):
            row = self._incident.setdefault(w, {})
            row[best_k] = row.get(best_k, 0) + 1
        self.insertions += 1
        return best_k

    def add_edges(self, edges) -> List[int]:
        """Place many edges; returns their partition ids in order."""
        return [self.add_edge(u, v) for u, v in edges]

    def refresh(self, max_passes: int = 4) -> int:
        """Run replication refinement in place; returns replicas saved."""
        refined, stats = refine_replication(
            self.snapshot(), max_passes=max_passes, slack=self.slack
        )
        self._edge_part = dict(refined.edge_to_partition())
        self._sizes = list(refined.partition_sizes())
        self._incident = {}
        for edge, k in self._edge_part.items():
            for w in edge:
                row = self._incident.setdefault(w, {})
                row[k] = row.get(k, 0) + 1
        return stats.replicas_saved
