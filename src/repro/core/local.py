"""The local graph partitioning framework (Section III of the paper).

A :class:`LocalEdgePartitioner` grows partitions one round at a time over a
shrinking residual graph, holding in memory only the current partition and
its frontier — the paper's defining "local" property.  The vertex-selection
heuristic of each step is delegated to a
:class:`~repro.core.stages.StagePolicy`, which is what distinguishes TLP,
TLP_R and the one-stage ablations; everything else (seeding, allocation,
capacity, reseeding, telemetry) is shared here.

Growth rounds are sequential by definition — each round consumes the
residual the previous round left — so parallelism lives one level up:
:func:`repro.core.parallel.partition_many` runs *independent*
``partition()`` jobs (seed sweeps, benchmark repetitions, per-dataset
builds) on a thread pool, one job per worker, each bit-identical to its
own sequential run.  Use one :class:`LocalEdgePartitioner` instance per
job; ``last_telemetry`` is recorded on the instance.
"""

from __future__ import annotations

from repro.core.stages import STAGE_ONE, StagePolicy
from repro.core.state import SIMILARITY_SCOPES, CSRPartitionState, PartitionState
from repro.core.telemetry import StageTelemetry
from repro.graph.graph import Graph
from repro.graph.residual import ResidualGraph
from repro.graph.residual_csr import CSRResidual
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import EdgePartitioner, default_capacity
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive

#: Recognised values of ``LocalEdgePartitioner(backend=...)``.
#:
#: ``"reference"``  — the original dict-of-sets implementation.
#: ``"csr"``        — array-native path; uses the compiled C kernel when a
#:                    toolchain is available, else the vectorised numpy path.
#: ``"csr-python"`` — array-native path, numpy only (no compilation attempt).
#: ``"csr-native"`` — array-native path, compiled kernel required (raises if
#:                    it cannot be built).
#:
#: All backends are bit-for-bit equivalent under a fixed seed.
BACKENDS = ("reference", "csr", "csr-python", "csr-native")


class LocalEdgePartitioner(EdgePartitioner):
    """Round-based local edge partitioning with a pluggable stage policy.

    Parameters
    ----------
    stage_policy:
        Decides Stage I vs Stage II before every selection.
    seed:
        Seed for the random partition seeds (and nothing else — selection is
        deterministic given the seeds).
    slack:
        Capacity multiplier; ``C = ceil(slack * m / p)``.
    strict_capacity:
        ``True`` (default) truncates the final vertex's edge batch so that
        ``|E(P_k)| <= C`` holds exactly (Definition 3).  ``False`` reproduces
        the paper's Algorithm 1 literally: the last selection may overshoot.
    reseed_on_break:
        ``True`` (default) restarts growth from a fresh seed when the
        frontier empties before the partition is full, so exactly ``p``
        partitions always result.  ``False`` reproduces Algorithm 1's
        literal ``break`` (the partition stays underfull).
    similarity_scope:
        ``"residual"`` (default) computes Stage-I neighbourhoods in the
        residual graph the algorithm actually observes; ``"original"`` uses
        the full input graph.
    seed_strategy:
        How the random seed vertex of each round is picked (Algorithm 1,
        line 1).  ``"random"`` is the paper's choice; ``"max-degree"`` /
        ``"min-degree"`` sample a small pool of candidates and keep the
        highest/lowest residual degree — the seed-choice ablation.
    backend:
        Hot-loop implementation; see :data:`BACKENDS`.  The default
        ``"csr"`` runs the array-native path (compiled kernel when
        available) and produces output bit-for-bit identical to
        ``"reference"`` under the same seed.
    """

    name = "Local"

    SEED_STRATEGIES = ("random", "max-degree", "min-degree")
    _SEED_POOL_SIZE = 16

    def __init__(
        self,
        stage_policy: StagePolicy,
        seed: Seed = None,
        slack: float = 1.0,
        strict_capacity: bool = True,
        reseed_on_break: bool = True,
        similarity_scope: str = "residual",
        seed_strategy: str = "random",
        backend: str = "csr",
    ) -> None:
        if similarity_scope not in SIMILARITY_SCOPES:
            raise ValueError(
                f"similarity_scope must be one of {SIMILARITY_SCOPES}, "
                f"got {similarity_scope!r}"
            )
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        if seed_strategy not in self.SEED_STRATEGIES:
            raise ValueError(
                f"seed_strategy must be one of {self.SEED_STRATEGIES}, "
                f"got {seed_strategy!r}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.stage_policy = stage_policy
        self.seed = seed
        self.slack = slack
        self.strict_capacity = strict_capacity
        self.reseed_on_break = reseed_on_break
        self.similarity_scope = similarity_scope
        self.seed_strategy = seed_strategy
        self.backend = backend
        #: Telemetry of the most recent :meth:`partition` call.
        self.last_telemetry: StageTelemetry = StageTelemetry()

    # -- public API ----------------------------------------------------------

    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Partition ``graph`` into ``num_partitions`` edge sets."""
        check_positive("num_partitions", num_partitions)
        rng = make_rng(self.seed)
        telemetry = StageTelemetry()
        if self.backend == "reference":
            residual = ResidualGraph(graph)
        else:
            residual = CSRResidual(graph)
        runner = self._make_native_runner(residual, graph)
        capacity = default_capacity(graph.num_edges, num_partitions, self.slack)
        parts = []
        for k in range(num_partitions):
            is_last = k == num_partitions - 1
            cap = residual.num_edges if is_last else capacity
            if runner is not None:
                parts.append(
                    runner.grow_round(
                        cap,
                        k,
                        rng,
                        telemetry,
                        self._pick_seed,
                        self.reseed_on_break,
                    )
                )
            else:
                parts.append(
                    self._grow_round(graph, residual, cap, k, rng, telemetry)
                )
        self.last_telemetry = telemetry
        partition = EdgePartition(parts)
        return partition

    # -- backend dispatch ------------------------------------------------------

    def _make_native_runner(self, residual, graph: Graph):
        """A compiled-kernel round runner, or ``None`` for the numpy path.

        ``"csr"`` silently falls back to numpy when no kernel is available
        (no C toolchain, or a stage policy the kernel does not encode);
        ``"csr-native"`` insists and raises instead.
        """
        if self.backend in ("reference", "csr-python"):
            return None
        from repro.core.native_grow import NativeRunner, native_kernel

        require = self.backend == "csr-native"
        kernel = native_kernel(require=require)
        if kernel is None:
            return None
        runner = NativeRunner.try_create(
            kernel,
            residual,
            graph,
            self.stage_policy,
            self.similarity_scope,
            self.strict_capacity,
        )
        if runner is None and require:
            raise ValueError(
                "backend='csr-native' does not support stage policy "
                f"{self.stage_policy.describe()!r}"
            )
        return runner

    # -- one round -----------------------------------------------------------

    def _grow_round(
        self,
        graph: Graph,
        residual,
        capacity: int,
        k: int,
        rng,
        telemetry: StageTelemetry,
    ) -> list:
        if capacity <= 0 or residual.is_exhausted():
            return []
        if isinstance(residual, CSRResidual):
            state = CSRPartitionState(residual, self.similarity_scope)
        else:
            state = PartitionState(residual, graph, self.similarity_scope)
        state.seed(self._pick_seed(residual, rng))
        while state.internal < capacity:
            if state.frontier_empty():
                # Algorithm 1, lines 11-13: the residual component is used up.
                if not self.reseed_on_break or residual.is_exhausted():
                    break
                telemetry.record_reseed()
                state.seed(self._pick_seed(residual, rng))
                continue
            stage = self.stage_policy.stage(state, capacity)
            v = state.select_stage1() if stage == STAGE_ONE else state.select_stage2()
            if v is None:  # pragma: no cover - frontier_empty() guards this
                break
            max_edges = capacity - state.internal if self.strict_capacity else None
            allocated, truncated = state.add_vertex(v, max_edges)
            telemetry.record(k, stage, v, graph.degree(v), allocated)
            telemetry.record_local_state(state.internal + len(state.frontier))
            if truncated:
                break
        return state.edges

    def _pick_seed(self, residual, rng) -> int:
        """Apply the configured seed strategy to the residual graph."""
        if self.seed_strategy == "random":
            return residual.sample_seed(rng)
        candidates = {
            residual.sample_seed(rng) for _ in range(self._SEED_POOL_SIZE)
        }
        if self.seed_strategy == "max-degree":
            return max(candidates, key=lambda v: (residual.degree(v), -v))
        return min(candidates, key=lambda v: (residual.degree(v), v))
