"""Round driver for the compiled TLP kernel.

:class:`NativeRunner` owns the per-round scratch buffers (frontier
arrays, Stage-I snapshot buffer, edge/telemetry outputs), hands them to
``tlp_grow_episode`` via a :class:`~repro._native.GrowState` struct, and
converts the raw index-space outputs back into the id-space edges and
:class:`~repro.core.telemetry.StageTelemetry` records the pure-Python
backends produce — bit-for-bit.

Only the stage policies the kernel encodes (modularity, edge-count
ratio, fixed) are supported; :meth:`NativeRunner.try_create` returns
``None`` for anything else and the caller falls back to the numpy path.

A runner is **single-threaded by construction** — it owns one
``GrowState`` and one set of scratch buffers — but *different* runners
are independent, and the ``ctypes`` episode call drops the GIL, so
independent ``partition()`` jobs grow concurrently on real cores via
:func:`repro.core.parallel.partition_many` (one job per worker thread).
"""

from __future__ import annotations

import ctypes
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro._native import (
    REASON_EMPTY,
    GrowState,
    load_kernel,
)
from repro.core.stages import (
    STAGE_ONE,
    EdgeCountStagePolicy,
    FixedStagePolicy,
    ModularityStagePolicy,
    StagePolicy,
)
from repro.core.telemetry import StageTelemetry
from repro.graph.graph import Edge, Graph
from repro.graph.residual_csr import CSRResidual

_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_F64P = ctypes.POINTER(ctypes.c_double)


def native_kernel(require: bool = False):
    """The compiled kernel library, or ``None`` (see :func:`load_kernel`)."""
    return load_kernel(require=require)


def _encode_policy(policy: StagePolicy) -> Optional[Tuple[int, float]]:
    """Map a stage policy onto the kernel's enum, or ``None`` if unknown.

    Exact type matches only: a subclass may override ``stage()`` with
    arbitrary logic the kernel cannot reproduce.
    """
    kind = type(policy)
    if kind is ModularityStagePolicy:
        return 0, 0.0
    if kind is EdgeCountStagePolicy:
        return 1, float(policy.ratio)
    if kind is FixedStagePolicy:
        return (2, 0.0) if policy.fixed_stage == STAGE_ONE else (3, 0.0)
    return None


class NativeRunner:
    """Per-``partition()``-call workspace and round loop for the kernel."""

    def __init__(
        self,
        kernel,
        residual: CSRResidual,
        policy_code: int,
        ratio: float,
        similarity_scope: str,
        strict_capacity: bool,
    ) -> None:
        self._kernel = kernel
        self._residual = residual
        n = residual.num_vertices
        num_slots = len(residual.indices)
        num_edges = num_slots // 2
        if n:
            max_deg = int(np.max(np.diff(residual.indptr)))
        else:
            max_deg = 0
        self._static_deg = np.diff(residual.indptr)

        # Scratch buffers, reused across rounds (reset per round).
        self._f_ids = np.empty(n, dtype=np.int64)
        self._f_c = np.empty(n, dtype=np.float64)
        self._f_r = np.empty(n, dtype=np.float64)
        self._f_mu1 = np.empty(n, dtype=np.float64)
        self._f_score = np.empty(n, dtype=np.float64)
        self._f_pos = np.empty(n, dtype=np.int64)
        self._member = np.empty(n, dtype=np.uint8)
        pend_buf_cap = max(4 * max_deg + 64, 65536)
        self._pend_v = np.empty(n + 1, dtype=np.int64)
        self._pend_s = np.empty(n + 1, dtype=np.int64)
        self._pend_e = np.empty(n + 1, dtype=np.int64)
        self._pend_snap = np.empty(pend_buf_cap, dtype=np.int64)
        self._edge_u = np.empty(num_edges + 1, dtype=np.int64)
        self._edge_v = np.empty(num_edges + 1, dtype=np.int64)
        self._sel_idx = np.empty(n + 1, dtype=np.int64)
        self._sel_stage = np.empty(n + 1, dtype=np.int64)
        self._sel_alloc = np.empty(n + 1, dtype=np.int64)
        self._sel_ldeg = np.empty(n + 1, dtype=np.int64)
        self._sel_state = np.empty(n + 1, dtype=np.int64)

        st = GrowState()
        st.n = n
        st.indptr = residual.indptr.ctypes.data_as(_I64P)
        st.indices = residual.indices.ctypes.data_as(_I64P)
        st.twin = residual.twin.ctypes.data_as(_I64P)
        st.alive = residual.alive.ctypes.data_as(_U8P)
        st.live_deg = residual.live_deg.ctypes.data_as(_I64P)
        st.f_ids = self._f_ids.ctypes.data_as(_I64P)
        st.f_c = self._f_c.ctypes.data_as(_F64P)
        st.f_r = self._f_r.ctypes.data_as(_F64P)
        st.f_mu1 = self._f_mu1.ctypes.data_as(_F64P)
        st.f_score = self._f_score.ctypes.data_as(_F64P)
        st.f_pos = self._f_pos.ctypes.data_as(_I64P)
        st.member = self._member.ctypes.data_as(_U8P)
        st.pend_v = self._pend_v.ctypes.data_as(_I64P)
        st.pend_s = self._pend_s.ctypes.data_as(_I64P)
        st.pend_e = self._pend_e.ctypes.data_as(_I64P)
        st.pend_cap = n + 1
        st.pend_snap = self._pend_snap.ctypes.data_as(_I64P)
        st.pend_buf_cap = pend_buf_cap
        st.edge_u = self._edge_u.ctypes.data_as(_I64P)
        st.edge_v = self._edge_v.ctypes.data_as(_I64P)
        st.sel_idx = self._sel_idx.ctypes.data_as(_I64P)
        st.sel_stage = self._sel_stage.ctypes.data_as(_I64P)
        st.sel_alloc = self._sel_alloc.ctypes.data_as(_I64P)
        st.sel_ldeg = self._sel_ldeg.ctypes.data_as(_I64P)
        st.sel_state = self._sel_state.ctypes.data_as(_I64P)
        st.strict = 1 if strict_capacity else 0
        st.policy = policy_code
        st.ratio = ratio
        st.scope_original = 1 if similarity_scope == "original" else 0
        self._st = st

    @classmethod
    def try_create(
        cls,
        kernel,
        residual: CSRResidual,
        graph: Graph,
        stage_policy: StagePolicy,
        similarity_scope: str,
        strict_capacity: bool,
    ) -> Optional["NativeRunner"]:
        """A runner for this configuration, or ``None`` if unsupported."""
        encoded = _encode_policy(stage_policy)
        if encoded is None:
            return None
        code, ratio = encoded
        return cls(
            kernel, residual, code, ratio, similarity_scope, strict_capacity
        )

    # -- one round -----------------------------------------------------------

    def grow_round(
        self,
        capacity: int,
        k: int,
        rng,
        telemetry: StageTelemetry,
        pick_seed: Callable,
        reseed_on_break: bool,
    ) -> List[Edge]:
        """Grow partition ``k``; mirrors ``LocalEdgePartitioner._grow_round``."""
        res = self._residual
        if capacity <= 0 or res.is_exhausted():
            return []
        st = self._st
        self._member[:] = 0
        self._f_pos[:] = -1
        st.f_size = 0
        st.pend_count = 0
        st.pend_len = 0
        st.edge_count = 0
        st.sel_count = 0
        st.internal_ = 0
        st.external_ = 0
        st.capacity = capacity
        st.num_live = res.num_edges
        episode = self._kernel.tlp_grow_episode
        ref = ctypes.byref(st)
        while True:
            seed_idx = res.index_of[pick_seed(res, rng)]
            reason = int(episode(ref, seed_idx))
            res._num_live = int(st.num_live)
            if (
                reason == REASON_EMPTY
                and st.internal_ < capacity
                and reseed_on_break
                and not res.is_exhausted()
            ):
                telemetry.record_reseed()
                continue
            break

        cnt = int(st.sel_count)
        if cnt:
            vidx = self._sel_idx[:cnt]
            telemetry.record_batch(
                k,
                self._sel_stage[:cnt].tolist(),
                res.ids[vidx].tolist(),
                self._static_deg[vidx].tolist(),
                self._sel_alloc[:cnt].tolist(),
            )
            telemetry.record_local_state(int(self._sel_state[:cnt].max()))
        ec = int(st.edge_count)
        eu = res.ids[self._edge_u[:ec]]
        ev = res.ids[self._edge_v[:ec]]
        return list(zip(eu.tolist(), ev.tolist()))
