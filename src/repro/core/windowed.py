"""Windowed streaming-local partitioning — the paper's §V future work.

TLP needs the residual graph in memory.  The paper's conclusion proposes a
*sliding window* so graph data can be sorted and partitioned as a stream.
:class:`WindowedLocalPartitioner` realises that design:

* edges arrive as a stream and fill a bounded **buffer residual** of at most
  ``window_size`` edges;
* each partition is grown locally *inside the buffer* with the usual
  two-stage heuristics;
* the buffer is refilled from the stream between rounds (and whenever the
  buffer runs dry during the final sweep), so peak state is
  ``window_size + frontier`` edges regardless of graph size.

With ``window_size >= |E|`` the behaviour converges to plain TLP; smaller
windows trade RF for memory.  The edge capacity per partition requires the
total edge count (for ``C = ceil(m/p)``): pass ``total_edges``, or supply a
graph, or let the partitioner count by materialising the stream (documented
fallback for convenience, not for production streams).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional

from repro.core.stages import STAGE_ONE, ModularityStagePolicy, StagePolicy
from repro.core.state import CSRPartitionState, PartitionState
from repro.core.telemetry import StageTelemetry
from repro.graph.graph import Edge, Graph
from repro.graph.residual import ResidualGraph
from repro.graph.residual_csr import CSRResidual
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.base import StreamingEdgePartitioner
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive


class WindowedLocalPartitioner(StreamingEdgePartitioner):
    """Local two-stage partitioning over a bounded stream window."""

    name = "TLP-W"

    def __init__(
        self,
        window_size: int,
        stage_policy: Optional[StagePolicy] = None,
        seed: Seed = None,
        slack: float = 1.0,
        similarity_scope: str = "residual",
        backend: str = "csr",
    ) -> None:
        check_positive("window_size", window_size)
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        # Import here to avoid a circular import at module load.
        from repro.core.local import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.window_size = window_size
        self.stage_policy = stage_policy or ModularityStagePolicy()
        self.seed = seed
        self.slack = slack
        self.similarity_scope = similarity_scope
        #: ``"reference"`` grows inside the dict buffer directly; every
        #: ``"csr*"`` value grows inside an array mirror of the buffer
        #: (rebuilt per refill) via the vectorised numpy path.  The windowed
        #: partitioner never uses the compiled kernel: episodes are short
        #: and the buffer mutates between them, so the numpy state is the
        #: right trade-off.
        self.backend = backend
        self.last_telemetry = StageTelemetry()
        self._csr_mirror: Optional[CSRResidual] = None

    # -- public API ----------------------------------------------------------

    def assign_stream(
        self,
        edges: Iterable[Edge],
        num_partitions: int,
        graph: Optional[Graph] = None,
        total_edges: Optional[int] = None,
    ) -> EdgePartition:
        """Partition a stream of edges using only the window as state."""
        check_positive("num_partitions", num_partitions)
        if total_edges is None:
            if graph is not None:
                total_edges = graph.num_edges
            else:
                edges = list(edges)  # convenience fallback: count by buffering
                total_edges = len(edges)
        capacity = max(1, math.ceil(self.slack * total_edges / num_partitions))
        if self.window_size < capacity:
            raise ValueError(
                f"window_size={self.window_size} is smaller than the partition "
                f"capacity C={capacity}; a partition must fit in the window"
            )
        rng = make_rng(self.seed)
        telemetry = StageTelemetry()
        source: Iterator[Edge] = iter(edges)
        buffer = ResidualGraph.empty()
        stream_exhausted = self._refill(buffer, source)
        assigned = 0
        parts: List[List[Edge]] = []
        for k in range(num_partitions):
            is_last = k == num_partitions - 1
            cap = total_edges - assigned if is_last else capacity
            part_edges: List[Edge] = []
            # Keep growing episodes (fresh seeds) until the partition is full
            # or no edge remains anywhere; the final round drains everything.
            while len(part_edges) < cap:
                if buffer.is_exhausted():
                    if stream_exhausted:
                        break
                    stream_exhausted = self._refill(buffer, source)
                    continue
                if part_edges:
                    telemetry.record_reseed()  # fresh episode within the round
                grown = self._grow(
                    buffer, cap - len(part_edges), k, rng, telemetry, graph
                )
                part_edges.extend(grown)
            parts.append(part_edges)
            assigned += len(part_edges)
            if not stream_exhausted:
                stream_exhausted = self._refill(buffer, source)
        self.last_telemetry = telemetry
        return EdgePartition(parts)

    def partition(self, graph: Graph, num_partitions: int) -> EdgePartition:
        """Stream the graph's edges in storage order through the window."""
        return self.assign_stream(
            graph.edges(), num_partitions, graph=graph, total_edges=graph.num_edges
        )

    # -- internals -----------------------------------------------------------

    def _refill(self, buffer: ResidualGraph, source: Iterator[Edge]) -> bool:
        """Top the buffer up to ``window_size`` edges; True when stream ended."""
        # New edges invalidate the CSR mirror; it is rebuilt lazily on the
        # next growth episode.
        self._csr_mirror = None
        while buffer.num_edges < self.window_size:
            try:
                u, v = next(source)
            except StopIteration:
                return True
            buffer.add_edge(u, v)
        return False

    def _grow(
        self,
        buffer: ResidualGraph,
        cap: int,
        k: int,
        rng,
        telemetry: StageTelemetry,
        graph: Optional[Graph],
    ) -> List[Edge]:
        """One local growth episode inside the (frozen) buffer."""
        if self.backend == "reference":
            mirrored = False
            state = PartitionState(buffer, graph or Graph.empty(), "residual")
        else:
            mirrored = True
            if self._csr_mirror is None:
                self._csr_mirror = CSRResidual.from_adjacency(
                    buffer.vertices(), buffer.neighbors, buffer.num_edges
                )
            state = CSRPartitionState(self._csr_mirror, "residual")
        # The dict buffer stays authoritative for seed sampling so the RNG
        # consumption — and hence the grown partitions — are identical
        # across backends.
        state.seed(buffer.sample_seed(rng))
        synced = 0
        while state.internal < cap:
            if state.frontier_empty():
                break  # caller refills/reseeds with a fresh episode
            stage = self.stage_policy.stage(state, cap)
            v = state.select_stage1() if stage == STAGE_ONE else state.select_stage2()
            allocated, truncated = state.add_vertex(v, cap - state.internal)
            if mirrored:
                # Replay the allocation on the dict buffer so refills, seed
                # sampling and degree telemetry see the same residual.
                for a, b in state.edges[synced:]:
                    buffer.remove_edge(a, b)
                synced = len(state.edges)
            degree = graph.degree(v) if graph is not None and v in graph else buffer.degree(v)
            telemetry.record(k, stage, v, degree, allocated)
            telemetry.record_local_state(state.internal + len(state.frontier))
            if truncated:
                break
        return state.edges
