"""Per-selection telemetry for local partitioning runs.

Reproduces the raw material of the paper's Table VI ("the average degree of
all vertices in two stages"): every selected vertex is recorded with the
partition it joined, the stage that selected it, its degree in the original
graph, and how many edges its selection allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.stages import STAGE_ONE, STAGE_TWO


@dataclass
class SelectionRecord:
    """One vertex selection during a round."""

    partition: int
    stage: int
    vertex: int
    degree: int
    allocated: int


@dataclass
class StageTelemetry:
    """Accumulates selection records across a whole partitioning run."""

    records: List[SelectionRecord] = field(default_factory=list)
    reseeds: int = 0
    #: Peak of (partition edges + frontier size) over the whole run — the
    #: working-set measure behind the paper's O(L d) space claim (§III-E).
    peak_local_state: int = 0

    def record(
        self, partition: int, stage: int, vertex: int, degree: int, allocated: int
    ) -> None:
        """Log one selection."""
        self.records.append(SelectionRecord(partition, stage, vertex, degree, allocated))

    def record_batch(
        self,
        partition: int,
        stages: List[int],
        vertices: List[int],
        degrees: List[int],
        allocated: List[int],
    ) -> None:
        """Log a whole round of selections at once (the kernel backend)."""
        self.records.extend(
            SelectionRecord(partition, s, v, d, a)
            for s, v, d, a in zip(stages, vertices, degrees, allocated)
        )

    def record_reseed(self) -> None:
        """Log a mid-round reseed (disconnected residual)."""
        self.reseeds += 1

    def record_local_state(self, held: int) -> None:
        """Track the peak working-set size (edges held + frontier entries)."""
        if held > self.peak_local_state:
            self.peak_local_state = held

    def degrees_in_stage(self, stage: int) -> List[int]:
        """Degrees (in G) of every vertex selected in ``stage``."""
        return [rec.degree for rec in self.records if rec.stage == stage]

    def mean_degree(self, stage: int) -> float:
        """Average degree of the vertices selected in ``stage`` (Table VI)."""
        degrees = self.degrees_in_stage(stage)
        return sum(degrees) / len(degrees) if degrees else 0.0

    def selection_count(self, stage: int) -> int:
        """How many selections the stage made."""
        return sum(1 for rec in self.records if rec.stage == stage)

    def stage_fraction(self, stage: int) -> float:
        """Fraction of all selections made in ``stage``."""
        if not self.records:
            return 0.0
        return self.selection_count(stage) / len(self.records)

    def summary(self) -> Dict[str, float]:
        """The Table-VI style summary."""
        return {
            "stage1_mean_degree": self.mean_degree(STAGE_ONE),
            "stage2_mean_degree": self.mean_degree(STAGE_TWO),
            "stage1_selections": float(self.selection_count(STAGE_ONE)),
            "stage2_selections": float(self.selection_count(STAGE_TWO)),
            "reseeds": float(self.reseeds),
        }
