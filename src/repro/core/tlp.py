"""TLP — the paper's Two-stage Local Partitioning algorithm.

:class:`TLPPartitioner` is :class:`~repro.core.local.LocalEdgePartitioner`
with the modularity stage rule of Table II: Stage I (Eq. 7-8, pick the close
high-degree vertex) while ``M(P_k) <= 1``, Stage II (Eq. 9-11, pick the
vertex maximising the modularity gain) once the partition is compact.
"""

from __future__ import annotations

from repro.core.local import LocalEdgePartitioner
from repro.core.stages import FixedStagePolicy, ModularityStagePolicy
from repro.utils.rng import Seed


class TLPPartitioner(LocalEdgePartitioner):
    """Two-stage local partitioning (the paper's proposed algorithm)."""

    name = "TLP"

    def __init__(
        self,
        seed: Seed = None,
        slack: float = 1.0,
        strict_capacity: bool = True,
        reseed_on_break: bool = True,
        similarity_scope: str = "residual",
        seed_strategy: str = "random",
        backend: str = "csr",
    ) -> None:
        super().__init__(
            ModularityStagePolicy(),
            seed=seed,
            slack=slack,
            strict_capacity=strict_capacity,
            reseed_on_break=reseed_on_break,
            similarity_scope=similarity_scope,
            seed_strategy=seed_strategy,
            backend=backend,
        )


class StageOneOnlyPartitioner(LocalEdgePartitioner):
    """Pure Stage-I local partitioning (equivalent to TLP_R with R = 1)."""

    name = "TLP-S1"

    def __init__(self, seed: Seed = None, **kwargs) -> None:
        super().__init__(FixedStagePolicy(1), seed=seed, **kwargs)


class StageTwoOnlyPartitioner(LocalEdgePartitioner):
    """Pure Stage-II local partitioning (equivalent to TLP_R with R = 0)."""

    name = "TLP-S2"

    def __init__(self, seed: Seed = None, **kwargs) -> None:
        super().__init__(FixedStagePolicy(2), seed=seed, **kwargs)
