"""TLP_R — the edge-count stage-division ablation (Section IV-C).

Identical machinery to TLP, but the stage boundary is the *fraction of the
capacity already filled* rather than the modularity test:

    Stage I  while |E(P_k)| <  R * C
    Stage II while |E(P_k)| >= R * C

``R = 0`` degenerates to pure Stage II and ``R = 1`` to pure Stage I — the
one-stage heuristics the paper shows are the *worst* settings, which is the
evidence that two stages help (Figs. 9-11).
"""

from __future__ import annotations

from repro.core.local import LocalEdgePartitioner
from repro.core.stages import EdgeCountStagePolicy
from repro.utils.rng import Seed


class TLPRPartitioner(LocalEdgePartitioner):
    """TLP with the edge-count two-stage division at ratio ``R``."""

    name = "TLP_R"

    def __init__(
        self,
        ratio: float,
        seed: Seed = None,
        slack: float = 1.0,
        strict_capacity: bool = True,
        reseed_on_break: bool = True,
        similarity_scope: str = "residual",
        seed_strategy: str = "random",
        backend: str = "csr",
    ) -> None:
        super().__init__(
            EdgeCountStagePolicy(ratio),
            seed=seed,
            slack=slack,
            strict_capacity=strict_capacity,
            reseed_on_break=reseed_on_break,
            similarity_scope=similarity_scope,
            seed_strategy=seed_strategy,
            backend=backend,
        )
        self.ratio = ratio
        self.name = f"TLP_R(R={ratio:g})"
