"""Stage-division policies.

TLP's defining idea is that each partition's growth has two phases with
different optimal heuristics; *when* to switch is the policy:

* :class:`ModularityStagePolicy` — the paper's TLP rule (Table II): Stage I
  while ``M(P_k) <= 1``, Stage II afterwards.  Modularity can dip back below
  1, in which case the policy returns to Stage I, exactly as Algorithm 1's
  per-iteration test implies.
* :class:`EdgeCountStagePolicy` — the TLP_R ablation (Table V): Stage I while
  ``|E(P_k)| < R * C``.  ``R = 0`` is pure Stage II, ``R = 1`` pure Stage I.
* :class:`FixedStagePolicy` — force a single stage (one-stage ablations).
"""

from __future__ import annotations

import abc

from repro.core.state import PartitionState
from repro.utils.validation import check_probability

STAGE_ONE = 1
STAGE_TWO = 2


class StagePolicy(abc.ABC):
    """Decides which stage the current step of a round belongs to.

    Policies are read-only after construction (``stage()`` must not
    mutate the policy), which makes one instance safe to share between
    the growth jobs :func:`repro.core.parallel.partition_many` runs
    concurrently — the native kernel encodes the policy into its own
    per-runner state anyway.  A custom subclass that accumulates state
    across calls must get its own instance per job.
    """

    @abc.abstractmethod
    def stage(self, state: PartitionState, capacity: int) -> int:
        """Return ``STAGE_ONE`` or ``STAGE_TWO`` for the upcoming selection."""

    def describe(self) -> str:
        """Human-readable policy description for reports."""
        return type(self).__name__


class ModularityStagePolicy(StagePolicy):
    """Stage I iff ``M(P_k) <= 1``, i.e. ``|E(P_k)| <= |E_out(P_k)|``."""

    def stage(self, state: PartitionState, capacity: int) -> int:
        return STAGE_ONE if state.internal <= state.external else STAGE_TWO

    def describe(self) -> str:
        return "modularity threshold M<=1 (TLP)"


class EdgeCountStagePolicy(StagePolicy):
    """Stage I iff ``|E(P_k)| < R * C`` (the TLP_R ablation)."""

    def __init__(self, ratio: float) -> None:
        check_probability("ratio", ratio)
        self.ratio = ratio

    def stage(self, state: PartitionState, capacity: int) -> int:
        return STAGE_ONE if state.internal < self.ratio * capacity else STAGE_TWO

    def describe(self) -> str:
        return f"edge-count threshold R={self.ratio:g} (TLP_R)"


class FixedStagePolicy(StagePolicy):
    """Always the same stage — the pure one-stage heuristics."""

    def __init__(self, fixed_stage: int) -> None:
        if fixed_stage not in (STAGE_ONE, STAGE_TWO):
            raise ValueError(f"fixed_stage must be 1 or 2, got {fixed_stage}")
        self.fixed_stage = fixed_stage

    def stage(self, state: PartitionState, capacity: int) -> int:
        return self.fixed_stage

    def describe(self) -> str:
        return f"fixed stage {self.fixed_stage}"
