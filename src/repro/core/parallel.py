"""Deterministic thread-pool helpers for per-partition work.

Three layers of the repo fan work out over the partitions of a bundle —
growth (independent ``partition()`` jobs), ``save_partition`` (one edge
file + CSR block per partition), and the compaction fold (one filtered
edge list per partition).  All of them share the same shape: N pure,
index-addressed jobs whose results merge by ascending index.  This
module is that shape, once.

Determinism contract: :func:`parallel_map` returns *exactly*
``[fn(item) for item in items]`` whenever each ``fn(item)`` is pure in
its item — results are collected positionally, never in completion
order, so the merged output is bit-identical to the sequential path no
matter how the scheduler interleaves the workers.  The parity tests pin
this with sha256 digests over saved bundles.

Threads, not processes: the heavy kernels already drop the GIL —
``ctypes`` foreign calls (the compiled TLP grow episode) release it for
the duration of the call, and numpy releases it inside large array ops
(the ``lexsort``/``searchsorted`` passes of CSR block construction) — so
a thread per partition overlaps real work on multi-core hosts without
pickling graphs across process boundaries.  Pure-Python jobs (the dict
fold) still interleave under the GIL; they stay correct, just not
faster, which is exactly what a 1-core CI box sees too.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Hard cap on the pool size; per-partition jobs are coarse, so more
#: threads than cores only adds contention on the shared arrays.
MAX_WORKERS = 32


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument to an effective pool size.

    ``None`` (the default everywhere) means "one per core"; any explicit
    value is clamped to ``[1, MAX_WORKERS]``.  ``1`` selects the plain
    sequential loop — no pool, no threads, no behaviour change.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), MAX_WORKERS))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, fanned over a thread pool.

    Results are ordered by input position regardless of completion
    order.  A worker exception propagates to the caller (the remaining
    jobs still run to completion, as with ``Executor.map``).  With an
    effective worker count of 1 — or fewer than two items — this *is*
    the list comprehension: no executor is created at all.
    """
    items = list(items)
    n = min(resolve_workers(workers), len(items))
    if n <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=n, thread_name_prefix="repro-part") as pool:
        return list(pool.map(fn, items))


def partition_many(
    jobs: Sequence[Tuple[object, object, int]],
    workers: Optional[int] = None,
) -> List[object]:
    """Run independent ``(partitioner, graph, num_partitions)`` growth jobs.

    Each job calls ``partitioner.partition(graph, num_partitions)`` on
    its own thread; the returned list is ordered by job index.  Because
    the jobs share no mutable state, every result is bit-identical to
    running that job alone — the merge is trivially deterministic.

    The compiled TLP kernel makes this worthwhile: ``ctypes`` releases
    the GIL around every ``tlp_grow_episode`` call and each
    :class:`~repro.core.native_grow.NativeRunner` owns its scratch
    buffers, so two growth jobs overlap their episodes on separate
    cores.  **Pass a distinct partitioner instance per job** — a
    partitioner records ``last_telemetry`` on itself, so sharing one
    across concurrent jobs races on that field.
    """
    seen = {id(job[0]) for job in jobs}
    if len(seen) != len(jobs):
        raise ValueError(
            "partition_many requires a distinct partitioner instance per "
            "job (telemetry is recorded on the partitioner)"
        )
    return parallel_map(
        lambda job: job[0].partition(job[1], job[2]), jobs, workers
    )
