"""Modularity <-> replication-factor relationships (Claim 1 / Eq. 3-6).

The paper's Claim 1: under the averaging assumptions (every vertex has the
average degree ``d`` and all partitions hold ``m/p`` edges),

    RF = 1 + (1/p) * sum_k 1 / M(P_k)                       (Eq. 6)

so maximising each partition's modularity minimises RF.  This module exposes
both the idealised estimate and the exact per-partition accounting identity
it is derived from, which hold without any assumption:

    sum_{v in V(P_k)} deg_G(v) = 2 |E(P_k)| + ext_k          (*)

where ``ext_k`` counts (edge, endpoint) incidences external to ``P_k``
(see :func:`repro.partitioning.metrics.external_incidences`).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition
from repro.partitioning.metrics import external_incidences, partition_modularities


def claim1_rf_estimate(modularities: Sequence[float]) -> float:
    """Eq. 6: ``1 + (1/p) * sum_k 1/M_k`` (``1/inf`` treated as 0)."""
    if not modularities:
        return 1.0
    inv_sum = sum(0.0 if m == float("inf") else 1.0 / m for m in modularities)
    return 1.0 + inv_sum / len(modularities)


def rf_estimate_from_partition(partition: EdgePartition, graph: Graph) -> float:
    """Apply Eq. 6 to a concrete partitioning's measured modularities."""
    return claim1_rf_estimate(partition_modularities(partition, graph))


def degree_sum_identity_residuals(
    partition: EdgePartition, graph: Graph
) -> List[int]:
    """Per-partition residual of the exact identity (*) — always all zeros.

    Returned (rather than asserted) so property tests can check it; any
    non-zero entry indicates an accounting bug in metrics or a partition
    that is not a true edge partition of the graph.
    """
    vertex_sets = partition.vertex_sets()
    externals = external_incidences(partition, graph)
    residuals: List[int] = []
    for k in range(partition.num_partitions):
        degree_sum = sum(graph.degree(v) for v in vertex_sets[k])
        internal = len(partition.edges_of(k))
        residuals.append(degree_sum - 2 * internal - externals[k])
    return residuals


def exact_rf_decomposition(partition: EdgePartition, graph: Graph) -> float:
    """Exact RF written in Eq. 6's terms, valid for any degrees.

    ``RF = sum_k sum_{v in V(P_k)} deg(v)/deg(v) / |V|`` trivially; the useful
    exact decomposition mirroring Eq. 6 replaces the average degree with each
    partition's own mean degree:

        RF = sum_k (2 E_k + ext_k) / dbar_k / |V|

    where ``dbar_k`` is the mean G-degree over ``V(P_k)``.  Equals
    ``replication_factor`` up to floating point; tests verify that.
    """
    vertex_sets = partition.vertex_sets()
    externals = external_incidences(partition, graph)
    n = sum(1 for v in graph.vertices() if graph.degree(v) > 0)
    if n == 0:
        return 1.0
    total = 0.0
    for k in range(partition.num_partitions):
        vs = vertex_sets[k]
        if not vs:
            continue
        degree_sum = sum(graph.degree(v) for v in vs)
        dbar = degree_sum / len(vs)
        total += (2 * len(partition.edges_of(k)) + externals[k]) / dbar
    return total / n
