"""The paper's contribution: local graph edge partitioning with two stages."""

from repro.core.dynamic import DynamicPartitioner
from repro.core.frontier import Frontier
from repro.core.local import LocalEdgePartitioner
from repro.core.modularity import (
    claim1_rf_estimate,
    degree_sum_identity_residuals,
    exact_rf_decomposition,
    rf_estimate_from_partition,
)
from repro.core.stages import (
    STAGE_ONE,
    STAGE_TWO,
    EdgeCountStagePolicy,
    FixedStagePolicy,
    ModularityStagePolicy,
    StagePolicy,
)
from repro.core.state import PartitionState
from repro.core.telemetry import SelectionRecord, StageTelemetry
from repro.core.tlp import (
    StageOneOnlyPartitioner,
    StageTwoOnlyPartitioner,
    TLPPartitioner,
)
from repro.core.tlp_r import TLPRPartitioner
from repro.core.windowed import WindowedLocalPartitioner

__all__ = [
    "DynamicPartitioner",
    "Frontier",
    "LocalEdgePartitioner",
    "claim1_rf_estimate",
    "degree_sum_identity_residuals",
    "exact_rf_decomposition",
    "rf_estimate_from_partition",
    "STAGE_ONE",
    "STAGE_TWO",
    "EdgeCountStagePolicy",
    "FixedStagePolicy",
    "ModularityStagePolicy",
    "StagePolicy",
    "PartitionState",
    "SelectionRecord",
    "StageTelemetry",
    "StageOneOnlyPartitioner",
    "StageTwoOnlyPartitioner",
    "TLPPartitioner",
    "TLPRPartitioner",
    "WindowedLocalPartitioner",
]
