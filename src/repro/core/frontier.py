"""Vectorised frontier bookkeeping for local partition growth.

The frontier ``N(P_k)`` is the set of vertices adjacent to the growing
partition.  For each frontier vertex ``v`` we maintain:

* ``c(v)`` — number of residual edges between ``v`` and ``P_k`` (all of which
  would be allocated if ``v`` were selected),
* ``r(v)`` — residual degree of ``v`` at the moment it entered the frontier
  (constant for the rest of the round: only member-member edges are removed
  mid-round),
* ``mu1(v)`` — the Stage-I score of Eq. 7, maintained incrementally.

All three live in parallel numpy arrays so the per-step argmax (the inner
loop of TLP) is a vectorised scan rather than a Python loop — the naive
formulation is O(L^2 d^2) (paper §III-E); this keeps a selection step at
O(|frontier|) with C-speed constants.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

_INITIAL_CAPACITY = 64


def argmax_with_ties(
    primary: np.ndarray, secondary: np.ndarray, ids: np.ndarray
) -> int:
    """Index of the max of ``primary``; ties by max ``secondary``, min id.

    Fast path: a single ``argmax`` plus one equality count; the full
    tie-break machinery only runs when a genuine tie exists.  Shared by
    the reference and CSR frontiers so both resolve ties identically.
    """
    i = int(np.argmax(primary))
    best = primary[i]
    tie_count = int(np.count_nonzero(primary == best))
    if tie_count == 1:
        return i
    candidates = np.nonzero(primary == best)[0]
    sec = secondary[candidates]
    finalists = candidates[sec == sec.max()]
    if len(finalists) == 1:
        return int(finalists[0])
    return int(finalists[np.argmin(ids[finalists])])


class Frontier:
    """Dynamic arrays over the frontier with swap-and-pop deletion."""

    def __init__(self) -> None:
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._c = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._r = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._mu1 = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self._pos: Dict[int, int] = {}
        self._size = 0

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, v: int) -> bool:
        return v in self._pos

    def c_of(self, v: int) -> int:
        """Current ``c(v)``; 0 if ``v`` is not in the frontier."""
        i = self._pos.get(v)
        return int(self._c[i]) if i is not None else 0

    def _grow(self) -> None:
        new_cap = 2 * len(self._ids)
        for name in ("_ids", "_c", "_r", "_mu1"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def touch(self, v: int, residual_degree: int) -> None:
        """Ensure ``v`` is present (with ``c = 0`` if new)."""
        if v in self._pos:
            return
        if self._size == len(self._ids):
            self._grow()
        i = self._size
        self._ids[i] = v
        self._c[i] = 0
        self._r[i] = residual_degree
        self._mu1[i] = 0.0
        self._pos[v] = i
        self._size += 1

    def increment_c(self, v: int) -> None:
        """One more partition edge now touches ``v``."""
        self._c[self._pos[v]] += 1

    def touch_and_increment(self, v: int, residual_degree_of) -> None:
        """Fused :meth:`touch` + :meth:`increment_c` (the allocation hot path).

        ``residual_degree_of`` is a callable evaluated only when ``v`` is new
        to the frontier, saving a degree lookup per repeat touch.
        """
        i = self._pos.get(v)
        if i is not None:
            self._c[i] += 1
            return
        if self._size == len(self._ids):
            self._grow()
        i = self._size
        self._ids[i] = v
        self._c[i] = 1
        self._r[i] = residual_degree_of(v)
        self._mu1[i] = 0.0
        self._pos[v] = i
        self._size += 1

    def raise_mu1(self, v: int, value: float) -> None:
        """Monotone update of the Stage-I score (scores only ever improve)."""
        i = self._pos[v]
        if value > self._mu1[i]:
            self._mu1[i] = value

    def remove(self, v: int) -> None:
        """Remove ``v`` (it became a member) via swap-and-pop."""
        i = self._pos.pop(v)
        last = self._size - 1
        if i != last:
            for arr in (self._ids, self._c, self._r, self._mu1):
                arr[i] = arr[last]
            self._pos[int(self._ids[i])] = i
        self._size = last

    # -- selection ----------------------------------------------------------

    def _argmax_with_ties(
        self, primary: np.ndarray, secondary: np.ndarray
    ) -> int:
        """Index of the max of ``primary``; ties by max ``secondary``, min id."""
        return argmax_with_ties(primary, secondary, self._ids[: self._size])

    def select_stage1(self) -> Optional[int]:
        """Vertex maximising ``mu_s1`` (Eq. 8); ties to higher residual degree.

        The degree tie-break implements the paper's stated intent that Stage I
        prefers the *high-degree* close vertex (§III-C discussion of Fig. 6).
        """
        n = self._size
        if n == 0:
            return None
        i = self._argmax_with_ties(self._mu1[:n], self._r[:n])
        return int(self._ids[i])

    def select_stage2(self, internal: int, external: int) -> Optional[int]:
        """Vertex maximising the modularity gain ``dM`` (Eq. 9-11).

        Maximising ``mu_s2 = 1 - 1/(1 + dM)`` is equivalent to maximising the
        post-move modularity ``M' = (E_in + c) / (E_out + r - 2c)`` because
        ``M`` is fixed within a step.  A non-positive denominator means the
        partition would swallow its whole remaining component (``M' = inf``),
        the best possible move.  Ties go to larger ``c`` (more edges absorbed),
        then smaller id.
        """
        n = self._size
        if n == 0:
            return None
        c = self._c[:n]
        r = self._r[:n]
        num = (internal + c).astype(np.float64)
        den = (external + r - 2 * c).astype(np.float64)
        score = np.where(den > 0, num / np.where(den > 0, den, 1.0), np.inf)
        i = self._argmax_with_ties(score, c)
        return int(self._ids[i])


class DenseFrontier:
    """Int-indexed frontier over a fixed vertex universe ``0..n-1``.

    The CSR backend's twin of :class:`Frontier`: membership is a dense
    position array (``pos[v] == -1`` when absent) instead of a dict, so
    every bookkeeping operation is a vectorised slice — no per-vertex
    hashing.  Compact parallel arrays (``ids``/``c``/``r``/``mu1``) are
    preallocated at full size, and the per-step argmax scans only the
    live prefix.  Selection semantics (including tie-breaks) are shared
    with :class:`Frontier` via :func:`argmax_with_ties`; here ``ids``
    hold dense vertex *indices*, whose order matches original-id order
    by construction of :class:`~repro.graph.residual_csr.CSRResidual`.
    """

    __slots__ = ("_ids", "_c", "_r", "_mu1", "_pos", "_size")

    def __init__(self, num_vertices: int) -> None:
        self._ids = np.empty(num_vertices, dtype=np.int64)
        self._c = np.empty(num_vertices, dtype=np.int64)
        self._r = np.empty(num_vertices, dtype=np.int64)
        self._mu1 = np.empty(num_vertices, dtype=np.float64)
        self._pos = np.full(num_vertices, -1, dtype=np.int64)
        self._size = 0

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, v: int) -> bool:
        return self._pos[v] >= 0

    def c_of(self, v: int) -> int:
        """Current ``c(v)``; 0 if ``v`` is not in the frontier."""
        p = self._pos[v]
        return int(self._c[p]) if p >= 0 else 0

    def members(self) -> np.ndarray:
        """The current frontier vertex indices (compact order)."""
        return self._ids[: self._size]

    def touch_and_increment_many(
        self, vs: np.ndarray, live_deg: np.ndarray
    ) -> None:
        """Vectorised ``touch + c += 1`` over distinct vertices ``vs``.

        New entries get ``c = 1`` and ``r`` sampled from ``live_deg`` at
        entry time, exactly like the reference frontier's fused touch.
        """
        if len(vs) == 0:
            return
        pos = self._pos[vs]
        is_new = pos < 0
        old = pos[~is_new]
        if len(old):
            self._c[old] += 1
        new = vs[is_new]
        k = len(new)
        if k:
            i = self._size
            self._ids[i : i + k] = new
            self._c[i : i + k] = 1
            self._r[i : i + k] = live_deg[new]
            self._mu1[i : i + k] = 0.0
            self._pos[new] = np.arange(i, i + k, dtype=np.int64)
            self._size = i + k

    def raise_mu1_many(self, vs: np.ndarray, values: np.ndarray) -> None:
        """Monotone Stage-I score update for distinct frontier vertices."""
        p = self._pos[vs]
        self._mu1[p] = np.maximum(self._mu1[p], values)

    def remove(self, v: int) -> None:
        """Remove vertex index ``v`` (it became a member) via swap-and-pop."""
        p = int(self._pos[v])
        last = self._size - 1
        if p != last:
            for arr in (self._ids, self._c, self._r, self._mu1):
                arr[p] = arr[last]
            self._pos[self._ids[p]] = p
        self._pos[v] = -1
        self._size = last

    # -- selection ----------------------------------------------------------

    def select_stage1(self) -> Optional[int]:
        """Vertex index maximising ``mu_s1``; same tie-breaks as :class:`Frontier`."""
        n = self._size
        if n == 0:
            return None
        i = argmax_with_ties(self._mu1[:n], self._r[:n], self._ids[:n])
        return int(self._ids[i])

    def select_stage2(self, internal: int, external: int) -> Optional[int]:
        """Vertex index maximising the modularity gain (Eq. 9-11)."""
        n = self._size
        if n == 0:
            return None
        c = self._c[:n]
        r = self._r[:n]
        num = (internal + c).astype(np.float64)
        den = (external + r - 2 * c).astype(np.float64)
        score = np.where(den > 0, num / np.where(den > 0, den, 1.0), np.inf)
        i = argmax_with_ties(score, c, self._ids[:n])
        return int(self._ids[i])
