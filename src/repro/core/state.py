"""The growing partition of one local-partitioning round.

:class:`PartitionState` owns all invariants of Algorithm 1's inner loop:

* ``members`` = ``V(P_k)`` so far; ``edges`` = ``E(P_k)`` so far;
* ``internal`` = ``|E(P_k)|``; ``external`` = ``|E_out(P_k)|`` — residual
  edges with exactly one endpoint in ``members``;
* the :class:`~repro.core.frontier.Frontier` is exactly the set of external
  endpoints, with ``sum(c) == external``;
* no residual edge ever has both endpoints in ``members`` (allocation is
  exhaustive), except immediately after a capacity-truncated add, which ends
  the round.

Neighbourhood snapshots: within a round, a frontier vertex keeps its
residual adjacency untouched (only member-member edges are allocated), so
``residual.neighbors(v)`` *is* the round-start neighbourhood of any
non-member.  A member's round-start neighbourhood is snapshotted at join
time, which is all the Stage-I similarity (Eq. 7) needs; snapshots are
processed lazily (only when Stage I actually selects) and then discarded,
keeping space at O(L d) as claimed in §III-E.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph
from repro.graph.residual import ResidualGraph
from repro.core.frontier import Frontier

SIMILARITY_SCOPES = ("residual", "original")


class PartitionState:
    """State of one partition while it grows."""

    def __init__(
        self,
        residual: ResidualGraph,
        graph: Graph,
        similarity_scope: str = "residual",
    ) -> None:
        if similarity_scope not in SIMILARITY_SCOPES:
            raise ValueError(
                f"similarity_scope must be one of {SIMILARITY_SCOPES}, "
                f"got {similarity_scope!r}"
            )
        self._residual = residual
        self._graph = graph
        self._similarity_scope = similarity_scope
        self.members: Set[int] = set()
        self.edges: List[Edge] = []
        self.internal = 0
        self.external = 0
        self.frontier = Frontier()
        # Members whose Stage-I similarity contributions are not yet applied:
        # (member, round-start neighbour snapshot).
        self._pending_mu1: List[Tuple[int, Set[int]]] = []

    # -- derived quantities --------------------------------------------------

    @property
    def modularity(self) -> float:
        """``M(P_k) = |E(P_k)| / |E_out(P_k)|`` (Definition 8); inf if closed."""
        if self.external == 0:
            return float("inf")
        return self.internal / self.external

    def frontier_empty(self) -> bool:
        """True when ``N(P_k)`` is empty (equivalently ``E_out = 0``)."""
        return len(self.frontier) == 0

    # -- growth --------------------------------------------------------------

    def seed(self, x: int) -> None:
        """Start (or restart, for disconnected residuals) growth from ``x``.

        Implements lines 1-3 of Algorithm 1: ``x`` joins ``V(P_k)`` and its
        neighbours form the frontier.  No edges are allocated yet.
        """
        if x in self.members:
            raise ValueError(f"seed {x} is already a member")
        snapshot = set(self._residual.neighbors(x))
        self.members.add(x)
        degree_of = self._residual.degree
        for u in snapshot:
            # A neighbour of a fresh seed can never already be a member:
            # that edge would have been external, contradicting the empty
            # frontier that triggered reseeding.
            self.frontier.touch_and_increment(u, degree_of)
        self.external += len(snapshot)
        self._pending_mu1.append((x, snapshot))

    def add_vertex(self, v: int, max_edges: Optional[int] = None) -> Tuple[int, bool]:
        """Move frontier vertex ``v`` into the partition (line 10 of Alg. 1).

        Allocates every residual edge between ``v`` and ``members``; if
        ``max_edges`` is smaller than that batch, only ``max_edges`` of them
        are allocated (strict-capacity truncation) and the round must end.

        Returns ``(allocated, truncated)``.
        """
        snapshot = set(self._residual.neighbors(v))
        member_nbrs = [u for u in snapshot if u in self.members]
        truncated = max_edges is not None and len(member_nbrs) > max_edges
        batch = member_nbrs[:max_edges] if truncated else member_nbrs
        for u in batch:
            self._residual.remove_edge(v, u)
            self.edges.append((v, u) if v < u else (u, v))
        self.internal += len(batch)
        self.external -= len(batch)
        if truncated:
            # Round over: bookkeeping beyond the edge list no longer matters.
            return len(batch), True
        self.members.add(v)
        if v in self.frontier:
            self.frontier.remove(v)
        members = self.members
        degree_of = self._residual.degree
        outside = 0
        for u in snapshot:
            if u in members:
                continue
            self.frontier.touch_and_increment(u, degree_of)
            outside += 1
        self.external += outside
        self._pending_mu1.append((v, snapshot))
        return len(batch), False

    # -- Stage-I score maintenance -------------------------------------------

    def flush_stage1_scores(self) -> None:
        """Apply pending Stage-I similarity updates (Eq. 7).

        For each unprocessed member ``v_j`` and each non-member neighbour
        ``u``, raise ``mu1(u)`` to ``|N(u) ∩ N(v_j)| / |N(v_j)|``.  Each
        member is processed exactly once per round, so the total Stage-I
        cost is bounded by the two-hop neighbourhood of the partition no
        matter how often the stage toggles.
        """
        if not self._pending_mu1:
            return
        use_original = self._similarity_scope == "original"
        for v_j, snapshot in self._pending_mu1:
            if use_original:
                nbrs_j: Set[int] = self._graph.neighbors(v_j)
            else:
                nbrs_j = snapshot
            deg_j = len(nbrs_j)
            if deg_j == 0:
                continue
            for u in snapshot:
                if u in self.members:
                    continue
                nbrs_u = (
                    self._graph.neighbors(u)
                    if use_original
                    else self._residual.neighbors(u)
                )
                # C-speed set intersection (both operands are sets).
                common = len(nbrs_u & nbrs_j)
                self.frontier.raise_mu1(u, common / deg_j)
        self._pending_mu1.clear()

    # -- selection -----------------------------------------------------------

    def select_stage1(self) -> Optional[int]:
        """Best Stage-I vertex (Eq. 8), refreshing scores first."""
        self.flush_stage1_scores()
        return self.frontier.select_stage1()

    def select_stage2(self) -> Optional[int]:
        """Best Stage-II vertex (Eq. 11)."""
        return self.frontier.select_stage2(self.internal, self.external)
