"""The growing partition of one local-partitioning round.

:class:`PartitionState` owns all invariants of Algorithm 1's inner loop:

* ``members`` = ``V(P_k)`` so far; ``edges`` = ``E(P_k)`` so far;
* ``internal`` = ``|E(P_k)|``; ``external`` = ``|E_out(P_k)|`` — residual
  edges with exactly one endpoint in ``members``;
* the :class:`~repro.core.frontier.Frontier` is exactly the set of external
  endpoints, with ``sum(c) == external``;
* no residual edge ever has both endpoints in ``members`` (allocation is
  exhaustive), except immediately after a capacity-truncated add, which ends
  the round.

Neighbourhood snapshots: within a round, a frontier vertex keeps its
residual adjacency untouched (only member-member edges are allocated), so
``residual.neighbors(v)`` *is* the round-start neighbourhood of any
non-member.  A member's round-start neighbourhood is snapshotted at join
time, which is all the Stage-I similarity (Eq. 7) needs; snapshots are
processed lazily (only when Stage I actually selects) and then discarded,
keeping space at O(L d) as claimed in §III-E.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.graph.graph import Edge, Graph
from repro.graph.residual import ResidualGraph
from repro.graph.residual_csr import CSRResidual
from repro.core.frontier import DenseFrontier, Frontier

SIMILARITY_SCOPES = ("residual", "original")


class PartitionState:
    """State of one partition while it grows."""

    def __init__(
        self,
        residual: ResidualGraph,
        graph: Graph,
        similarity_scope: str = "residual",
    ) -> None:
        if similarity_scope not in SIMILARITY_SCOPES:
            raise ValueError(
                f"similarity_scope must be one of {SIMILARITY_SCOPES}, "
                f"got {similarity_scope!r}"
            )
        self._residual = residual
        self._graph = graph
        self._similarity_scope = similarity_scope
        self.members: Set[int] = set()
        self.edges: List[Edge] = []
        self.internal = 0
        self.external = 0
        self.frontier = Frontier()
        # Members whose Stage-I similarity contributions are not yet applied:
        # (member, round-start neighbour snapshot).
        self._pending_mu1: List[Tuple[int, Set[int]]] = []

    # -- derived quantities --------------------------------------------------

    @property
    def modularity(self) -> float:
        """``M(P_k) = |E(P_k)| / |E_out(P_k)|`` (Definition 8); inf if closed."""
        if self.external == 0:
            return float("inf")
        return self.internal / self.external

    def frontier_empty(self) -> bool:
        """True when ``N(P_k)`` is empty (equivalently ``E_out = 0``)."""
        return len(self.frontier) == 0

    # -- growth --------------------------------------------------------------

    def seed(self, x: int) -> None:
        """Start (or restart, for disconnected residuals) growth from ``x``.

        Implements lines 1-3 of Algorithm 1: ``x`` joins ``V(P_k)`` and its
        neighbours form the frontier.  No edges are allocated yet.
        """
        if x in self.members:
            raise ValueError(f"seed {x} is already a member")
        snapshot = set(self._residual.neighbors(x))
        self.members.add(x)
        degree_of = self._residual.degree
        for u in snapshot:
            # A neighbour of a fresh seed can never already be a member:
            # that edge would have been external, contradicting the empty
            # frontier that triggered reseeding.
            self.frontier.touch_and_increment(u, degree_of)
        self.external += len(snapshot)
        self._pending_mu1.append((x, snapshot))

    def add_vertex(self, v: int, max_edges: Optional[int] = None) -> Tuple[int, bool]:
        """Move frontier vertex ``v`` into the partition (line 10 of Alg. 1).

        Allocates every residual edge between ``v`` and ``members``; if
        ``max_edges`` is smaller than that batch, only ``max_edges`` of them
        are allocated (strict-capacity truncation) and the round must end.

        Returns ``(allocated, truncated)``.
        """
        snapshot = set(self._residual.neighbors(v))
        # Sorted batch order makes capacity truncation canonical (smallest
        # neighbour ids win), so every backend truncates identically.
        member_nbrs = sorted(u for u in snapshot if u in self.members)
        truncated = max_edges is not None and len(member_nbrs) > max_edges
        batch = member_nbrs[:max_edges] if truncated else member_nbrs
        for u in batch:
            self._residual.remove_edge(v, u)
            self.edges.append((v, u) if v < u else (u, v))
        self.internal += len(batch)
        self.external -= len(batch)
        if truncated:
            # Round over: bookkeeping beyond the edge list no longer matters.
            return len(batch), True
        self.members.add(v)
        if v in self.frontier:
            self.frontier.remove(v)
        members = self.members
        degree_of = self._residual.degree
        outside = 0
        for u in snapshot:
            if u in members:
                continue
            self.frontier.touch_and_increment(u, degree_of)
            outside += 1
        self.external += outside
        self._pending_mu1.append((v, snapshot))
        return len(batch), False

    # -- Stage-I score maintenance -------------------------------------------

    def flush_stage1_scores(self) -> None:
        """Apply pending Stage-I similarity updates (Eq. 7).

        For each unprocessed member ``v_j`` and each non-member neighbour
        ``u``, raise ``mu1(u)`` to ``|N(u) ∩ N(v_j)| / |N(v_j)|``.  Each
        member is processed exactly once per round, so the total Stage-I
        cost is bounded by the two-hop neighbourhood of the partition no
        matter how often the stage toggles.
        """
        if not self._pending_mu1:
            return
        use_original = self._similarity_scope == "original"
        for v_j, snapshot in self._pending_mu1:
            if use_original:
                nbrs_j: Set[int] = self._graph.neighbors(v_j)
            else:
                nbrs_j = snapshot
            deg_j = len(nbrs_j)
            if deg_j == 0:
                continue
            for u in snapshot:
                if u in self.members:
                    continue
                nbrs_u = (
                    self._graph.neighbors(u)
                    if use_original
                    else self._residual.neighbors(u)
                )
                # C-speed set intersection (both operands are sets).
                common = len(nbrs_u & nbrs_j)
                self.frontier.raise_mu1(u, common / deg_j)
        self._pending_mu1.clear()

    # -- selection -----------------------------------------------------------

    def select_stage1(self) -> Optional[int]:
        """Best Stage-I vertex (Eq. 8), refreshing scores first."""
        self.flush_stage1_scores()
        return self.frontier.select_stage1()

    def select_stage2(self) -> Optional[int]:
        """Best Stage-II vertex (Eq. 11)."""
        return self.frontier.select_stage2(self.internal, self.external)


class CSRPartitionState:
    """Array-native twin of :class:`PartitionState` over a :class:`CSRResidual`.

    Same public API and bit-for-bit identical selections under a fixed
    seed, but every inner-loop operation is a vectorised slice over flat
    CSR arrays:

    * membership is a dense boolean mask indexed by vertex index;
    * ``add_vertex`` classifies a whole adjacency row (live / member /
      outside) with three boolean kernels and kills the allocated edges
      through the slot-parallel ``alive`` mask;
    * Stage-I similarity (Eq. 7) counts sorted-row intersections with one
      ``searchsorted`` over the concatenated two-hop neighbourhood
      instead of per-pair Python set intersections.

    ``similarity_scope="original"`` uses the static (round-zero) CSR rows,
    which are exactly the full input graph's adjacency.
    """

    def __init__(
        self, residual: CSRResidual, similarity_scope: str = "residual"
    ) -> None:
        if similarity_scope not in SIMILARITY_SCOPES:
            raise ValueError(
                f"similarity_scope must be one of {SIMILARITY_SCOPES}, "
                f"got {similarity_scope!r}"
            )
        self._residual = residual
        self._similarity_scope = similarity_scope
        n = residual.num_vertices
        self._member_mask = np.zeros(n, dtype=bool)
        self.edges: List[Edge] = []
        self.internal = 0
        self.external = 0
        self.frontier = DenseFrontier(n)
        # Members whose Stage-I similarity contributions are not yet
        # applied: (member index, round-start live-neighbour row).
        self._pending_mu1: List[Tuple[int, np.ndarray]] = []

    # -- derived quantities --------------------------------------------------

    @property
    def members(self) -> Set[int]:
        """Current member *ids* (materialised on demand; not a hot path)."""
        idx = np.flatnonzero(self._member_mask)
        return set(self._residual.ids[idx].tolist())

    @property
    def modularity(self) -> float:
        """``M(P_k) = |E(P_k)| / |E_out(P_k)|`` (Definition 8); inf if closed."""
        if self.external == 0:
            return float("inf")
        return self.internal / self.external

    def frontier_empty(self) -> bool:
        """True when ``N(P_k)`` is empty (equivalently ``E_out = 0``)."""
        return len(self.frontier) == 0

    # -- growth --------------------------------------------------------------

    def seed(self, x: int) -> None:
        """Start (or restart) growth from the vertex with original id ``x``."""
        res = self._residual
        i = res.index_of[x]
        if self._member_mask[i]:
            raise ValueError(f"seed {x} is already a member")
        snapshot = res.live_row(i)
        self._member_mask[i] = True
        self.frontier.touch_and_increment_many(snapshot, res.live_deg)
        self.external += len(snapshot)
        self._pending_mu1.append((i, snapshot))

    def add_vertex(self, v: int, max_edges: Optional[int] = None) -> Tuple[int, bool]:
        """Move frontier vertex ``v`` (original id) into the partition.

        Returns ``(allocated, truncated)`` with the same truncation
        semantics as the reference backend: the batch is the member
        neighbours in ascending id order, cut at ``max_edges``.
        """
        res = self._residual
        i = res.index_of[v]
        s, e = res.indptr[i], res.indptr[i + 1]
        row = res.indices[s:e]
        live = res.alive[s:e].view(bool)
        snapshot = row[live]  # sorted: row is sorted, mask keeps order
        mem = self._member_mask[snapshot]
        member_nbrs = snapshot[mem]
        slots = s + np.flatnonzero(live)[mem]
        truncated = max_edges is not None and len(member_nbrs) > max_edges
        if truncated:
            member_nbrs = member_nbrs[:max_edges]
            slots = slots[:max_edges]
        res.kill_slots(i, slots, member_nbrs)
        k = len(member_nbrs)
        if k:
            uids = res.ids[member_nbrs]
            vid = int(res.ids[i])
            lo = np.minimum(uids, vid)
            hi = np.maximum(uids, vid)
            self.edges.extend(zip(lo.tolist(), hi.tolist()))
        self.internal += k
        self.external -= k
        if truncated:
            # Round over: bookkeeping beyond the edge list no longer matters.
            return k, True
        self._member_mask[i] = True
        if i in self.frontier:
            self.frontier.remove(i)
        outside = snapshot[~mem]
        self.frontier.touch_and_increment_many(outside, res.live_deg)
        self.external += len(outside)
        self._pending_mu1.append((i, snapshot))
        return k, False

    # -- Stage-I score maintenance -------------------------------------------

    def flush_stage1_scores(self) -> None:
        """Apply pending Stage-I similarity updates (Eq. 7), vectorised.

        For each unprocessed member ``v_j``, the live rows of all its
        non-member snapshot neighbours are concatenated into one ragged
        batch; a single ``searchsorted`` against the sorted ``N(v_j)`` row
        counts every intersection at C speed.
        """
        if not self._pending_mu1:
            return
        res = self._residual
        use_original = self._similarity_scope == "original"
        member_mask = self._member_mask
        indptr, indices, alive = res.indptr, res.indices, res.alive
        for j, snapshot in self._pending_mu1:
            nbrs_j = res.static_row(j) if use_original else snapshot
            deg_j = len(nbrs_j)
            if deg_j == 0:
                continue
            outside = snapshot[~member_mask[snapshot]]
            if len(outside) == 0:
                continue
            starts = indptr[outside]
            lens = indptr[outside + 1] - starts
            total = int(lens.sum())
            if total == 0:
                continue
            # Ragged gather: positions of every adjacency slot of every
            # outside vertex, in one flat array.
            prefix = np.zeros(len(outside), dtype=np.int64)
            np.cumsum(lens[:-1], out=prefix[1:])
            positions = np.arange(total, dtype=np.int64) + np.repeat(
                starts - prefix, lens
            )
            cat = indices[positions]
            loc = np.searchsorted(nbrs_j, cat)
            hit = nbrs_j[np.minimum(loc, deg_j - 1)] == cat
            if not use_original:
                hit &= alive[positions].view(bool)
            labels = np.repeat(np.arange(len(outside), dtype=np.int64), lens)
            counts = np.bincount(labels[hit], minlength=len(outside))
            self.frontier.raise_mu1_many(outside, counts / deg_j)
        self._pending_mu1.clear()

    # -- selection -----------------------------------------------------------

    def select_stage1(self) -> Optional[int]:
        """Best Stage-I vertex id (Eq. 8), refreshing scores first."""
        self.flush_stage1_scores()
        i = self.frontier.select_stage1()
        return None if i is None else int(self._residual.ids[i])

    def select_stage2(self) -> Optional[int]:
        """Best Stage-II vertex id (Eq. 11)."""
        i = self.frontier.select_stage2(self.internal, self.external)
        return None if i is None else int(self._residual.ids[i])
