"""Master/mirror replication tables — PowerGraph's vertex-cut model.

Under edge partitioning, a vertex whose edges span several partitions exists
as one **master** replica (by convention: the partition holding most of its
edges, ties to the lowest partition id) plus **mirrors** on every other
spanning partition.  Every gather/apply/scatter superstep exchanges messages
between mirrors and masters, so total communication is proportional to the
mirror count — which is exactly ``(RF - 1) * |V|``.  This module builds that
table from an :class:`~repro.partitioning.assignment.EdgePartition`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.partitioning.assignment import EdgePartition


class ReplicationTable:
    """Replica placement derived from an edge partition."""

    def __init__(self, partition: EdgePartition) -> None:
        # incident[v][k] = number of partition-k edges incident to v
        incident: Dict[int, Dict[int, int]] = {}
        for k in range(partition.num_partitions):
            for u, v in partition.edges_of(k):
                for vertex in (u, v):
                    row = incident.setdefault(vertex, {})
                    row[k] = row.get(k, 0) + 1
        self.replicas: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(row)) for v, row in incident.items()
        }
        self.master: Dict[int, int] = {
            v: max(row, key=lambda k: (row[k], -k)) for v, row in incident.items()
        }

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        """Partitions hosting a replica of ``v`` (empty tuple if unknown)."""
        return self.replicas.get(v, ())

    def master_of(self, v: int) -> int:
        """The master partition of ``v``; raises ``KeyError`` if uncovered."""
        return self.master[v]

    def mirror_count(self, v: int) -> int:
        """Number of mirrors (non-master replicas) of ``v``."""
        return max(0, len(self.replicas.get(v, ())) - 1)

    def total_mirrors(self) -> int:
        """Sum of mirrors over all vertices — the communication driver."""
        return sum(len(r) - 1 for r in self.replicas.values())

    def spanned_vertices(self) -> List[int]:
        """Vertices with at least one mirror (Definition 2)."""
        return [v for v, r in self.replicas.items() if len(r) > 1]
