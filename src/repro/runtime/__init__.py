"""Distributed graph-computation simulator (PowerGraph-style GAS engine)."""

from repro.runtime.engine import EngineResult, GASEngine
from repro.runtime.loader import (
    BundlePartitionView,
    CSRMachineAdjacency,
    CSRReplicationTable,
    load_engine,
)
from repro.runtime.programs import (
    ConnectedComponents,
    GASProgram,
    KCoreDecomposition,
    PageRank,
    SingleSourceShortestPaths,
    h_index,
    reference_coreness,
    run_reference,
)
from repro.runtime.replication import ReplicationTable
from repro.runtime.stats import (
    MachineLoad,
    RunStats,
    SuperstepStats,
    estimate_makespan,
    load_imbalance,
)

__all__ = [
    "BundlePartitionView",
    "CSRMachineAdjacency",
    "CSRReplicationTable",
    "EngineResult",
    "GASEngine",
    "load_engine",
    "ConnectedComponents",
    "GASProgram",
    "KCoreDecomposition",
    "PageRank",
    "SingleSourceShortestPaths",
    "h_index",
    "reference_coreness",
    "run_reference",
    "ReplicationTable",
    "MachineLoad",
    "RunStats",
    "SuperstepStats",
    "estimate_makespan",
    "load_imbalance",
]
