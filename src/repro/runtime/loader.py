"""Load a saved bundle straight into the GAS simulator via the CSR sidecar.

The original loading path for a simulation run was: parse the text edge
lists back into an :class:`~repro.partitioning.assignment.EdgePartition`
(:func:`~repro.partitioning.serialization.load_partition`), then let
:class:`~repro.runtime.engine.GASEngine` re-derive the replication table
by counting incident edges per vertex into dict-of-dicts, and — for
incremental mode — rebuild per-machine adjacency dicts edge by edge.
Every structure the engine rebuilds is already frozen into the bundle's
binary CSR sidecar (``adjacency.csr``, see
:mod:`~repro.partitioning.csr_bundle`), so :func:`load_engine` memory-maps
the sidecar instead and wraps the flat arrays in thin read-only views:

* :class:`CSRReplicationTable` — binary-searches the sorted ``vertex_ids``
  row index and answers master/replica queries from the mapped ``master``
  and ``rep_*`` arrays (memoised per vertex, since the gather loop asks
  for the same masters every superstep);
* :class:`CSRMachineAdjacency` — the mapping interface the engine's
  incremental mode expects (``adj[u]``, ``adj.get(u, ())``, iteration),
  served from each partition's ``(ids, indptr, indices)`` CSR rows;
* :class:`BundlePartitionView` — enough of the ``EdgePartition`` surface
  for the engine (``num_partitions``, ``edges_of``, ``vertex_sets``),
  decoding each partition's edge list lazily from the CSR rows.

Because ``save_partition`` writes edges in canonical sorted order and CSR
row-major decoding yields exactly that order, the per-machine edge lists
— and therefore every gather merge — are identical between the two paths,
so results are bit-identical, floats included (the parity test in
``tests/runtime/test_loader.py`` pins this).  Bundles without a sidecar
fall back to the text path transparently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.graph.graph import Edge, Graph
from repro.partitioning.csr_bundle import PartitionCSR
from repro.partitioning.serialization import (
    has_sidecar,
    load_partition,
    load_sidecar,
)
from repro.runtime.engine import GASEngine
from repro.runtime.programs import GASProgram

PathLike = Union[str, Path]

_Row = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _decode_edges(ids: np.ndarray, indptr: np.ndarray, indices: np.ndarray) -> List[Edge]:
    """One partition's sorted edge list from its CSR adjacency."""
    if len(ids) == 0:
        return []
    degrees = np.diff(indptr)
    src = np.repeat(np.arange(len(ids)), degrees)
    dst = np.asarray(indices)
    # Each undirected edge appears in both rows; keep the (u < v) copy.
    # Row-major order with sorted rows yields the canonical sorted list.
    mask = src < dst
    u = ids[src[mask]]
    v = ids[dst[mask]]
    return list(zip(u.tolist(), v.tolist()))


class CSRReplicationTable:
    """Master/mirror queries over the memory-mapped sidecar arrays.

    Duck-types :class:`~repro.runtime.replication.ReplicationTable`
    without materialising its per-vertex dicts.  Lookups are memoised:
    the engine asks for the same vertices every superstep, and a dict
    hit is cheaper than a binary search into a mapped array.
    """

    def __init__(self, csr: PartitionCSR) -> None:
        self._ids = csr.vertex_ids
        self._master = csr.master
        self._indptr = csr.rep_indptr
        self._parts = csr.rep_parts
        self._rows: Dict[int, int] = {}

    def _row(self, v: int) -> int:
        """Row of ``v`` in ``vertex_ids`` (-1 if uncovered)."""
        row = self._rows.get(v)
        if row is None:
            i = int(np.searchsorted(self._ids, v))
            row = i if i < len(self._ids) and int(self._ids[i]) == v else -1
            self._rows[v] = row
        return row

    def replicas_of(self, v: int) -> Tuple[int, ...]:
        """Partitions hosting a replica of ``v`` (empty tuple if unknown)."""
        row = self._row(v)
        if row < 0:
            return ()
        lo, hi = int(self._indptr[row]), int(self._indptr[row + 1])
        return tuple(int(k) for k in self._parts[lo:hi])

    def master_of(self, v: int) -> int:
        """The master partition of ``v``; raises ``KeyError`` if uncovered."""
        row = self._row(v)
        if row < 0:
            raise KeyError(v)
        return int(self._master[row])

    def mirror_count(self, v: int) -> int:
        """Number of mirrors (non-master replicas) of ``v``."""
        row = self._row(v)
        if row < 0:
            return 0
        return max(0, int(self._indptr[row + 1] - self._indptr[row]) - 1)

    def total_mirrors(self) -> int:
        """Sum of mirrors over all vertices — the communication driver."""
        return int(len(self._parts) - len(self._ids))

    def spanned_vertices(self) -> List[int]:
        """Vertices with at least one mirror (Definition 2)."""
        spanned = np.diff(self._indptr) > 1
        return [int(v) for v in self._ids[spanned]]


class CSRMachineAdjacency:
    """Read-only ``{vertex: sorted neighbour ids}`` view of one partition.

    Implements exactly the mapping surface the engine's incremental mode
    uses: ``adj[u]``, ``adj.get(u, default)``, ``u in adj``, iteration
    (ascending vertex id), and ``len``.
    """

    __slots__ = ("_ids", "_indptr", "_indices")

    def __init__(self, ids: np.ndarray, indptr: np.ndarray, indices: np.ndarray) -> None:
        self._ids = ids
        self._indptr = indptr
        self._indices = indices

    def _row(self, u: int) -> int:
        i = int(np.searchsorted(self._ids, u))
        return i if i < len(self._ids) and int(self._ids[i]) == u else -1

    def _neighbors(self, row: int) -> List[int]:
        lo, hi = int(self._indptr[row]), int(self._indptr[row + 1])
        return [int(x) for x in self._ids[self._indices[lo:hi]]]

    def __getitem__(self, u: int) -> List[int]:
        row = self._row(u)
        if row < 0:
            raise KeyError(u)
        return self._neighbors(row)

    def get(self, u: int, default: object = None) -> object:
        row = self._row(u)
        return default if row < 0 else self._neighbors(row)

    def __contains__(self, u: object) -> bool:
        return isinstance(u, int) and self._row(u) >= 0

    def __iter__(self) -> Iterator[int]:
        return (int(v) for v in self._ids)

    def __len__(self) -> int:
        return len(self._ids)


class BundlePartitionView:
    """The slice of the ``EdgePartition`` API the engine needs, CSR-backed.

    Edge lists are decoded lazily per partition (and cached), so a run
    that never touches ``edges_of`` — or only some machines — pays only
    for what it reads.
    """

    def __init__(self, csr: PartitionCSR) -> None:
        self._csr = csr
        self._edges: List[Optional[List[Edge]]] = [None] * csr.num_partitions
        self._vertex_sets: Optional[List[Set[int]]] = None

    @property
    def num_partitions(self) -> int:
        """``p``."""
        return self._csr.num_partitions

    @property
    def num_edges(self) -> int:
        """Total number of edges across all partitions."""
        return self._csr.num_edges

    def edges_of(self, k: int) -> List[Edge]:
        """Edges of partition ``k`` in canonical sorted order."""
        cached = self._edges[k]
        if cached is None:
            cached = _decode_edges(*self._csr.parts[k])
            self._edges[k] = cached
        return cached

    def partition_sizes(self) -> List[int]:
        """``|E(P_k)|`` for each k (from the CSR, no edge decode)."""
        return [
            int(indptr[-1]) // 2 for _, indptr, _ in self._csr.parts
        ]

    def vertex_sets(self) -> List[Set[int]]:
        """``V(P_k)`` — endpoints of the edges in each partition (cached)."""
        if self._vertex_sets is None:
            self._vertex_sets = [
                {int(v) for v in ids} for ids, _, _ in self._csr.parts
            ]
        return self._vertex_sets

    def validate_against(self, graph: Graph) -> None:
        """Check this is a true partition of ``graph``'s edge set."""
        if self.num_edges != graph.num_edges:
            raise ValueError(
                f"partition covers {self.num_edges} edges, "
                f"graph has {graph.num_edges}"
            )
        seen = 0
        for k in range(self.num_partitions):
            for u, v in self.edges_of(k):
                if not graph.has_edge(u, v):
                    raise ValueError(
                        f"partitioned edge ({u}, {v}) is not in the graph"
                    )
                seen += 1
        # Sorted per-partition lists cannot hide duplicates within a
        # partition; equality of totals rules out cross-partition ones
        # only together with the count check above.
        if seen != graph.num_edges:
            raise ValueError(
                f"partition covers {seen} edges, graph has {graph.num_edges}"
            )


def load_engine(
    directory: PathLike,
    graph: Graph,
    program: GASProgram,
    *,
    verify: bool = True,
    mmap: bool = True,
) -> GASEngine:
    """Open a ``save_partition`` bundle as a ready-to-run :class:`GASEngine`.

    When the bundle carries a CSR sidecar it is memory-mapped and the
    engine's replication table, machine adjacency, and edge lists are
    served from the flat arrays (``mmap=False`` loads them eagerly
    instead).  Bundles without a sidecar fall back to the text edge-list
    path — results are identical either way.

    ``verify=True`` checks the sidecar checksum (or text checksums) and
    validates the partition against ``graph``.
    """
    directory = Path(directory)
    if not has_sidecar(directory):
        return GASEngine(graph, load_partition(directory, verify=verify), program)
    csr = load_sidecar(directory, verify=verify, mmap=mmap)
    view = BundlePartitionView(csr)
    if verify:
        view.validate_against(graph)

    engine = GASEngine.__new__(GASEngine)
    engine.graph = graph
    engine.partition = view  # type: ignore[assignment]
    engine.program = program
    engine.replication = CSRReplicationTable(csr)  # type: ignore[assignment]
    engine._local_edges = [
        view.edges_of(k) for k in range(view.num_partitions)
    ]
    engine._degree = {v: graph.degree(v) for v in graph.vertices()}
    engine._machine_adj = [  # type: ignore[assignment]
        CSRMachineAdjacency(*csr.parts[k]) for k in range(view.num_partitions)
    ]
    return engine
