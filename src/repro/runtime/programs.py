"""Vertex programs in the Gather-Apply-Scatter (GAS) model.

PowerGraph expresses graph algorithms as per-vertex programs; the engine
runs them over an edge partition with master/mirror synchronisation.  Each
program also has an independent single-machine *reference* implementation,
so tests can prove the distributed engine computes identical results no
matter how the graph is partitioned.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional

from repro.graph.graph import Graph


class GASProgram(abc.ABC):
    """One vertex-centric computation.

    The engine evaluates, per superstep and per vertex ``u``:

        acc = merge over incident edges (u, v) of gather(value[v], deg(v))
        new = apply(u, old, acc)

    ``identity()`` is merge's neutral element (used when a vertex gathers
    nothing this superstep).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def init(self, vertex: int, degree: int) -> float:
        """Initial vertex value."""

    @abc.abstractmethod
    def gather(self, neighbor_value: float, neighbor_degree: int) -> float:
        """Contribution collected along one incident edge."""

    @abc.abstractmethod
    def merge(self, a: float, b: float) -> float:
        """Combine two gathered contributions (associative, commutative)."""

    @abc.abstractmethod
    def identity(self) -> float:
        """Neutral element of :meth:`merge`."""

    @abc.abstractmethod
    def apply(self, vertex: int, old: float, acc: float) -> float:
        """New vertex value from the gathered accumulator."""

    def converged(self, old: float, new: float) -> bool:
        """Per-vertex convergence test (exact equality by default)."""
        return old == new


class PageRank(GASProgram):
    """Undirected PageRank with damping ``d`` (default 0.85).

    ``value(u) = (1 - d) + d * sum_{v in N(u)} value(v) / deg(v)`` — the
    normalisation PowerGraph itself uses.
    """

    name = "pagerank"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-10) -> None:
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.damping = damping
        self.tolerance = tolerance

    def init(self, vertex: int, degree: int) -> float:
        return 1.0

    def gather(self, neighbor_value: float, neighbor_degree: int) -> float:
        return neighbor_value / neighbor_degree if neighbor_degree else 0.0

    def merge(self, a: float, b: float) -> float:
        return a + b

    def identity(self) -> float:
        return 0.0

    def apply(self, vertex: int, old: float, acc: float) -> float:
        return (1.0 - self.damping) + self.damping * acc

    def converged(self, old: float, new: float) -> bool:
        return abs(old - new) <= self.tolerance


class ConnectedComponents(GASProgram):
    """Label propagation: every vertex converges to its component's min id."""

    name = "connected-components"

    def init(self, vertex: int, degree: int) -> float:
        return float(vertex)

    def gather(self, neighbor_value: float, neighbor_degree: int) -> float:
        return neighbor_value

    def merge(self, a: float, b: float) -> float:
        return min(a, b)

    def identity(self) -> float:
        return math.inf

    def apply(self, vertex: int, old: float, acc: float) -> float:
        return min(old, acc)


class SingleSourceShortestPaths(GASProgram):
    """Unit-weight SSSP from ``source`` (unreached vertices stay ``inf``)."""

    name = "sssp"

    def __init__(self, source: int) -> None:
        self.source = source

    def init(self, vertex: int, degree: int) -> float:
        return 0.0 if vertex == self.source else math.inf

    def gather(self, neighbor_value: float, neighbor_degree: int) -> float:
        return neighbor_value + 1.0

    def merge(self, a: float, b: float) -> float:
        return min(a, b)

    def identity(self) -> float:
        return math.inf

    def apply(self, vertex: int, old: float, acc: float) -> float:
        return min(old, acc)


class KCoreDecomposition(GASProgram):
    """Distributed k-core (coreness) via h-index iteration.

    Montresor et al. (2011): initialise every vertex to its degree; repeat
    ``value(v) = min(value(v), H({value(u) : u in N(v)}))`` where ``H`` is
    the h-index (the largest ``h`` such that at least ``h`` neighbours have
    value >= ``h``).  Converges to the coreness of every vertex.

    The h-index needs *all* neighbour values, not a pairwise fold, so this
    program gathers lists: ``gather`` wraps a value, ``merge`` concatenates
    (associative, and H is order-insensitive, so distribution-safe), and
    ``apply`` computes the h-index.  A vertex's value is interpreted through
    ``int()`` — values are always integers stored as floats.
    """

    name = "k-core"

    def init(self, vertex: int, degree: int) -> float:
        return float(degree)

    def gather(self, neighbor_value: float, neighbor_degree: int):
        return [neighbor_value]

    def merge(self, a, b):
        return a + b

    def identity(self):
        return []

    def apply(self, vertex: int, old: float, acc) -> float:
        if not acc:
            return 0.0  # isolated vertex: coreness 0
        return min(old, float(h_index(acc)))


def h_index(values) -> int:
    """Largest ``h`` with at least ``h`` entries of ``values`` >= ``h``."""
    counts = sorted((int(v) for v in values), reverse=True)
    h = 0
    for i, value in enumerate(counts, start=1):
        if value >= i:
            h = i
        else:
            break
    return h


def reference_coreness(graph: Graph) -> Dict[int, float]:
    """Exact coreness by iterative minimum-degree peeling (Batagelj-Zaversnik
    flavoured, simple O(m log n) implementation for tests)."""
    import heapq

    degree = {v: graph.degree(v) for v in graph.vertices()}
    heap = [(d, v) for v, d in degree.items()]
    heapq.heapify(heap)
    removed: Dict[int, bool] = {}
    coreness: Dict[int, float] = {}
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed.get(v):
            continue
        if d != degree[v]:
            continue  # stale entry
        removed[v] = True
        current = max(current, d)
        coreness[v] = float(current)
        for u in graph.neighbors(v):
            if not removed.get(u):
                degree[u] -= 1
                heapq.heappush(heap, (degree[u], u))
    return coreness


# ---------------------------------------------------------------------------
# single-machine references
# ---------------------------------------------------------------------------


def run_reference(
    program: GASProgram, graph: Graph, max_supersteps: int = 200
) -> Dict[int, float]:
    """Run ``program`` directly on the whole graph (no partitioning).

    Synchronous Jacobi-style iteration, the same schedule the distributed
    engine uses, so results are bit-identical when the engine is correct.
    """
    values: Dict[int, float] = {
        v: program.init(v, graph.degree(v)) for v in graph.vertices()
    }
    for _ in range(max_supersteps):
        changed = False
        acc: Dict[int, float] = {}
        for v in graph.vertices():
            total: Optional[float] = None
            for u in graph.neighbors(v):
                contribution = program.gather(values[u], graph.degree(u))
                total = contribution if total is None else program.merge(total, contribution)
            acc[v] = program.identity() if total is None else total
        for v in graph.vertices():
            new = program.apply(v, values[v], acc[v])
            if not program.converged(values[v], new):
                changed = True
            values[v] = new
        if not changed:
            break
    return values
