"""Synchronous GAS engine over an edge partition.

Simulates a PowerGraph-style cluster: machine ``k`` stores the edges of
partition ``P_k``; a spanned vertex has a master and mirrors (see
:mod:`repro.runtime.replication`).  Each superstep:

1. **Gather** — every machine folds its local edges into per-vertex partial
   accumulators; each *mirror* sends its partial to the vertex's master
   (one message per mirror per superstep: ``sum_v (replicas(v) - 1)``).
2. **Apply** — the master computes the new vertex value.
3. **Scatter** — masters of *changed* vertices broadcast the new value to
   their mirrors (one message per mirror of each changed vertex).

The engine therefore reproduces, message for message, why the paper's RF
metric matters: gather traffic is exactly ``(RF - 1) * |V|`` per superstep.
Results are independent of the partitioning — tests verify bit-equality with
:func:`repro.runtime.programs.run_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.graph.graph import Graph
from repro.partitioning.assignment import EdgePartition
from repro.runtime.programs import GASProgram
from repro.runtime.replication import ReplicationTable
from repro.runtime.stats import MachineLoad, RunStats, SuperstepStats


@dataclass
class EngineResult:
    """Final vertex values plus run statistics."""

    values: Dict[int, float]
    stats: RunStats
    converged: bool


class GASEngine:
    """Synchronous gather-apply-scatter execution over a partitioned graph."""

    def __init__(
        self, graph: Graph, partition: EdgePartition, program: GASProgram
    ) -> None:
        partition.validate_against(graph)
        self.graph = graph
        self.partition = partition
        self.program = program
        self.replication = ReplicationTable(partition)
        # Local (machine-resident) state: edges per machine.
        self._local_edges: List[List[tuple]] = [
            list(partition.edges_of(k)) for k in range(partition.num_partitions)
        ]
        self._degree: Dict[int, int] = {
            v: graph.degree(v) for v in graph.vertices()
        }
        # Per-machine adjacency, built lazily for the incremental mode.
        self._machine_adj: Optional[List[Dict[int, List[int]]]] = None

    @classmethod
    def from_bundle(
        cls,
        directory,
        graph: Graph,
        program: GASProgram,
        *,
        verify: bool = True,
        mmap: bool = True,
    ) -> "GASEngine":
        """Open a ``save_partition`` bundle as a ready-to-run engine.

        Memory-maps the bundle's CSR sidecar when present (see
        :mod:`repro.runtime.loader`) instead of re-parsing text edge
        lists and rebuilding the replication dicts; results are
        bit-identical to the dict path.
        """
        from repro.runtime.loader import load_engine

        return load_engine(directory, graph, program, verify=verify, mmap=mmap)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        max_supersteps: int = 200,
        checkpoint_every: Optional[int] = None,
        fail_at: Iterable[int] = (),
        incremental: bool = False,
    ) -> EngineResult:
        """Run to convergence or ``max_supersteps``.

        Failure injection: ``fail_at`` lists superstep indices at which a
        simulated machine crash destroys the in-flight superstep.  The engine
        recovers by rolling every vertex value back to the most recent
        checkpoint (taken every ``checkpoint_every`` completed supersteps;
        the initial state is always checkpoint zero) and re-executing — the
        standard synchronous checkpoint/rollback scheme of Pregel-style
        systems.  Recovery work is visible in ``stats.recoveries`` and
        ``stats.wasted_supersteps``; the final values are identical to a
        failure-free run (tests assert this).  Each entry in ``fail_at``
        fires at most once.

        ``incremental=True`` enables PowerGraph-style delta caching: each
        machine recomputes a vertex's partial gather only when one of its
        local neighbours changed in the previous superstep, and a mirror
        sends its partial to the master only when it changed.  "Changed"
        means the program's :meth:`~repro.runtime.programs.GASProgram.converged`
        test fired, so results are bit-identical for exact-convergence
        programs (CC, SSSP) and within the program's tolerance for
        tolerance-based ones (PageRank) — the standard delta-caching
        trade-off.  Gather traffic shrinks as the computation converges.
        Incompatible with failure injection (a crash would invalidate the
        caches), so ``fail_at`` must be empty.
        """
        if incremental and fail_at:
            raise ValueError("incremental mode does not support failure injection")
        program = self.program
        values: Dict[int, float] = {
            v: program.init(v, self._degree[v]) for v in self.graph.vertices()
        }
        stats = RunStats()
        converged = False
        pending_failures = set(fail_at)
        checkpoint: Dict[int, float] = dict(values)
        checkpoint_step = 0
        step = 0
        completed = 0  # supersteps that contributed to progress
        changed_prev: Optional[List[int]] = None  # None = recompute everything
        partial_cache: List[Dict[int, float]] = [
            {} for _ in range(self.partition.num_partitions)
        ]
        acc_cache: Dict[int, float] = {}
        while completed < max_supersteps:
            if step in pending_failures:
                pending_failures.discard(step)
                stats.recoveries += 1
                stats.wasted_supersteps += step - checkpoint_step
                values = dict(checkpoint)
                step = checkpoint_step
                continue
            if incremental:
                gather_messages, acc = self._gather_incremental(
                    values, changed_prev, partial_cache, acc_cache
                )
            else:
                gather_messages, acc = self._gather(values)
            changed = self._apply(values, acc)
            scatter_messages = sum(
                self.replication.mirror_count(v) for v in changed
            )
            stats.add(
                SuperstepStats(
                    superstep=step,
                    gather_messages=gather_messages,
                    scatter_messages=scatter_messages,
                    changed_vertices=len(changed),
                )
            )
            step += 1
            completed += 1
            changed_prev = changed
            if checkpoint_every and step % checkpoint_every == 0:
                checkpoint = dict(values)
                checkpoint_step = step
            if not changed:
                converged = True
                break
        return EngineResult(values=values, stats=stats, converged=converged)

    def _gather(self, values: Dict[int, float]) -> tuple:
        """Per-machine partial gathers + mirror->master aggregation."""
        program = self.program
        # partials[k] maps vertex -> partial accumulator on machine k.
        partials: List[Dict[int, float]] = []
        for edges in self._local_edges:
            local: Dict[int, float] = {}
            for u, v in edges:
                contribution_u = program.gather(values[v], self._degree[v])
                contribution_v = program.gather(values[u], self._degree[u])
                local[u] = (
                    contribution_u
                    if u not in local
                    else program.merge(local[u], contribution_u)
                )
                local[v] = (
                    contribution_v
                    if v not in local
                    else program.merge(local[v], contribution_v)
                )
            partials.append(local)
        # Mirrors ship partials to masters.
        gather_messages = 0
        acc: Dict[int, float] = {}
        for k, local in enumerate(partials):
            for vertex, partial in local.items():
                if self.replication.master_of(vertex) != k:
                    gather_messages += 1
                acc[vertex] = (
                    partial
                    if vertex not in acc
                    else program.merge(acc[vertex], partial)
                )
        return gather_messages, acc

    def _get_machine_adj(self) -> List[Dict[int, List[int]]]:
        """Per-machine adjacency lists (built once, for incremental mode)."""
        if self._machine_adj is None:
            machine_adj: List[Dict[int, List[int]]] = []
            for edges in self._local_edges:
                adj: Dict[int, List[int]] = {}
                for u, v in edges:
                    adj.setdefault(u, []).append(v)
                    adj.setdefault(v, []).append(u)
                machine_adj.append(adj)
            self._machine_adj = machine_adj
        return self._machine_adj

    def _local_partial(
        self, k: int, u: int, values: Dict[int, float]
    ) -> float:
        """Machine ``k``'s partial gather for vertex ``u`` (u must be local)."""
        program = self.program
        total: Optional[float] = None
        for v in self._get_machine_adj()[k][u]:
            contribution = program.gather(values[v], self._degree[v])
            total = (
                contribution if total is None else program.merge(total, contribution)
            )
        assert total is not None  # local vertices have at least one local edge
        return total

    def _gather_incremental(
        self,
        values: Dict[int, float],
        changed_prev: Optional[List[int]],
        partial_cache: List[Dict[int, float]],
        acc_cache: Dict[int, float],
    ) -> tuple:
        """Delta-cached gather: recompute only neighbourhoods of changes."""
        program = self.program
        machine_adj = self._get_machine_adj()
        p = self.partition.num_partitions
        if changed_prev is None:
            # Cold start: full recompute, identical to _gather.
            gather_messages = 0
            for k in range(p):
                local = {
                    u: self._local_partial(k, u, values) for u in machine_adj[k]
                }
                partial_cache[k] = local
                gather_messages += sum(
                    1 for u in local if self.replication.master_of(u) != k
                )
            acc_cache.clear()
            for k in range(p):
                for u, partial in partial_cache[k].items():
                    acc_cache[u] = (
                        partial
                        if u not in acc_cache
                        else program.merge(acc_cache[u], partial)
                    )
            return gather_messages, acc_cache

        # Vertices whose partial may have changed, per machine.
        affected: List[set] = [set() for _ in range(p)]
        for w in changed_prev:
            for k in self.replication.replicas_of(w):
                affected[k].update(machine_adj[k].get(w, ()))
        gather_messages = 0
        dirty: set = set()
        for k in range(p):
            for u in affected[k]:
                partial = self._local_partial(k, u, values)
                if partial != partial_cache[k][u]:
                    partial_cache[k][u] = partial
                    dirty.add(u)
                    if self.replication.master_of(u) != k:
                        gather_messages += 1
        # Re-merge the dirty vertices in fixed machine order (bitwise equal
        # to a full gather, since clean partials are value-identical).
        for u in dirty:
            total: Optional[float] = None
            for k in self.replication.replicas_of(u):
                partial = partial_cache[k].get(u)
                if partial is None:
                    continue
                total = partial if total is None else program.merge(total, partial)
            if total is not None:
                acc_cache[u] = total
        return gather_messages, acc_cache

    def _apply(self, values: Dict[int, float], acc: Dict[int, float]) -> List[int]:
        """Masters apply; returns the list of changed vertices."""
        program = self.program
        changed: List[int] = []
        for vertex in self.graph.vertices():
            gathered = acc.get(vertex, program.identity())
            new = program.apply(vertex, values[vertex], gathered)
            if not program.converged(values[vertex], new):
                changed.append(vertex)
            values[vertex] = new
        return changed

    # -- static load ----------------------------------------------------------

    def machine_loads(self) -> List[MachineLoad]:
        """Edges, replica vertices and mirrors hosted per machine."""
        vertex_sets = self.partition.vertex_sets()
        loads: List[MachineLoad] = []
        for k in range(self.partition.num_partitions):
            mirrors = sum(
                1 for v in vertex_sets[k] if self.replication.master_of(v) != k
            )
            loads.append(
                MachineLoad(
                    machine=k,
                    edges=len(self._local_edges[k]),
                    vertices=len(vertex_sets[k]),
                    mirrors=mirrors,
                )
            )
        return loads
