"""Execution statistics of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SuperstepStats:
    """Message and activity counts of one synchronous superstep."""

    superstep: int
    gather_messages: int
    scatter_messages: int
    changed_vertices: int

    @property
    def total_messages(self) -> int:
        """Gather + scatter messages."""
        return self.gather_messages + self.scatter_messages


@dataclass
class RunStats:
    """Statistics of a whole engine run."""

    supersteps: List[SuperstepStats] = field(default_factory=list)
    #: Failure-injection accounting (see GASEngine.run's failure options).
    recoveries: int = 0
    wasted_supersteps: int = 0

    def add(self, stats: SuperstepStats) -> None:
        """Append one superstep's stats."""
        self.supersteps.append(stats)

    @property
    def num_supersteps(self) -> int:
        """How many supersteps ran."""
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Total network messages across the run."""
        return sum(s.total_messages for s in self.supersteps)

    def messages_per_superstep(self) -> List[int]:
        """Message count per superstep, in order."""
        return [s.total_messages for s in self.supersteps]


@dataclass
class MachineLoad:
    """Static per-machine load induced by a partition."""

    machine: int
    edges: int
    vertices: int
    mirrors: int


def load_imbalance(loads: List[MachineLoad]) -> float:
    """Max edge load over mean edge load (1.0 = perfectly balanced)."""
    if not loads:
        return 1.0
    edges = [load.edges for load in loads]
    mean = sum(edges) / len(edges)
    return max(edges) / mean if mean else 1.0


def estimate_makespan(
    loads: List[MachineLoad],
    stats: RunStats,
    edge_cost: float = 1.0,
    message_cost: float = 1.0,
) -> float:
    """A simple bulk-synchronous makespan model.

    Each superstep costs the *slowest* machine's compute (it scans its local
    edges — this is where edge balance bites) plus the network time for that
    superstep's messages, modelled as full-bisection bandwidth shared by the
    machines (``messages / p``) — this is where RF bites.  Returned in
    abstract cost units: a partitioning is better exactly when this number
    is lower at equal correctness.
    """
    if not loads:
        return 0.0
    p = len(loads)
    max_edges = max(load.edges for load in loads)
    total = 0.0
    for step in stats.supersteps:
        total += max_edges * edge_cost + (step.total_messages / p) * message_cost
    return total
