"""repro — reproduction of "Local Graph Edge Partitioning with a Two-Stage
Heuristic Method" (Ji, Bu, Li, Wu; ICDCS 2019).

Public API highlights:

* :class:`repro.core.TLPPartitioner` — the paper's algorithm.
* :func:`repro.partitioning.make_partitioner` — every algorithm by name.
* :func:`repro.partitioning.replication_factor` — the RF quality metric.
* :mod:`repro.datasets` — the paper's nine datasets as synthetic stand-ins.
* :mod:`repro.runtime` — a PowerGraph-style execution simulator quantifying
  why RF matters.
* :mod:`repro.bench` — regenerates every table and figure of the paper.
"""

from repro.core import TLPPartitioner, TLPRPartitioner
from repro.graph import Graph, GraphBuilder
from repro.partitioning import (
    EdgePartition,
    make_partitioner,
    replication_factor,
)

__version__ = "1.0.0"

__all__ = [
    "TLPPartitioner",
    "TLPRPartitioner",
    "Graph",
    "GraphBuilder",
    "EdgePartition",
    "make_partitioner",
    "replication_factor",
    "__version__",
]
