"""Edge-list input/output in the SNAP text format.

SNAP datasets (the paper's G1-G8) are whitespace-separated ``u v`` lines with
``#`` comment headers, optionally gzip-compressed.  These helpers read and
write that format, either eagerly into a :class:`~repro.graph.graph.Graph`
or lazily as an edge iterator for the streaming partitioners.
"""

from __future__ import annotations

import gzip
import io
import os
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, Tuple, Union

from repro.graph.builder import GraphBuilder
from repro.graph.chunked import ChunkedEdgeStream, ChunkedLineStream
from repro.graph.graph import Graph

PathLike = Union[str, "os.PathLike[str]"]


class _OwningTextIOWrapper(io.TextIOWrapper):
    """Text wrapper that also closes the raw file under a gzip member.

    ``GzipFile`` built on an explicit ``fileobj`` deliberately leaves
    that fileobj open on close; this closes the whole stack.
    """

    def __init__(self, gz: gzip.GzipFile, raw: IO[bytes]) -> None:
        super().__init__(gz, encoding="utf-8")  # type: ignore[arg-type]
        self._raw_file = raw

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw_file.close()


def open_text(path: PathLike, mode: str) -> IO[str]:
    """Open a text file, transparently gzip-compressed when it ends ``.gz``.

    Gzip *writes* are deterministic: the member header carries no source
    file name and a zero mtime, so equal text compresses to equal bytes
    — which is what lets ``save_partition`` produce byte-identical
    compressed bundles regardless of when (or on how many threads) it
    runs.  Plain ``gzip.open`` would stamp the temp file's random name
    and the current time into the first 30-ish bytes.
    """
    path = Path(path)
    if path.suffix == ".gz":
        if "r" in mode:
            return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
        raw = open(path, mode + "b")
        try:
            gz = gzip.GzipFile(filename="", mode=mode + "b", fileobj=raw, mtime=0)
            return _OwningTextIOWrapper(gz, raw)
        except Exception:
            raw.close()
            raise
    return open(path, mode + "t", encoding="utf-8")


#: Backwards-compatible private alias.
_open_text = open_text


def iter_edge_list(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Lazily yield ``(u, v)`` pairs from a SNAP-style edge list.

    Lines starting with ``#`` or ``%`` and blank lines are skipped; raises
    ``ValueError`` on malformed lines (naming the line number).

    Reads through :class:`~repro.graph.chunked.ChunkedEdgeStream`, so the
    file is never held in memory and gzip input is decompressed a chunk
    at a time.
    """
    return ChunkedEdgeStream(path).edges()


def read_edge_list(path: PathLike, relabel: bool = False) -> Graph:
    """Read an edge-list file into a normalised undirected simple graph.

    Directed duplicates and self loops are dropped (SNAP normalisation).
    """
    builder = GraphBuilder(relabel=relabel)
    builder.add_edges(iter_edge_list(path))
    return builder.build()


def write_edge_list(
    graph: Graph, path: PathLike, header: Iterable[str] = ()
) -> None:
    """Write ``graph`` as a SNAP-style edge list (one canonical edge per line)."""
    with open_text(path, "w") as fh:
        for line in header:
            fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u}\t{v}\n")


def read_metis_graph(path: PathLike) -> Graph:
    """Read a graph in the METIS adjacency format.

    Line 1 is ``n m [fmt]`` (only unweighted ``fmt`` 0/absent supported);
    line ``i+1`` lists the 1-based neighbours of vertex ``i``.  Vertices are
    relabelled to 0-based ids.  ``%`` comment lines are skipped.
    """
    # Stream line by line (keeping blank lines: an isolated vertex's
    # adjacency line is legitimately empty) instead of materialising the
    # file — METIS inputs can be as large as the edge lists.
    lines = (
        line.rstrip("\n")
        for _lineno, line in ChunkedLineStream(path).lines()
        if not line.lstrip().startswith("%")
    )
    header_line = next(lines, None)
    if header_line is None:
        raise ValueError(f"{path}: empty METIS file")
    if not header_line.strip():
        # A blank line ahead of real content is a malformed header; a
        # file of nothing but blank lines is empty.
        if any(line.strip() for line in lines):
            raise ValueError(f"{path}: malformed METIS header {header_line!r}")
        raise ValueError(f"{path}: empty METIS file")
    header = header_line.split()
    if len(header) < 2:
        raise ValueError(f"{path}: malformed METIS header {header_line!r}")
    n, m = int(header[0]), int(header[1])
    if len(header) > 2 and header[2] not in ("0", "00", "000"):
        raise ValueError(f"{path}: weighted METIS format {header[2]!r} not supported")
    builder = GraphBuilder()
    count = 0  # adjacency lines consumed as vertices
    # Trailing blank lines *beyond* the n declared vertices are just
    # end-of-file newlines, not vertices; any non-blank line past n (or a
    # blank one ahead of it) still counts against the header.
    extras = 0
    retained = 0  # extras up to and including the last non-blank one
    for line in lines:
        if count < n:
            builder.add_vertex(count)
            for token in line.split():
                builder.add_edge(count, int(token) - 1)
            count += 1
        else:
            extras += 1
            if line.strip():
                retained = extras
    if count < n or retained:
        raise ValueError(
            f"{path}: header says {n} vertices, found {count + retained}"
        )
    graph = builder.build()
    if graph.num_edges != m:
        raise ValueError(
            f"{path}: header says {m} edges, adjacency encodes {graph.num_edges}"
        )
    return graph


def write_metis_graph(graph: Graph, path: PathLike) -> Dict[int, int]:
    """Write ``graph`` in the METIS adjacency format.

    Vertices are renumbered to ``1..n`` in iteration order; returns the
    ``original id -> metis id`` mapping so partition results can be mapped
    back.
    """
    ids = graph.vertex_list()
    metis_id = {v: i + 1 for i, v in enumerate(ids)}
    with open_text(path, "w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in ids:
            neighbors = " ".join(str(metis_id[u]) for u in sorted(graph.neighbors(v), key=lambda x: metis_id[x]))
            fh.write(neighbors + "\n")
    return metis_id
