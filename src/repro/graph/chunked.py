"""Chunked, offset-resumable streaming over edge-list text files.

The out-of-core partitioner (:mod:`repro.partitioning.oocore`) streams
the same edge file **twice** — once to cluster and sketch degrees, once
to place edges — so the reader has to be cheap to restart and must never
hold the file in memory.  This module reads plain or gzip-compressed
SNAP-style files in fixed-size binary chunks and exposes three views:

* :meth:`ChunkedLineStream.lines` — decoded text lines (with their
  trailing newline, like file iteration), for format parsers such as
  :func:`repro.graph.io.read_metis_graph`;
* :meth:`ChunkedEdgeStream.edges` — lazily parsed ``(u, v)`` pairs with
  the exact skip/error semantics of ``iter_edge_list``;
* :meth:`ChunkedEdgeStream.edge_chunks` — batches of edges paired with a
  :class:`Checkpoint` that resumes the stream *after* the batch.

Offsets are measured in the **decompressed** byte stream, so a
checkpoint taken on a ``.gz`` file is still valid: ``seek`` on a gzip
member re-decompresses up to the offset (linear in the offset, constant
in memory), while a plain file seeks in O(1).  Restarting a pass from
the beginning is just calling the iterator again — every iteration opens
its own file handle, so two passes (or a pass and a half-finished
resume) never share state.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

PathLike = Union[str, Path]

Edge = Tuple[int, int]

#: Default binary read size; one syscall (or one gzip inflate call) per chunk.
DEFAULT_CHUNK_BYTES = 1 << 20

#: Default number of parsed edges per :meth:`ChunkedEdgeStream.edge_chunks`
#: batch — small enough that a batch is a bounded buffer, large enough to
#: amortise the per-batch bookkeeping.
DEFAULT_CHUNK_EDGES = 1 << 16


@dataclass(frozen=True)
class Checkpoint:
    """A resume point in the decompressed stream.

    ``offset`` is the decompressed byte position of the next unread
    line, ``lineno`` its 1-based line number (so resumed error messages
    still name the true line).  ``Checkpoint()`` is the start of file.
    """

    offset: int = 0
    lineno: int = 1


def open_binary(path: PathLike) -> IO[bytes]:
    """Open ``path`` for binary reads, transparently gunzipping ``.gz``."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rb")  # type: ignore[return-value]
    return open(path, "rb")


class ChunkedLineStream:
    """Re-iterable chunked line reader over a plain or gzip text file.

    Instances hold no file handle — every call to :meth:`lines` opens
    (and closes) its own, which is what makes two full passes over the
    same instance safe and is why a half-consumed iterator can simply be
    dropped.
    """

    def __init__(
        self, path: PathLike, chunk_bytes: int = DEFAULT_CHUNK_BYTES
    ) -> None:
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.path = Path(path)
        self.chunk_bytes = chunk_bytes

    # -- raw lines ---------------------------------------------------------

    def lines(
        self, start: Optional[Checkpoint] = None
    ) -> Iterator[Tuple[int, str]]:
        """Yield ``(lineno, line)``; lines keep their trailing newline.

        Matches ``for line in open(path)`` exactly (including a final
        line without a newline), but reads in ``chunk_bytes`` binary
        chunks and can start from a :class:`Checkpoint`.
        """
        for lineno, _offset, raw in self._raw_lines(start):
            yield lineno, raw.decode("utf-8")

    def _raw_lines(
        self, start: Optional[Checkpoint] = None
    ) -> Iterator[Tuple[int, int, bytes]]:
        """Yield ``(lineno, end_offset, raw_line_bytes_with_newline)``."""
        start = start or Checkpoint()
        offset = start.offset
        lineno = start.lineno
        with open_binary(self.path) as fh:
            if offset:
                fh.seek(offset)
            tail = b""
            while True:
                chunk = fh.read(self.chunk_bytes)
                if not chunk:
                    break
                pieces = (tail + chunk).split(b"\n")
                tail = pieces.pop()
                for piece in pieces:
                    offset += len(piece) + 1
                    yield lineno, offset, piece + b"\n"
                    lineno += 1
            if tail:
                offset += len(tail)
                yield lineno, offset, tail


class ChunkedEdgeStream(ChunkedLineStream):
    """SNAP edge-list parsing over the chunked reader.

    Skip/error semantics are the canonical ``iter_edge_list`` contract:
    blank lines and ``#``/``%`` comments are skipped, a line with fewer
    than two tokens raises ``ValueError`` naming ``path:lineno``, extra
    columns are ignored, non-integer endpoints raise ``ValueError``.
    """

    def edges(self, start: Optional[Checkpoint] = None) -> Iterator[Edge]:
        """Lazily yield every ``(u, v)`` pair from ``start`` onwards."""
        for _lineno, _offset, raw in self._raw_lines(start):
            edge = self._parse(raw, _lineno)
            if edge is not None:
                yield edge

    def edge_chunks(
        self,
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
        start: Optional[Checkpoint] = None,
    ) -> Iterator[Tuple[List[Edge], Checkpoint]]:
        """Yield ``(edges, checkpoint)`` batches of up to ``chunk_edges``.

        The checkpoint resumes the stream *after* the batch it is paired
        with, so a consumer that persists the checkpoint once a batch is
        durably processed can crash and restart without re-reading (or
        double-counting) anything before it.
        """
        if chunk_edges < 1:
            raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
        batch: List[Edge] = []
        resume = start or Checkpoint()
        for lineno, offset, raw in self._raw_lines(start):
            edge = self._parse(raw, lineno)
            resume = Checkpoint(offset, lineno + 1)
            if edge is None:
                continue
            batch.append(edge)
            if len(batch) >= chunk_edges:
                yield batch, resume
                batch = []
        if batch:
            yield batch, resume

    def count_edges(self) -> int:
        """Number of parseable edge lines (one full streaming pass)."""
        return sum(1 for _ in self.edges())

    # -- parsing -----------------------------------------------------------

    def _parse(self, raw: bytes, lineno: int) -> Optional[Edge]:
        stripped = raw.strip()
        if not stripped or stripped[:1] in (b"#", b"%"):
            return None
        parts = stripped.split()
        if len(parts) < 2:
            text = raw.decode("utf-8", "replace")
            raise ValueError(
                f"{self.path}:{lineno}: expected 'u v', got {text!r}"
            )
        try:
            return int(parts[0]), int(parts[1])
        except ValueError as exc:
            text = raw.decode("utf-8", "replace")
            raise ValueError(
                f"{self.path}:{lineno}: non-integer endpoint in {text!r}"
            ) from exc
