"""Graph sampling: extract smaller graphs that preserve chosen structure.

Scaling experiments need smaller versions of a workload.  Regenerating at a
smaller scale (what :mod:`repro.datasets` does) is one option; *sampling* an
existing graph is the other, and the right one when the graph is given
rather than generated.  Three standard samplers:

* :func:`random_edge_sample` — keep a uniform fraction of edges (preserves
  degree skew's shape, thins density);
* :func:`random_vertex_sample` — induced subgraph on a uniform vertex
  subset;
* :func:`bfs_sample` — a breadth-first ball around a seed (preserves local
  structure; the sampler matching local partitioning's world view).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from repro.graph.graph import Graph
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_positive, check_probability


def random_edge_sample(graph: Graph, fraction: float, seed: Seed = None) -> Graph:
    """Keep each edge independently with probability ``fraction``.

    Vertices that lose all edges are dropped.
    """
    check_probability("fraction", fraction)
    rng = make_rng(seed)
    kept = [edge for edge in graph.edges() if rng.random() < fraction]
    return Graph.from_edges(kept)


def random_vertex_sample(graph: Graph, fraction: float, seed: Seed = None) -> Graph:
    """Induced subgraph on a uniform ``fraction`` of the vertices."""
    check_probability("fraction", fraction)
    rng = make_rng(seed)
    vertices = [v for v in graph.vertices() if rng.random() < fraction]
    return graph.subgraph(vertices)


def bfs_sample(
    graph: Graph,
    num_vertices: int,
    seed_vertex: Optional[int] = None,
    seed: Seed = None,
) -> Graph:
    """The induced subgraph on the first ``num_vertices`` BFS-reached vertices.

    Starts from ``seed_vertex`` (or a random vertex); restarts from a random
    unvisited vertex when a component is exhausted, so the requested size is
    always reached (or the whole graph returned).
    """
    check_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    all_vertices = graph.vertex_list()
    if not all_vertices:
        return Graph.empty()
    if seed_vertex is None:
        seed_vertex = rng.choice(all_vertices)
    elif not graph.has_vertex(seed_vertex):
        raise KeyError(f"seed vertex {seed_vertex} not in graph")
    visited: Set[int] = set()
    queue: deque = deque([seed_vertex])
    visited.add(seed_vertex)
    collected = [seed_vertex]
    remaining = [v for v in all_vertices if v != seed_vertex]
    rng.shuffle(remaining)
    restart_cursor = 0
    while len(collected) < min(num_vertices, len(all_vertices)):
        if not queue:
            while restart_cursor < len(remaining) and remaining[restart_cursor] in visited:
                restart_cursor += 1
            if restart_cursor >= len(remaining):
                break
            fresh = remaining[restart_cursor]
            visited.add(fresh)
            collected.append(fresh)
            queue.append(fresh)
            continue
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in visited and len(collected) < num_vertices:
                visited.add(u)
                collected.append(u)
                queue.append(u)
    return graph.subgraph(collected)
