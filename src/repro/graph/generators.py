"""Synthetic graph generators.

Two roles in this reproduction:

* **Dataset stand-ins.**  The paper evaluates on eight SNAP social/communication
  graphs and the huapu genealogy graph; none are downloadable here, so
  :mod:`repro.datasets.synthetic` matches each one with a generator from this
  module (power-law + triadic closure for the social graphs, a near-tree
  forest for huapu) at the published ``|V|``/``|E|``.
* **Test/benchmark workloads** with controlled structure (rings, grids,
  planted communities, stars ...).

All generators take a ``seed`` and are deterministic given it.  Vertices are
labelled ``0..n-1``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Graph
from repro.utils.rng import Seed, make_rng
from repro.utils.validation import check_non_negative, check_positive, check_probability

__all__ = [
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "barabasi_albert",
    "holme_kim",
    "watts_strogatz",
    "community_graph",
    "random_tree",
    "random_forest",
    "genealogy_graph",
    "rmat",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "with_exact_edges",
]


# ---------------------------------------------------------------------------
# internal helpers
# ---------------------------------------------------------------------------


def _empty_adj(n: int) -> Dict[int, Set[int]]:
    return {v: set() for v in range(n)}


def _add_edge(adj: Dict[int, Set[int]], u: int, v: int) -> bool:
    if u == v or v in adj[u]:
        return False
    adj[u].add(v)
    adj[v].add(u)
    return True


def _count_edges(adj: Dict[int, Set[int]]) -> int:
    return sum(len(nbrs) for nbrs in adj.values()) // 2


def _to_graph(adj: Dict[int, Set[int]]) -> Graph:
    return Graph(adj, _count_edges(adj))


def _add_random_edges(adj: Dict[int, Set[int]], count: int, rng: random.Random) -> int:
    """Insert ``count`` uniformly random new edges; returns how many were added.

    Gives up (returns fewer) only if the graph saturates.
    """
    n = len(adj)
    max_edges = n * (n - 1) // 2
    current = _count_edges(adj)
    added = 0
    attempts = 0
    limit = 50 * count + 1000
    while added < count and attempts < limit:
        attempts += 1
        if current + added >= max_edges:
            break
        u = rng.randrange(n)
        v = rng.randrange(n)
        if _add_edge(adj, u, v):
            added += 1
    # Dense fallback: enumerate missing pairs when rejection sampling stalls.
    if added < count:
        missing = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if v not in adj[u]
        ]
        rng.shuffle(missing)
        for u, v in missing[: count - added]:
            _add_edge(adj, u, v)
            added += 1
    return added


def _remove_random_edges(adj: Dict[int, Set[int]], count: int, rng: random.Random) -> int:
    """Delete ``count`` uniformly random edges; returns how many were removed."""
    edges = [(u, v) for u, nbrs in adj.items() for v in nbrs if u < v]
    rng.shuffle(edges)
    removed = 0
    for u, v in edges[:count]:
        adj[u].remove(v)
        adj[v].remove(u)
        removed += 1
    return removed


def with_exact_edges(graph: Graph, m: int, seed: Seed = None) -> Graph:
    """Return a copy of ``graph`` adjusted to exactly ``m`` edges.

    Excess edges are removed uniformly at random; deficits are filled with
    uniformly random new edges.  The vertex set is unchanged.  This is how
    dataset stand-ins hit the paper's published edge counts exactly.
    """
    check_non_negative("m", m)
    n = graph.num_vertices
    if m > n * (n - 1) // 2:
        raise ValueError(f"m={m} exceeds the maximum for {n} vertices")
    rng = make_rng(seed)
    adj = graph.adjacency_copy()
    current = graph.num_edges
    if current > m:
        _remove_random_edges(adj, current - m, rng)
    elif current < m:
        _add_random_edges(adj, m - current, rng)
    return _to_graph(adj)


# ---------------------------------------------------------------------------
# random models
# ---------------------------------------------------------------------------


def erdos_renyi_gnm(n: int, m: int, seed: Seed = None) -> Graph:
    """G(n, m): ``n`` vertices and exactly ``m`` uniformly random edges."""
    check_positive("n", n)
    check_non_negative("m", m)
    if m > n * (n - 1) // 2:
        raise ValueError(f"m={m} exceeds the maximum for {n} vertices")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    _add_random_edges(adj, m, rng)
    return _to_graph(adj)


def erdos_renyi_gnp(n: int, p: float, seed: Seed = None) -> Graph:
    """G(n, p) via geometric edge skipping — O(n + m) expected time."""
    check_positive("n", n)
    check_probability("p", p)
    rng = make_rng(seed)
    adj = _empty_adj(n)
    if p <= 0:
        return _to_graph(adj)
    if p >= 1:
        for u in range(n):
            for v in range(u + 1, n):
                _add_edge(adj, u, v)
        return _to_graph(adj)
    import math

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            _add_edge(adj, v, w)
    return _to_graph(adj)


def barabasi_albert(n: int, m_attach: int, seed: Seed = None) -> Graph:
    """Barabási–Albert preferential attachment (power-law degrees).

    Each new vertex attaches to ``m_attach`` distinct existing vertices chosen
    proportionally to degree (repeated-nodes implementation).
    """
    check_positive("n", n)
    check_positive("m_attach", m_attach)
    if m_attach >= n:
        raise ValueError(f"m_attach={m_attach} must be < n={n}")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    repeated: List[int] = list(range(m_attach))  # seed clique-free core
    for new in range(m_attach, n):
        targets: Set[int] = set()
        while len(targets) < m_attach:
            targets.add(rng.choice(repeated))
        for t in targets:
            _add_edge(adj, new, t)
            repeated.append(t)
            repeated.append(new)
    return _to_graph(adj)


def holme_kim(
    n: int, m_attach: int, triad_prob: float = 0.5, seed: Seed = None
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a triad
    is closed with probability ``triad_prob`` (connect to a random neighbour
    of the last target), yielding the high local clustering of real social
    graphs — the structure TLP's Stage I exploits.
    """
    check_positive("n", n)
    check_positive("m_attach", m_attach)
    check_probability("triad_prob", triad_prob)
    if m_attach >= n:
        raise ValueError(f"m_attach={m_attach} must be < n={n}")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    repeated: List[int] = list(range(m_attach))
    for new in range(m_attach, n):
        made = 0
        last_target: Optional[int] = None
        while made < m_attach:
            do_triad = (
                last_target is not None
                and rng.random() < triad_prob
                and adj[last_target]
            )
            if do_triad:
                candidate = rng.choice(tuple(adj[last_target]))  # type: ignore[arg-type]
            else:
                candidate = rng.choice(repeated)
            if _add_edge(adj, new, candidate):
                repeated.append(candidate)
                repeated.append(new)
                last_target = candidate
                made += 1
            else:
                last_target = None  # fall back to preferential attachment
    return _to_graph(adj)


def watts_strogatz(n: int, k: int, beta: float, seed: Seed = None) -> Graph:
    """Watts–Strogatz small world: ring lattice with rewiring probability ``beta``."""
    check_positive("n", n)
    check_positive("k", k)
    check_probability("beta", beta)
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            _add_edge(adj, v, (v + offset) % n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if rng.random() < beta and u in adj[v]:
                candidates = n - 1 - len(adj[v])
                if candidates <= 0:
                    continue
                adj[v].remove(u)
                adj[u].remove(v)
                while True:
                    w = rng.randrange(n)
                    if w != v and w not in adj[v]:
                        break
                _add_edge(adj, v, w)
    return _to_graph(adj)


def community_graph(
    n: int,
    m: int,
    num_communities: int,
    intra_fraction: float = 0.9,
    seed: Seed = None,
) -> Graph:
    """Planted-community graph with exactly ``m`` edges.

    Vertices are split into ``num_communities`` equal blocks; each edge is
    intra-community with probability ``intra_fraction`` (endpoints uniform in
    one random block), otherwise uniform across blocks.  A cheap stochastic
    block model that gives local partitioners something to find.
    """
    check_positive("n", n)
    check_non_negative("m", m)
    check_positive("num_communities", num_communities)
    check_probability("intra_fraction", intra_fraction)
    if num_communities > n:
        raise ValueError("more communities than vertices")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    block_of = [v * num_communities // n for v in range(n)]
    blocks: List[List[int]] = [[] for _ in range(num_communities)]
    for v, b in enumerate(block_of):
        blocks[b].append(v)
    added = 0
    attempts = 0
    limit = 60 * m + 1000
    while added < m and attempts < limit:
        attempts += 1
        if rng.random() < intra_fraction:
            block = blocks[rng.randrange(num_communities)]
            if len(block) < 2:
                continue
            u, v = rng.sample(block, 2)
        else:
            u = rng.randrange(n)
            v = rng.randrange(n)
        if _add_edge(adj, u, v):
            added += 1
    if added < m:
        _add_random_edges(adj, m - added, rng)
    return _to_graph(adj)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Seed = None,
) -> Graph:
    """R-MAT / Kronecker generator (Chakrabarti et al., SDM 2004).

    ``2**scale`` vertices and ``edge_factor * 2**scale`` edge *samples*,
    each drawn by recursively descending into the adjacency matrix's
    quadrants with probabilities ``(a, b, c, 1-a-b-c)``.  The Graph500
    default parameters produce the skewed, self-similar graphs used to
    benchmark graph systems.  Duplicates and self loops are dropped, so the
    realised edge count is below ``edge_factor * n``; use
    :func:`with_exact_edges` for an exact target.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    for name, value in (("a", a), ("b", b), ("c", c)):
        check_probability(name, value)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError(f"a + b + c = {a + b + c} exceeds 1")
    rng = make_rng(seed)
    n = 1 << scale
    adj = _empty_adj(n)
    thresholds = (a, a + b, a + b + c)
    for _ in range(edge_factor * n):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < thresholds[0]:
                pass  # top-left quadrant
            elif r < thresholds[1]:
                v |= 1
            elif r < thresholds[2]:
                u |= 1
            else:
                u |= 1
                v |= 1
        _add_edge(adj, u, v)
    return _to_graph(adj)


# ---------------------------------------------------------------------------
# trees and genealogy
# ---------------------------------------------------------------------------


def random_tree(n: int, seed: Seed = None, attachment_bias: float = 0.0) -> Graph:
    """Random recursive tree on ``n`` vertices.

    ``attachment_bias`` in [0, 1] interpolates between uniform attachment (0)
    and degree-proportional attachment (1).
    """
    check_positive("n", n)
    check_probability("attachment_bias", attachment_bias)
    rng = make_rng(seed)
    adj = _empty_adj(n)
    repeated: List[int] = [0]
    for new in range(1, n):
        if rng.random() < attachment_bias:
            parent = rng.choice(repeated)
        else:
            parent = rng.randrange(new)
        _add_edge(adj, new, parent)
        repeated.append(parent)
        repeated.append(new)
    return _to_graph(adj)


def random_forest(n: int, num_trees: int, seed: Seed = None) -> Graph:
    """A forest of ``num_trees`` random recursive trees over ``n`` vertices."""
    check_positive("n", n)
    check_positive("num_trees", num_trees)
    if num_trees > n:
        raise ValueError("more trees than vertices")
    rng = make_rng(seed)
    adj = _empty_adj(n)
    # Roots are vertices 0..num_trees-1; each later vertex joins a random tree.
    members: List[List[int]] = [[t] for t in range(num_trees)]
    for new in range(num_trees, n):
        tree = rng.randrange(num_trees)
        parent = rng.choice(members[tree])
        _add_edge(adj, new, parent)
        members[tree].append(new)
    return _to_graph(adj)


def genealogy_graph(
    n: int,
    m: int,
    seed: Seed = None,
    num_trees: Optional[int] = None,
) -> Graph:
    """A huapu-like genealogy graph: a forest plus sparse cross links.

    The paper's G9 (huapu) has average degree ~3.3 and near-tree structure.
    We build ``num_trees`` recursive trees (descent lines) and add
    ``m - (n - num_trees)`` extra edges (marriages / cross references) between
    uniformly random vertices.  Requires ``m >= n - num_trees``.
    """
    check_positive("n", n)
    check_non_negative("m", m)
    rng = make_rng(seed)
    if num_trees is None:
        num_trees = max(1, n // 1000)
    forest_edges = n - num_trees
    if m < forest_edges:
        # Shrink the forest edge count by using more trees.
        num_trees = n - m
        if num_trees > n:
            raise ValueError(f"m={m} too small for any forest on {n} vertices")
        forest_edges = n - num_trees
    base = random_forest(n, num_trees, seed=rng)
    adj = base.adjacency_copy()
    _add_random_edges(adj, m - forest_edges, rng)
    return _to_graph(adj)


# ---------------------------------------------------------------------------
# deterministic structured graphs (test fixtures)
# ---------------------------------------------------------------------------


def star_graph(n: int) -> Graph:
    """Star: vertex 0 joined to ``1..n-1``."""
    check_positive("n", n)
    return Graph.from_edges(((0, v) for v in range(1, n)), vertices=range(n))


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - n-1``."""
    check_positive("n", n)
    return Graph.from_edges(((v, v + 1) for v in range(n - 1)), vertices=range(n))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    edges = [(v, (v + 1) % n) for v in range(n)]
    return Graph.from_edges(edges)


def complete_graph(n: int) -> Graph:
    """Clique on ``n`` vertices."""
    check_positive("n", n)
    edges = ((u, v) for u in range(n) for v in range(u + 1, n))
    return Graph.from_edges(edges, vertices=range(n))


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: sides ``0..a-1`` and ``a..a+b-1``."""
    check_positive("a", a)
    check_positive("b", b)
    edges = ((u, a + v) for u in range(a) for v in range(b))
    return Graph.from_edges(edges, vertices=range(a + b))


def grid_2d(rows: int, cols: int) -> Graph:
    """rows x cols lattice; vertex ``r * cols + c``."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph.from_edges(edges, vertices=range(rows * cols))
