"""Compressed-sparse-row view of a graph.

The runtime simulator and the vectorised TLP frontier scan want contiguous
integer ids and numpy-friendly adjacency.  :class:`CSRGraph` freezes a
:class:`~repro.graph.graph.Graph` into ``indptr``/``indices`` arrays plus an
id mapping, the standard layout of high-performance graph engines.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph


class CSRGraph:
    """Immutable CSR adjacency with a vertex-id <-> index mapping."""

    __slots__ = ("indptr", "indices", "ids", "index_of", "num_edges")

    def __init__(self, graph: Graph) -> None:
        ids: List[int] = graph.vertex_list()
        index_of: Dict[int, int] = {v: i for i, v in enumerate(ids)}
        n = len(ids)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, v in enumerate(ids):
            indptr[i + 1] = indptr[i] + graph.degree(v)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for i, v in enumerate(ids):
            for u in graph.neighbors(v):
                indices[cursor[i]] = index_of[u]
                cursor[i] += 1
        self.indptr = indptr
        self.indices = indices
        self.ids = np.asarray(ids, dtype=np.int64)
        self.index_of = index_of
        self.num_edges = graph.num_edges

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.ids)

    def neighbors_of_index(self, i: int) -> np.ndarray:
        """Neighbour *indices* of the vertex at index ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def degrees(self) -> np.ndarray:
        """Degree array aligned with :attr:`ids`."""
        return np.diff(self.indptr)
