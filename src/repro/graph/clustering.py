"""Triangle counting and clustering coefficients.

Local clustering is the structural feature TLP's Stage I exploits (common
neighbours, Eq. 7) and the property that distinguishes the social stand-ins
from the near-tree huapu stand-in, so the library measures it directly.
Counting uses the rank-ordered intersection trick: each triangle is counted
exactly once at its lowest-ranked vertex, O(sum_v deg(v) * d_max) worst case
but fast on sparse graphs.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.graph import Graph


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    return sum(triangles_per_vertex(graph).values()) // 3


def triangles_per_vertex(graph: Graph) -> Dict[int, int]:
    """Map ``vertex -> number of triangles through it``."""
    counts: Dict[int, int] = {v: 0 for v in graph.vertices()}
    # Rank by (degree, id) so each triangle is enumerated exactly once.
    rank = {
        v: i
        for i, v in enumerate(
            sorted(graph.vertices(), key=lambda v: (graph.degree(v), v))
        )
    }
    for u in graph.vertices():
        higher = [w for w in graph.neighbors(u) if rank[w] > rank[u]]
        higher_set = set(higher)
        for i, a in enumerate(higher):
            nbrs_a = graph.neighbors(a)
            for b in higher[i + 1 :]:
                if b in nbrs_a:
                    counts[u] += 1
                    counts[a] += 1
                    counts[b] += 1
    return counts


def local_clustering(graph: Graph, v: int) -> float:
    """Local clustering coefficient of ``v`` (0.0 when degree < 2)."""
    neighbors = list(graph.neighbors(v))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = graph.neighbors(v)
    for i, a in enumerate(neighbors):
        nbrs_a = graph.neighbors(a)
        # Count each neighbour pair once.
        for b in neighbors[i + 1 :]:
            if b in nbrs_a:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices (0.0 if empty)."""
    vertices = graph.vertex_list()
    if not vertices:
        return 0.0
    return sum(local_clustering(graph, v) for v in vertices) / len(vertices)


def transitivity(graph: Graph) -> float:
    """Global clustering: ``3 * triangles / open-or-closed wedges``."""
    wedges = sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges
