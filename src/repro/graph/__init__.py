"""Graph substrate: core types, construction, IO, generators, traversals."""

from repro.graph.builder import BuildStats, GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.io import iter_edge_list, read_edge_list, write_edge_list
from repro.graph.residual import ResidualGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_edge_order,
    bfs_order,
    connected_components,
    dfs_order,
    is_connected,
    largest_component,
)

__all__ = [
    "BuildStats",
    "GraphBuilder",
    "CSRGraph",
    "Edge",
    "Graph",
    "normalize_edge",
    "iter_edge_list",
    "read_edge_list",
    "write_edge_list",
    "ResidualGraph",
    "bfs_distances",
    "bfs_edge_order",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "is_connected",
    "largest_component",
]
