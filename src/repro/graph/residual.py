"""Mutable residual-graph overlay for local partitioning.

Local graph partitioning (Section III of the paper) freezes one partition per
round and *removes its edges* from the graph before the next round starts.
:class:`ResidualGraph` supports exactly the operations that loop needs:

* neighbour/degree queries on the remaining edges,
* removing an allocated edge,
* sampling a random seed vertex that still has remaining edges.

Seed sampling is O(1) amortised via a lazily-compacted candidate list: the
paper's "select vertex x from G randomly" is interpreted as "uniformly among
vertices that still have at least one unassigned edge" (an isolated residual
vertex cannot start a partition — its frontier is empty on arrival).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Set, Tuple

from repro.graph.graph import Edge, Graph


class ResidualGraph:
    """The not-yet-partitioned remainder of a graph.

    Construction copies the adjacency of ``graph`` (O(n + m)); all other
    operations are incremental.
    """

    def __init__(self, graph: Graph) -> None:
        self._adj: Dict[int, Set[int]] = graph.adjacency_copy()
        self._num_edges = graph.num_edges
        # Lazily filtered pool of candidate seed vertices.
        self._seed_pool: List[int] = [v for v, nbrs in self._adj.items() if nbrs]

    @classmethod
    def empty(cls) -> "ResidualGraph":
        """An empty residual graph, to be filled via :meth:`add_edge`.

        Used by the windowed streaming-local partitioner, whose residual is a
        bounded buffer over an edge stream rather than a whole graph.
        """
        return cls(Graph.empty())

    # -- queries -----------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of edges still unassigned."""
        return self._num_edges

    def degree(self, v: int) -> int:
        """Residual degree of ``v`` (0 if all its edges were allocated)."""
        nbrs = self._adj.get(v)
        return len(nbrs) if nbrs else 0

    def vertices(self) -> List[int]:
        """Known vertices in insertion order (live or not)."""
        return list(self._adj)

    def neighbors(self, v: int) -> Set[int]:
        """Residual neighbour set of ``v``.  Treat as read-only."""
        return self._adj.get(v, set())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is still unassigned."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edges(self) -> Iterator[Edge]:
        """Iterate over remaining edges in canonical form."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    # -- mutation ----------------------------------------------------------

    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns ``True`` if the edge was new (self loops and duplicates are
        ignored and return ``False``).  Both endpoints become seed
        candidates.
        """
        if u == v:
            return False
        nu = self._adj.setdefault(u, set())
        if v in nu:
            return False
        had_u = bool(nu)
        nu.add(v)
        nv = self._adj.setdefault(v, set())
        had_v = bool(nv)
        nv.add(u)
        self._num_edges += 1
        if not had_u:
            self._seed_pool.append(u)
        if not had_v:
            self._seed_pool.append(v)
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1

    def remove_edges_between(self, v: int, targets: Set[int]) -> List[Tuple[int, int]]:
        """Remove every residual edge between ``v`` and ``targets``.

        Returns the removed edges as ``(v, u)`` pairs (not canonicalised).
        This is the hot path of edge allocation: when vertex ``v`` joins a
        partition, all residual edges from ``v`` into the partition's vertex
        set are allocated at once.
        """
        nbrs = self._adj.get(v)
        if not nbrs:
            return []
        # Iterate over the smaller side of the intersection.
        if len(nbrs) <= len(targets):
            hit = [u for u in nbrs if u in targets]
        else:
            hit = [u for u in targets if u in nbrs]
        for u in hit:
            nbrs.remove(u)
            self._adj[u].remove(v)
        self._num_edges -= len(hit)
        return [(v, u) for u in hit]

    # -- seed sampling -----------------------------------------------------

    def sample_seed(self, rng: random.Random) -> int:
        """A uniformly random vertex with residual degree >= 1.

        Raises ``LookupError`` when no edges remain.  Uses swap-and-pop lazy
        deletion: vertices whose residual degree dropped to zero since they
        entered the pool are discarded on contact.
        """
        pool = self._seed_pool
        while pool:
            i = rng.randrange(len(pool))
            v = pool[i]
            if self._adj[v]:
                return v
            pool[i] = pool[-1]
            pool.pop()
        raise LookupError("residual graph has no remaining edges")

    def is_exhausted(self) -> bool:
        """True when every edge has been allocated."""
        return self._num_edges == 0
