"""Core undirected simple-graph type.

The partitioning literature this library reproduces (ICDCS'19 TLP and its
baselines) works exclusively on undirected simple graphs: self loops are
dropped and parallel edges collapsed, exactly as SNAP datasets are normally
preprocessed.  :class:`Graph` is a read-mostly adjacency-set structure;
algorithms that need to *consume* edges (local partitioning) use
:class:`repro.graph.residual.ResidualGraph`, a mutable overlay.

Vertices are arbitrary integers (not necessarily contiguous); an edge is a
pair ``(u, v)`` normalised so that ``u < v``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise ValueError(f"self loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


class Graph:
    """An immutable undirected simple graph backed by adjacency sets.

    Construct via :meth:`from_edges` or :class:`repro.graph.builder.GraphBuilder`.
    Mutating the returned neighbour sets is undefined behaviour; use
    :meth:`repro.graph.residual.ResidualGraph` for algorithms that remove
    edges.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, adjacency: Dict[int, Set[int]], num_edges: int) -> None:
        self._adj = adjacency
        self._num_edges = num_edges

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int]], vertices: Iterable[int] = ()
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Self loops are rejected; duplicate edges (in either orientation) are
        collapsed.  ``vertices`` may list extra isolated vertices to include.
        """
        adj: Dict[int, Set[int]] = {}
        num_edges = 0
        for u, v in edges:
            if u == v:
                raise ValueError(f"self loop ({u}, {v}); use GraphBuilder to drop loops")
            nu = adj.setdefault(u, set())
            if v not in nu:
                nu.add(v)
                adj.setdefault(v, set()).add(u)
                num_edges += 1
        for v in vertices:
            adj.setdefault(v, set())
        return cls(adj, num_edges)

    @classmethod
    def empty(cls) -> "Graph":
        """The graph with no vertices and no edges."""
        return cls({}, 0)

    # -- basic queries -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def vertex_list(self) -> List[int]:
        """All vertices as a list."""
        return list(self._adj)

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        nu = self._adj.get(u)
        return nu is not None and v in nu

    def neighbors(self, v: int) -> Set[int]:
        """The neighbour set ``N(v)``.  Treat as read-only."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """``|N(v)|``."""
        return len(self._adj[v])

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical ``(u, v), u < v`` form."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """All edges as a list of canonical pairs."""
        return list(self.edges())

    # -- derived views -----------------------------------------------------

    def adjacency_copy(self) -> Dict[int, Set[int]]:
        """A deep copy of the adjacency structure (for mutable overlays)."""
        return {v: set(nbrs) for v, nbrs in self._adj.items()}

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """The induced subgraph on ``vertices``."""
        keep: FrozenSet[int] = frozenset(vertices)
        adj: Dict[int, Set[int]] = {v: set() for v in keep if v in self._adj}
        num_edges = 0
        for v in adj:
            for u in self._adj[v]:
                if u in keep:
                    adj[v].add(u)
                    if v < u:
                        num_edges += 1
        return Graph(adj, num_edges)

    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    # -- dunder ------------------------------------------------------------

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
