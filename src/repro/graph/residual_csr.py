"""Array-backed residual graph for the CSR-native local-partitioning path.

:class:`CSRResidual` is the flat-array twin of
:class:`~repro.graph.residual.ResidualGraph`: the full input adjacency is
frozen once into ``indptr``/``indices`` CSR arrays (rows sorted by
neighbour), and the *residual* — the not-yet-partitioned remainder — is an
``alive`` bitmask parallel to ``indices`` plus a per-vertex live-degree
array.  The two directed slots of an undirected edge are linked by the
``twin`` permutation, so removing an edge flips two mask bytes and
decrements two counters: O(1), no hashing, no pointer chasing.  This is
the compact-adjacency layout production edge partitioners (HEP, 2PS) use
to reach linear run-time.

Determinism contract: seed sampling consumes the random stream *exactly*
like the reference ``ResidualGraph`` (same initial candidate order — graph
insertion order — and the same lazy swap-and-pop rejection loop), so a
fixed seed drives both backends through identical seed sequences.

Internally every vertex is addressed by a dense index; the index order is
the *sorted* original-id order, so comparing indices compares ids and a
sorted CSR row is simultaneously sorted by original id.  Public methods
accept and return original vertex ids.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List

import numpy as np

from repro.graph.graph import Edge, Graph


class CSRResidual:
    """The not-yet-partitioned remainder of a graph, as flat arrays.

    Construction is O(n + m log d) (row sorting); every residual mutation
    is O(1) per edge.

    Attributes
    ----------
    indptr, indices:
        Static CSR adjacency of the *full* input graph in index space;
        each row is sorted ascending.  Rows never shrink — liveness lives
        in :attr:`alive`.
    twin:
        ``twin[s]`` is the slot of the reverse directed copy of slot ``s``.
    alive:
        ``uint8`` mask parallel to :attr:`indices`; 0 once allocated.  The
        two slots of an edge are always flipped together.
    live_deg:
        Residual degree per vertex index (``int64``).
    ids:
        Sorted original vertex ids; ``ids[i]`` is the id at index ``i``.
    index_of:
        Original id -> dense index.
    """

    __slots__ = (
        "indptr",
        "indices",
        "twin",
        "alive",
        "live_deg",
        "ids",
        "index_of",
        "_num_live",
        "_seed_pool",
    )

    def __init__(self, graph: Graph) -> None:
        self._build(list(graph.vertices()), graph.neighbors, graph.num_edges)

    @classmethod
    def from_adjacency(
        cls, vertex_order: Iterable[int], neighbors_of, num_edges: int
    ) -> "CSRResidual":
        """Build from any adjacency view (e.g. a streaming buffer).

        ``vertex_order`` fixes the seed-pool order (it must match the
        order the reference residual would use); ``neighbors_of(v)``
        returns an iterable of neighbour ids.
        """
        self = cls.__new__(cls)
        self._build(list(vertex_order), neighbors_of, num_edges)
        return self

    def _build(self, order: List[int], neighbors_of, num_edges: int) -> None:
        ids = np.asarray(sorted(order), dtype=np.int64)
        index_of: Dict[int, int] = {int(v): i for i, v in enumerate(ids)}
        n = len(ids)
        id_list = ids.tolist()
        degrees = np.fromiter(
            (len(neighbors_of(v)) for v in id_list), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        # One flat pass over the adjacency; id -> index mapping and row
        # sorting happen vectorised afterwards (ids is sorted, so
        # searchsorted *is* the index map).
        flat = np.fromiter(
            (u for v in id_list for u in neighbors_of(v)),
            dtype=np.int64,
            count=total,
        )
        col = np.searchsorted(ids, flat)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        indices = col[np.lexsort((col, src))]
        # Twin slots: sort all directed slots by their canonical (min, max)
        # key; the two copies of each undirected edge land adjacent.
        lo = np.minimum(src, indices)
        hi = np.maximum(src, indices)
        by_key = np.argsort(lo * n + hi, kind="stable")
        twin = np.empty_like(indices)
        twin[by_key[0::2]] = by_key[1::2]
        twin[by_key[1::2]] = by_key[0::2]
        self.indptr = indptr
        self.indices = indices
        self.twin = twin
        self.alive = np.ones(len(indices), dtype=np.uint8)
        self.live_deg = degrees.copy()
        self.ids = ids
        self.index_of = index_of
        self._num_live = num_edges
        # Seed pool mirrors the reference ResidualGraph exactly: candidate
        # vertices in *input* order, lazily pruned by swap-and-pop.
        deg_list = degrees.tolist()
        self._seed_pool = [
            i
            for i in (index_of[int(v)] for v in order)
            if deg_list[i] > 0
        ]

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (live or not)."""
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        """Number of edges still unassigned."""
        return self._num_live

    def is_exhausted(self) -> bool:
        """True when every edge has been allocated."""
        return self._num_live == 0

    def degree(self, v: int) -> int:
        """Residual degree of the vertex with original id ``v``."""
        i = self.index_of.get(v)
        return int(self.live_deg[i]) if i is not None else 0

    def live_row(self, i: int) -> np.ndarray:
        """Live neighbour indices of vertex *index* ``i`` (sorted)."""
        s, e = self.indptr[i], self.indptr[i + 1]
        row = self.indices[s:e]
        return row[self.alive[s:e].view(bool)]

    def static_row(self, i: int) -> np.ndarray:
        """Full-graph (round-zero) neighbour indices of vertex index ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def neighbors(self, v: int) -> List[int]:
        """Residual neighbour ids of original id ``v`` (sorted)."""
        i = self.index_of.get(v)
        if i is None:
            return []
        return self.ids[self.live_row(i)].tolist()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is still unassigned."""
        i = self.index_of.get(u)
        j = self.index_of.get(v)
        if i is None or j is None:
            return False
        s, e = self.indptr[i], self.indptr[i + 1]
        k = int(np.searchsorted(self.indices[s:e], j))
        return s + k < e and self.indices[s + k] == j and bool(self.alive[s + k])

    def edges(self) -> Iterator[Edge]:
        """Iterate over remaining edges in canonical ``(u, v), u < v`` form."""
        for i in range(self.num_vertices):
            row = self.live_row(i)
            u = int(self.ids[i])
            for j in row[row > i]:
                yield (u, int(self.ids[int(j)]))

    # -- mutation ----------------------------------------------------------

    def kill_slots(self, owner: int, slots: np.ndarray, targets: np.ndarray) -> None:
        """Allocate the edges at ``slots`` (directed slots of ``owner``).

        ``targets`` are the corresponding distinct neighbour indices.
        """
        self.alive[slots] = 0
        self.alive[self.twin[slots]] = 0
        k = len(slots)
        self.live_deg[owner] -= k
        self.live_deg[targets] -= 1
        self._num_live -= k

    # -- seed sampling -----------------------------------------------------

    def sample_seed(self, rng: random.Random) -> int:
        """A uniformly random vertex id with residual degree >= 1.

        Identical RNG consumption to the reference implementation: draw an
        index into the pool, reject-and-compact dead entries on contact.
        """
        pool = self._seed_pool
        live_deg = self.live_deg
        while pool:
            i = rng.randrange(len(pool))
            v = pool[i]
            if live_deg[v] > 0:
                return int(self.ids[v])
            pool[i] = pool[-1]
            pool.pop()
        raise LookupError("residual graph has no remaining edges")
