"""Graph traversals: BFS/DFS orders, components, distances.

The paper notes TLP expands partitions in BFS order over the residual graph;
these standalone traversals are used by generators, the METIS-like
partitioner's graph-growing initial bisection, and tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.graph.graph import Graph


def bfs_order(graph: Graph, source: int) -> Iterator[int]:
    """Vertices reachable from ``source`` in breadth-first order."""
    seen: Set[int] = {source}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        yield v
        for u in graph.neighbors(v):
            if u not in seen:
                seen.add(u)
                queue.append(u)


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Unweighted shortest-path distance from ``source`` to each reachable vertex."""
    dist: Dict[int, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def dfs_order(graph: Graph, source: int) -> Iterator[int]:
    """Vertices reachable from ``source`` in (iterative) depth-first order."""
    seen: Set[int] = set()
    stack: List[int] = [source]
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        yield v
        # Reversed for a deterministic order resembling recursive DFS when
        # neighbour sets iterate in insertion order.
        stack.extend(u for u in graph.neighbors(v) if u not in seen)


def connected_components(graph: Graph) -> List[Set[int]]:
    """All connected components, largest first."""
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component: Set[int] = set()
        queue: deque = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            component.add(v)
            for u in graph.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Set[int]:
    """The vertex set of the largest connected component (empty set if no vertices)."""
    comps = connected_components(graph)
    return comps[0] if comps else set()


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true when empty)."""
    n = graph.num_vertices
    if n == 0:
        return True
    first = next(iter(graph.vertices()))
    return sum(1 for _ in bfs_order(graph, first)) == n


def bfs_edge_order(graph: Graph, source: Optional[int] = None) -> Iterator[tuple]:
    """Edges in the order a BFS first *reaches* them, covering all components.

    Used to build the BFS edge-stream order for streaming partitioners.
    Each edge appears exactly once, canonicalised.
    """
    emitted: Set[tuple] = set()
    seen: Set[int] = set()
    starts: Iterable[int]
    if source is not None:
        starts = [source] + [v for v in graph.vertices() if v != source]
    else:
        starts = graph.vertices()
    for start in starts:
        if start in seen:
            continue
        seen.add(start)
        queue: deque = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                edge = (v, u) if v < u else (u, v)
                if edge not in emitted:
                    emitted.add(edge)
                    yield edge
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
