"""Degree statistics.

Used to (a) verify that synthetic stand-ins for the paper's datasets have the
right degree profile (power-law social graphs vs. the near-tree huapu graph)
and (b) reproduce Table VI, which reports the mean degree of the vertices
each TLP stage selects.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List

from repro.graph.graph import Graph


def degree_sequence(graph: Graph) -> List[int]:
    """Degrees of all vertices, descending."""
    return sorted((graph.degree(v) for v in graph.vertices()), reverse=True)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map ``degree -> number of vertices with that degree``."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def average_degree(graph: Graph) -> float:
    """Mean degree ``2m/n``."""
    return graph.average_degree()


def max_degree(graph: Graph) -> int:
    """Largest degree (0 for the empty graph)."""
    return max((graph.degree(v) for v in graph.vertices()), default=0)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for empty input) — tiny helper for reports."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def degree_gini(graph: Graph) -> float:
    """Gini coefficient of the degree distribution.

    0 means perfectly regular; social power-law graphs typically exceed 0.4,
    trees sit far lower.  Used by dataset tests to distinguish generator
    families.
    """
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    n = len(degrees)
    total = sum(degrees)
    if n == 0 or total == 0:
        return 0.0
    cum = 0.0
    for i, d in enumerate(degrees, start=1):
        cum += i * d
    return (2.0 * cum) / (n * total) - (n + 1.0) / n


def powerlaw_alpha_mle(graph: Graph, d_min: int = 1) -> float:
    """Continuous MLE estimate of the power-law exponent of degrees >= d_min.

    Clauset-Shalizi-Newman estimator ``1 + n / sum(ln(d / (d_min - 1/2)))``.
    Returns ``inf`` when no vertex qualifies or all qualifying degrees equal
    ``d_min``.
    """
    tail = [graph.degree(v) for v in graph.vertices() if graph.degree(v) >= d_min]
    if not tail:
        return math.inf
    denom = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if denom <= 0:
        return math.inf
    return 1.0 + len(tail) / denom
