"""Incremental graph construction with SNAP-style normalisation.

SNAP edge lists are frequently *directed* with duplicates and self loops
(e.g. Wiki-Vote, the Slashdot graphs).  The partitioning paper treats every
dataset as undirected and simple; :class:`GraphBuilder` performs exactly that
normalisation and reports what it dropped, so dataset statistics can be
audited against Table III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from repro.graph.graph import Graph


@dataclass
class BuildStats:
    """What the builder saw and dropped while constructing a graph."""

    edges_seen: int = 0
    self_loops_dropped: int = 0
    duplicates_dropped: int = 0
    edges_kept: int = 0
    isolated_vertices: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, handy for logging and reports."""
        return {
            "edges_seen": self.edges_seen,
            "self_loops_dropped": self.self_loops_dropped,
            "duplicates_dropped": self.duplicates_dropped,
            "edges_kept": self.edges_kept,
            "isolated_vertices": self.isolated_vertices,
        }


@dataclass
class GraphBuilder:
    """Accumulates edges, normalising to an undirected simple graph.

    >>> b = GraphBuilder()
    >>> b.add_edge(1, 2), b.add_edge(2, 1), b.add_edge(3, 3)
    (True, False, False)
    >>> g = b.build()
    >>> (g.num_edges, b.stats.duplicates_dropped, b.stats.self_loops_dropped)
    (1, 1, 1)
    """

    relabel: bool = False
    stats: BuildStats = field(default_factory=BuildStats)

    def __post_init__(self) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._num_edges = 0

    def add_vertex(self, v: int) -> None:
        """Ensure ``v`` exists, possibly isolated."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``{u, v}``.

        Returns ``True`` if the edge was new, ``False`` if it was a self
        loop or duplicate (both are dropped, and counted in :attr:`stats`).
        """
        self.stats.edges_seen += 1
        if u == v:
            self.stats.self_loops_dropped += 1
            self._adj.setdefault(u, set())
            return False
        nu = self._adj.setdefault(u, set())
        if v in nu:
            self.stats.duplicates_dropped += 1
            return False
        nu.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1
        self.stats.edges_kept += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; returns how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def build(self) -> Graph:
        """Finalise into an immutable :class:`Graph`.

        With ``relabel=True`` vertices are renumbered ``0..n-1`` in first-seen
        order (required by CSR views and some generators).
        """
        self.stats.isolated_vertices = sum(1 for nbrs in self._adj.values() if not nbrs)
        if not self.relabel:
            return Graph(self._adj, self._num_edges)
        mapping = {v: i for i, v in enumerate(self._adj)}
        adj = {mapping[v]: {mapping[u] for u in nbrs} for v, nbrs in self._adj.items()}
        return Graph(adj, self._num_edges)
