"""Streaming substrate: edge orders, sliding-window reordering, streams."""

from repro.streaming.orders import EDGE_ORDERS, edge_stream
from repro.streaming.stream import EdgeStream, peak_local_state, peak_streaming_state
from repro.streaming.window import SlidingWindowReorder, windowed_stream

__all__ = [
    "EDGE_ORDERS",
    "edge_stream",
    "EdgeStream",
    "peak_local_state",
    "peak_streaming_state",
    "SlidingWindowReorder",
    "windowed_stream",
]
