"""Edge-stream abstraction tying orders, windows and partitioners together.

An :class:`EdgeStream` is a replayable edge source with a declared order and
optional sliding-window reordering.  Streaming partitioners consume it via
``__iter__``; the memory-accounting helpers let experiments report how much
state a streaming run retained versus local partitioning (the paper's core
storage argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.graph.graph import Edge, Graph
from repro.streaming.orders import EDGE_ORDERS, edge_stream
from repro.streaming.window import SlidingWindowReorder
from repro.utils.rng import Seed


@dataclass
class EdgeStream:
    """Replayable edge stream over a graph."""

    graph: Graph
    order: str = "natural"
    seed: Seed = None
    window_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.order not in EDGE_ORDERS:
            raise ValueError(
                f"unknown order {self.order!r}; expected one of {EDGE_ORDERS}"
            )
        if self.window_size is not None and self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")

    def __iter__(self) -> Iterator[Edge]:
        edges: List[Edge] = edge_stream(self.graph, self.order, self.seed)
        if self.window_size is None:
            return iter(edges)
        return SlidingWindowReorder(self.window_size).reorder(edges)

    def __len__(self) -> int:
        return self.graph.num_edges

    def materialize(self) -> List[Edge]:
        """The full stream as a list (tests and small experiments)."""
        return list(iter(self))


def peak_streaming_state(num_edges_seen: int) -> int:
    """Memory model of classic streaming partitioning (paper §II-B).

    Streaming heuristics must retain *all* received data to allow maximum
    flexibility, so after ``k`` edges the retained state is ``k``.  Contrast
    :func:`peak_local_state`.
    """
    return num_edges_seen


def peak_local_state(capacity: int, frontier_size: int) -> int:
    """Memory model of local partitioning: one partition plus its frontier."""
    return capacity + frontier_size
