"""Sliding-window stream reordering — the paper's future-work mechanism.

Section V: *"a sliding window mechanism will be introduced to sort and
partition the graph data in parallel"*.  The difficulty it addresses: local
partitioning wants to consume edges in BFS order around the growing
partition, but a raw stream arrives in arbitrary order.

:class:`SlidingWindowReorder` keeps a bounded window of ``window_size``
buffered edges.  Each emission prefers an edge adjacent to an
already-emitted vertex (locality), falling back to the oldest buffered edge;
the window refills from the stream after every emission.  With
``window_size = 1`` it degenerates to the identity, with an unbounded window
it approaches a full BFS sort — so the window size trades memory for
locality exactly as the paper anticipates.  The benches show streaming
partitioners improve monotonically with window size on community graphs.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, Iterator, List, Set

from repro.graph.graph import Edge
from repro.utils.validation import check_positive


class SlidingWindowReorder:
    """Reorder an edge stream for locality using bounded memory."""

    def __init__(self, window_size: int) -> None:
        check_positive("window_size", window_size)
        self.window_size = window_size

    def reorder(self, edges: Iterable[Edge]) -> Iterator[Edge]:
        """Yield every input edge exactly once, locality-first."""
        source = iter(edges)
        # Insertion-ordered window so the fallback pops the oldest edge.
        window: "OrderedDict[Edge, None]" = OrderedDict()
        by_vertex: Dict[int, Set[Edge]] = {}
        emitted_vertices: Set[int] = set()
        # Vertices that recently became "hot" and may unlock window edges.
        hot: Deque[int] = deque()

        def admit(edge: Edge) -> None:
            window[edge] = None
            for endpoint in edge:
                by_vertex.setdefault(endpoint, set()).add(edge)

        def retire(edge: Edge) -> None:
            del window[edge]
            for endpoint in edge:
                bucket = by_vertex[endpoint]
                bucket.discard(edge)
                if not bucket:
                    del by_vertex[endpoint]

        def fill() -> None:
            while len(window) < self.window_size:
                try:
                    admit(next(source))
                except StopIteration:
                    return

        fill()
        while window:
            chosen: Edge = next(iter(window))  # default: oldest buffered edge
            # Prefer an edge touching a recently emitted vertex.
            while hot:
                v = hot[0]
                bucket = by_vertex.get(v)
                if bucket:
                    chosen = next(iter(bucket))
                    break
                hot.popleft()
            retire(chosen)
            for endpoint in chosen:
                if endpoint not in emitted_vertices:
                    emitted_vertices.add(endpoint)
                    hot.append(endpoint)
            yield chosen
            fill()


def windowed_stream(
    edges: Iterable[Edge], window_size: int
) -> List[Edge]:
    """Materialised convenience wrapper around :class:`SlidingWindowReorder`."""
    return list(SlidingWindowReorder(window_size).reorder(edges))
