"""Edge-stream orderings.

Streaming partitioning quality depends heavily on arrival order (Stanton &
Kliot study random/BFS/DFS vertex orders; the same applies to edge streams).
These helpers materialise a graph's edges in the standard orders so the
streaming baselines and the sliding-window experiments can be driven
reproducibly.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.graph.graph import Edge, Graph
from repro.graph.traversal import bfs_edge_order
from repro.utils.rng import Seed, make_rng

EDGE_ORDERS = ("natural", "random", "bfs", "dfs")


def edge_stream(graph: Graph, order: str = "natural", seed: Seed = None) -> List[Edge]:
    """The graph's edges in the requested arrival order."""
    if order == "natural":
        return graph.edge_list()
    if order == "random":
        edges = graph.edge_list()
        make_rng(seed).shuffle(edges)
        return edges
    if order == "bfs":
        return list(bfs_edge_order(graph))
    if order == "dfs":
        return list(_dfs_edge_order(graph))
    raise ValueError(f"unknown order {order!r}; expected one of {EDGE_ORDERS}")


def _dfs_edge_order(graph: Graph) -> Iterator[Edge]:
    emitted: set = set()
    seen: set = set()
    for start in graph.vertices():
        if start in seen:
            continue
        stack = [start]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            for u in graph.neighbors(v):
                edge = (v, u) if v < u else (u, v)
                if edge not in emitted:
                    emitted.add(edge)
                    yield edge
                if u not in seen:
                    stack.append(u)
