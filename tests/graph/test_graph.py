"""Unit tests for the core Graph type."""

import pytest

from repro.graph.graph import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)

    def test_keeps_ordered_pair(self):
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            normalize_edge(3, 3)


class TestConstruction:
    def test_from_edges_counts(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_collapses_duplicates(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            Graph.from_edges([(2, 2)])

    def test_extra_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.degree(5) == 0

    def test_empty(self):
        g = Graph.empty()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0


class TestQueries:
    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_degree(self, triangle):
        assert all(triangle.degree(v) == 2 for v in triangle.vertices())

    def test_has_edge_both_orientations(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_has_edge_absent(self):
        g = Graph.from_edges([(0, 1)])
        assert not g.has_edge(0, 2)

    def test_has_vertex_and_contains(self, triangle):
        assert triangle.has_vertex(2)
        assert 2 in triangle
        assert 99 not in triangle

    def test_edges_canonical_unique(self, triangle):
        edges = triangle.edge_list()
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]
        assert all(u < v for u, v in edges)

    def test_len_counts_vertices(self, triangle):
        assert len(triangle) == 3

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == 2.0


class TestDerivedViews:
    def test_adjacency_copy_is_deep(self, triangle):
        copy = triangle.adjacency_copy()
        copy[0].discard(1)
        assert triangle.has_edge(0, 1)

    def test_subgraph_induces_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sorted(sub.edge_list()) == [(0, 1), (1, 2)]

    def test_subgraph_disjoint_vertices(self):
        g = Graph.from_edges([(0, 1)])
        sub = g.subgraph([5])
        assert sub.num_vertices == 0

    def test_subgraph_keeps_isolates_present_in_graph(self):
        g = Graph.from_edges([(0, 1)], vertices=[7])
        sub = g.subgraph([0, 7])
        assert sub.num_vertices == 2
        assert sub.num_edges == 0
