"""Unit tests for synthetic graph generators."""

import pytest

from repro.graph.degree import degree_gini, max_degree
from repro.graph.generators import (
    barabasi_albert,
    community_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    genealogy_graph,
    grid_2d,
    holme_kim,
    path_graph,
    random_forest,
    random_tree,
    star_graph,
    watts_strogatz,
    with_exact_edges,
)
from repro.graph.traversal import connected_components, is_connected


class TestErdosRenyi:
    def test_gnm_exact_counts(self):
        g = erdos_renyi_gnm(50, 100, seed=0)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_gnm_rejects_too_many_edges(self):
        with pytest.raises(ValueError, match="exceeds"):
            erdos_renyi_gnm(5, 11, seed=0)

    def test_gnm_saturates_to_clique(self):
        g = erdos_renyi_gnm(6, 15, seed=0)
        assert g.num_edges == 15  # K6

    def test_gnp_zero_probability(self):
        assert erdos_renyi_gnp(20, 0.0, seed=0).num_edges == 0

    def test_gnp_one_probability_is_clique(self):
        g = erdos_renyi_gnp(8, 1.0, seed=0)
        assert g.num_edges == 28

    def test_gnp_expected_count_ballpark(self):
        g = erdos_renyi_gnp(200, 0.1, seed=1)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_deterministic_given_seed(self):
        a = erdos_renyi_gnm(30, 60, seed=9)
        b = erdos_renyi_gnm(30, 60, seed=9)
        assert sorted(a.edge_list()) == sorted(b.edge_list())


class TestPreferentialAttachment:
    def test_ba_edge_count(self):
        g = barabasi_albert(100, 3, seed=0)
        assert g.num_edges == 3 * 97  # each new vertex adds exactly m edges

    def test_ba_rejects_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5, seed=0)

    def test_ba_has_hub(self):
        g = barabasi_albert(500, 2, seed=0)
        assert max_degree(g) > 15  # heavy tail

    def test_holme_kim_edge_count(self):
        g = holme_kim(100, 3, 0.7, seed=0)
        assert g.num_edges == 3 * 97

    def test_holme_kim_more_skewed_than_regular(self):
        g = holme_kim(800, 4, 0.6, seed=1)
        assert degree_gini(g) > 0.2

    def test_holme_kim_zero_triad_like_ba(self):
        g = holme_kim(100, 2, 0.0, seed=3)
        assert g.num_edges == 2 * 98


class TestWattsStrogatz:
    def test_edge_count_preserved_by_rewiring(self):
        g = watts_strogatz(60, 4, 0.3, seed=0)
        assert g.num_edges == 60 * 2

    def test_zero_beta_is_ring_lattice(self):
        g = watts_strogatz(10, 2, 0.0, seed=0)
        assert sorted(g.edge_list()) == [(i, (i + 1) % 10) if i < 9 else (0, 9) for i in range(10)] or g.num_edges == 10

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            watts_strogatz(10, 3, 0.1, seed=0)


class TestCommunityGraph:
    def test_exact_edge_count(self):
        g = community_graph(120, 600, 4, 0.9, seed=0)
        assert g.num_edges == 600

    def test_intra_edges_dominate(self):
        num_comm = 4
        n = 200
        g = community_graph(n, 1000, num_comm, 0.95, seed=1)
        block = lambda v: v * num_comm // n
        intra = sum(1 for u, v in g.edges() if block(u) == block(v))
        assert intra / g.num_edges > 0.75

    def test_more_communities_than_vertices_rejected(self):
        with pytest.raises(ValueError):
            community_graph(3, 2, 5, 0.5, seed=0)


class TestTrees:
    def test_random_tree_is_tree(self):
        g = random_tree(50, seed=0)
        assert g.num_edges == 49
        assert is_connected(g)

    def test_forest_component_count(self):
        g = random_forest(100, 5, seed=0)
        assert g.num_edges == 95
        assert len(connected_components(g)) == 5

    def test_genealogy_matches_edges(self):
        g = genealogy_graph(500, 700, seed=0)
        assert g.num_vertices == 500
        assert g.num_edges == 700

    def test_genealogy_small_m_grows_forest(self):
        g = genealogy_graph(100, 40, seed=0)
        assert g.num_edges == 40

    def test_genealogy_near_tree_structure(self):
        g = genealogy_graph(1000, 1100, seed=0)
        assert degree_gini(g) < 0.5  # far less skewed than social graphs


class TestDeterministicFamilies:
    def test_star(self):
        g = star_graph(10)
        assert g.degree(0) == 9
        assert g.num_edges == 9

    def test_path(self):
        g = path_graph(10)
        assert g.num_edges == 9
        assert g.degree(0) == 1
        assert g.degree(5) == 2

    def test_cycle(self):
        g = cycle_graph(10)
        assert g.num_edges == 10
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(7)
        assert g.num_edges == 21

    def test_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.num_edges == 12
        assert not g.has_edge(0, 1)  # same side

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical


class TestRMAT:
    def test_vertex_count_is_power_of_two(self):
        from repro.graph.generators import rmat

        g = rmat(scale=6, edge_factor=4, seed=0)
        assert g.num_vertices == 64

    def test_edge_count_bounded_by_samples(self):
        from repro.graph.generators import rmat

        g = rmat(scale=6, edge_factor=4, seed=0)
        assert 0 < g.num_edges <= 4 * 64

    def test_skewed_parameters_give_skewed_degrees(self):
        from repro.graph.degree import degree_gini
        from repro.graph.generators import rmat

        skewed = rmat(scale=9, edge_factor=8, seed=1)
        uniform = rmat(scale=9, edge_factor=8, a=0.25, b=0.25, c=0.25, seed=1)
        assert degree_gini(skewed) > degree_gini(uniform)

    def test_deterministic(self):
        from repro.graph.generators import rmat

        a = rmat(scale=5, edge_factor=3, seed=7)
        b = rmat(scale=5, edge_factor=3, seed=7)
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_invalid_probabilities(self):
        from repro.graph.generators import rmat

        with pytest.raises(ValueError, match="exceeds 1"):
            rmat(scale=4, a=0.5, b=0.4, c=0.3)


class TestWithExactEdges:
    def test_add_edges(self):
        g = path_graph(10)
        adjusted = with_exact_edges(g, 20, seed=0)
        assert adjusted.num_edges == 20
        assert adjusted.num_vertices == 10

    def test_remove_edges(self):
        g = complete_graph(8)
        adjusted = with_exact_edges(g, 10, seed=0)
        assert adjusted.num_edges == 10

    def test_noop(self, triangle):
        adjusted = with_exact_edges(triangle, 3, seed=0)
        assert sorted(adjusted.edge_list()) == sorted(triangle.edge_list())

    def test_impossible_target_rejected(self, triangle):
        with pytest.raises(ValueError, match="exceeds"):
            with_exact_edges(triangle, 100, seed=0)
