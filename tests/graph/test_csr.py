"""Unit tests for the CSR graph view."""

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import holme_kim, star_graph
from repro.graph.graph import Graph


class TestCSRGraph:
    def test_shapes(self, small_social):
        csr = CSRGraph(small_social)
        assert csr.num_vertices == small_social.num_vertices
        assert csr.num_edges == small_social.num_edges
        assert len(csr.indptr) == csr.num_vertices + 1
        assert len(csr.indices) == 2 * csr.num_edges

    def test_degrees_match(self, small_social):
        csr = CSRGraph(small_social)
        degrees = csr.degrees()
        for i, v in enumerate(csr.ids):
            assert degrees[i] == small_social.degree(int(v))

    def test_neighbors_match(self):
        g = star_graph(6)
        csr = CSRGraph(g)
        hub = csr.index_of[0]
        nbrs = {int(csr.ids[j]) for j in csr.neighbors_of_index(hub)}
        assert nbrs == {1, 2, 3, 4, 5}

    def test_non_contiguous_ids(self):
        g = Graph.from_edges([(100, 200), (200, 300)])
        csr = CSRGraph(g)
        assert set(csr.index_of) == {100, 200, 300}
        mid = csr.index_of[200]
        assert len(csr.neighbors_of_index(mid)) == 2

    def test_symmetry(self):
        g = holme_kim(80, 3, 0.5, seed=1)
        csr = CSRGraph(g)
        # adjacency must be symmetric: count (i, j) == count (j, i)
        pairs = set()
        for i in range(csr.num_vertices):
            for j in csr.neighbors_of_index(i):
                pairs.add((i, int(j)))
        assert all((j, i) in pairs for i, j in pairs)

    def test_empty_graph(self):
        csr = CSRGraph(Graph.empty())
        assert csr.num_vertices == 0
        assert np.array_equal(csr.indptr, np.zeros(1, dtype=np.int64))
