"""Unit tests for SNAP edge-list IO."""

import gzip

import pytest

from repro.graph.generators import holme_kim
from repro.graph.io import iter_edge_list, read_edge_list, write_edge_list


class TestIterEdgeList:
    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% other comment\n0 1\n1\t2\n")
        assert list(iter_edge_list(path)) == [(0, 1), (1, 2)]

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\njust-one-token\n")
        with pytest.raises(ValueError, match=":2:"):
            list(iter_edge_list(path))

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-integer"):
            list(iter_edge_list(path))

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 weight=3\n")
        assert list(iter_edge_list(path)) == [(0, 1)]


class TestReadEdgeList:
    def test_normalises_directed_duplicates(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n2 2\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n")
        g = read_edge_list(path, relabel=True)
        assert sorted(g.vertices()) == [0, 1]


class TestMetisFormat:
    def test_round_trip(self, tmp_path, small_social):
        from repro.graph.io import read_metis_graph, write_metis_graph

        path = tmp_path / "g.metis"
        mapping = write_metis_graph(small_social, path)
        back = read_metis_graph(path)
        assert back.num_vertices == small_social.num_vertices
        assert back.num_edges == small_social.num_edges
        # Structure preserved under the relabelling.
        for u, v in small_social.edges():
            assert back.has_edge(mapping[u] - 1, mapping[v] - 1)

    def test_triangle_file_contents(self, tmp_path, triangle):
        from repro.graph.io import write_metis_graph

        path = tmp_path / "t.metis"
        write_metis_graph(triangle, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "3 3"
        assert lines[1].split() == ["2", "3"]

    def test_comment_lines_skipped(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = read_metis_graph(path)
        assert g.num_edges == 1

    def test_header_mismatch_detected(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(ValueError, match="header says 5 edges"):
            read_metis_graph(path)

    def test_vertex_count_mismatch_detected(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(ValueError, match="3 vertices"):
            read_metis_graph(path)

    def test_weighted_format_rejected(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("2 1 011\n2 5\n1 5\n")
        with pytest.raises(ValueError, match="not supported"):
            read_metis_graph(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_metis_graph(path)

    @pytest.mark.parametrize("trailer", ["\n", "\n\n", "\n\n\n"])
    def test_trailing_newlines_accepted(self, tmp_path, trailer):
        # A valid file ending in extra blank line(s) — e.g. editor- or
        # echo-appended newlines — must not be rejected as a vertex-count
        # mismatch: blank lines only count as vertices up to index n.
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("2 1\n2\n1" + trailer)
        g = read_metis_graph(path)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_trailing_blank_lines_keep_isolated_vertices(self, tmp_path):
        # Vertex 3 is isolated: its adjacency line is blank and must be
        # kept, while the extra blank line *beyond* n=3 is stripped.
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n\n\n")
        g = read_metis_graph(path)
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_round_trip_with_trailing_newline(self, tmp_path, small_social):
        from repro.graph.io import read_metis_graph, write_metis_graph

        path = tmp_path / "g.metis"
        write_metis_graph(small_social, path)
        # Append a stray blank line, as tools concatenating files often do.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n")
        back = read_metis_graph(path)
        assert back.num_vertices == small_social.num_vertices
        assert back.num_edges == small_social.num_edges

    def test_genuinely_missing_vertex_line_still_rejected(self, tmp_path):
        from repro.graph.io import read_metis_graph

        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")  # only 2 adjacency lines for n=3
        with pytest.raises(ValueError, match="3 vertices"):
            read_metis_graph(path)

    def test_isolated_vertices_preserved(self, tmp_path):
        from repro.graph.io import read_metis_graph, write_metis_graph
        from repro.graph.graph import Graph

        g = Graph.from_edges([(0, 1)], vertices=[2])
        path = tmp_path / "g.metis"
        write_metis_graph(g, path)
        back = read_metis_graph(path)
        assert back.num_vertices == 3
        assert back.degree(2) == 0


class TestRoundTrip:
    def test_plain_roundtrip(self, tmp_path, small_social):
        path = tmp_path / "g.edges"
        write_edge_list(small_social, path, header=["test graph"])
        back = read_edge_list(path)
        assert back.num_edges == small_social.num_edges
        assert sorted(back.edge_list()) == sorted(small_social.edge_list())

    def test_gzip_roundtrip(self, tmp_path):
        g = holme_kim(100, 3, 0.5, seed=2)
        path = tmp_path / "g.edges.gz"
        write_edge_list(g, path)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")
        back = read_edge_list(path)
        assert sorted(back.edge_list()) == sorted(g.edge_list())

    def test_header_written(self, tmp_path, triangle):
        path = tmp_path / "g.edges"
        write_edge_list(triangle, path, header=["alpha", "beta"])
        text = path.read_text()
        assert "# alpha" in text
        assert "# beta" in text
        assert "# Nodes: 3 Edges: 3" in text
