"""Tests for triangle counting and clustering coefficients."""

import pytest

from repro.graph.clustering import (
    average_clustering,
    local_clustering,
    transitivity,
    triangle_count,
    triangles_per_vertex,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    holme_kim,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestTriangleCount:
    def test_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_clique(self):
        # K5 has C(5,3) = 10 triangles.
        assert triangle_count(complete_graph(5)) == 10

    def test_tree_has_none(self):
        assert triangle_count(random_tree(50, seed=0)) == 0

    def test_cycle_has_none(self):
        assert triangle_count(cycle_graph(10)) == 0

    def test_two_components(self, two_triangles):
        assert triangle_count(two_triangles) == 2

    def test_per_vertex_sum(self, small_social):
        per_vertex = triangles_per_vertex(small_social)
        assert sum(per_vertex.values()) == 3 * triangle_count(small_social)

    def test_per_vertex_on_paw(self):
        # Triangle 0-1-2 plus pendant 3 attached to 0.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
        per_vertex = triangles_per_vertex(g)
        assert per_vertex == {0: 1, 1: 1, 2: 1, 3: 0}

    def test_empty(self):
        assert triangle_count(Graph.empty()) == 0


class TestLocalClustering:
    def test_triangle_vertex_is_one(self, triangle):
        assert local_clustering(triangle, 0) == 1.0

    def test_star_hub_is_zero(self):
        g = star_graph(10)
        assert local_clustering(g, 0) == 0.0

    def test_degree_one_is_zero(self):
        g = path_graph(3)
        assert local_clustering(g, 0) == 0.0

    def test_paw_center(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
        # Vertex 0 has 3 neighbours, 1 link among them -> 2/6.
        assert local_clustering(g, 0) == pytest.approx(1 / 3)


class TestAggregates:
    def test_clique_everything_one(self):
        g = complete_graph(6)
        assert average_clustering(g) == 1.0
        assert transitivity(g) == 1.0

    def test_tree_everything_zero(self):
        g = random_tree(40, seed=1)
        assert average_clustering(g) == 0.0
        assert transitivity(g) == 0.0

    def test_empty_graph(self):
        assert average_clustering(Graph.empty()) == 0.0
        assert transitivity(Graph.empty()) == 0.0

    def test_holme_kim_more_clustered_than_tree(self):
        social = holme_kim(300, 4, 0.7, seed=0)
        tree = random_tree(300, seed=0)
        assert average_clustering(social) > 0.1
        assert average_clustering(social) > average_clustering(tree)

    def test_transitivity_in_unit_interval(self, small_social):
        assert 0.0 <= transitivity(small_social) <= 1.0
